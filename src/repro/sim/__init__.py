"""Discrete-event simulation kernel for the I/O-GUARD reproduction.

The kernel is deliberately small and dependency-free: a binary-heap event
queue (:class:`~repro.sim.engine.Simulator`), generator-based processes
(:class:`~repro.sim.engine.Process`), synchronisation primitives
(:class:`~repro.sim.engine.Signal`, :class:`~repro.sim.resource.Resource`,
:class:`~repro.sim.resource.Store`), a global timer abstraction used by the
hypervisor (:class:`~repro.sim.clock.GlobalTimer`), deterministic seeded
random-number helpers (:mod:`repro.sim.rng`) and structured tracing
(:class:`~repro.sim.trace.TraceRecorder`).

All hardware, NoC and hypervisor models in the reproduction are built as
processes on this kernel, so a single ``Simulator.run()`` advances the whole
modelled system in lock-step, exactly as the paper's single global timer
synchronises the FPGA design (Sec. II, assumption (iii)).
"""

from repro.sim.engine import (
    Interrupt,
    Process,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.clock import GlobalTimer
from repro.sim.resource import Resource, Store
from repro.sim.rng import RandomSource, spawn_streams
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "GlobalTimer",
    "Interrupt",
    "Process",
    "RandomSource",
    "Resource",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceEvent",
    "TraceRecorder",
    "spawn_streams",
]
