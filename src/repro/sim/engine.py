"""Event loop, processes and synchronisation primitives.

The engine follows the classic event-calendar design: callbacks are stored
in a binary heap keyed by ``(time, priority, sequence)`` so that ties are
broken deterministically (insertion order), which keeps whole-system runs
reproducible under a fixed seed.

Processes are plain Python generators.  A process may ``yield``:

* :class:`Timeout` -- suspend for a simulated delay,
* :class:`Signal` -- suspend until the signal fires,
* another :class:`Process` -- suspend until the child process terminates.

This mirrors the structure of SimPy but in a few hundred lines, with exact
integer time support (the hypervisor schedules in integer time slots).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


#: Event priority used for fault activation/clear edges scheduled via
#: :meth:`Simulator.consume_fault_plan`.  Faults toggle *before* any
#: same-time workload event (lower priority runs first), so whether a
#: request observes a fault window never depends on event insertion
#: order -- a prerequisite for bit-identical replay.
FAULT_EVENT_PRIORITY = -100


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel.

    Examples include running a simulator that has already been stopped,
    yielding an unsupported object from a process, or scheduling an event
    in the past.
    """


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload from the
    interrupter; hypervisor models use it to signal preemption of an
    in-flight I/O operation.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Command object: suspend the yielding process for ``delay`` time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Signal:
    """One-shot or repeating wake-up condition.

    Processes yield a signal to block on it; :meth:`fire` wakes every
    waiter with the fired value.  After firing, the signal automatically
    re-arms, so the same object can be used as a repeating doorbell (the
    I/O pools use one signal per queue to wake their local scheduler).
    """

    __slots__ = ("sim", "name", "_waiters", "last_value", "fire_count")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: List["Process"] = []
        self.last_value: Any = None
        self.fire_count = 0

    def fire(self, value: Any = None) -> None:
        """Wake all currently-blocked waiters, delivering ``value``."""
        self.last_value = value
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim.schedule(0.0, process._resume, value)

    def add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def discard_waiter(self, process: "Process") -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A running generator inside the simulator.

    The process result (``StopIteration`` value) is stored in
    :attr:`value`; other processes yielding this process are resumed with
    that value once it terminates.
    """

    __slots__ = (
        "sim",
        "name",
        "generator",
        "alive",
        "value",
        "_completion",
        "_blocked_on",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self.alive = True
        self.value: Any = None
        self._completion = Signal(sim, name=f"{self.name}.done")
        self._blocked_on: Optional[Signal] = None

    # -- lifecycle ---------------------------------------------------------

    def _start(self) -> None:
        self.sim.schedule(0.0, self._resume, None)

    def _resume(self, sent_value: Any) -> None:
        if not self.alive:
            return
        self._blocked_on = None
        try:
            command = self.generator.send(sent_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        if self._blocked_on is not None:
            self._blocked_on.discard_waiter(self)
            self._blocked_on = None
        try:
            command = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.sim.schedule(command.delay, self._resume, None)
        elif isinstance(command, Signal):
            self._blocked_on = command
            command.add_waiter(self)
        elif isinstance(command, Process):
            if command.alive:
                self._blocked_on = command._completion
                command._completion.add_waiter(self)
            else:
                self.sim.schedule(0.0, self._resume, command.value)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object "
                f"{command!r}; expected Timeout, Signal or Process"
            )

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self._completion.fire(value)

    # -- public API --------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is a no-op (the race is benign and
        common: an I/O completes in the same slot a preemption fires).
        """
        if not self.alive:
            return
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    @property
    def completion(self) -> Signal:
        """Signal fired (with the process result) when the process ends."""
        return self._completion

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Binary-heap discrete-event simulator with deterministic ordering."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, int, Callable, tuple]] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self.event_count = 0

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable,
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` simulated time.

        ``priority`` breaks same-time ties (lower runs first); equal
        priorities preserve insertion order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay!r}")
        self._sequence += 1
        heapq.heappush(
            self._heap, (self.now + delay, priority, self._sequence, callback, args)
        )

    def at(self, time: float, callback: Callable, *args: Any, priority: int = 0) -> None:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        self.schedule(time - self.now, callback, *args, priority=priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a generator as a simulation process."""
        process = Process(self, generator, name=name)
        process._start()
        return process

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name=name)

    def timeout(self, delay: float) -> Timeout:
        """Convenience constructor mirroring SimPy's ``env.timeout``."""
        return Timeout(delay)

    def consume_fault_plan(
        self,
        plan: Any,
        dispatcher: Callable[[str, Any, int], None],
        cycles_per_slot: int = 1,
    ) -> int:
        """Schedule a fault plan's activation/clear edges as events.

        ``plan`` is any object exposing ``events()`` yielding
        ``(slot, action, index, fault)`` tuples in deterministic order
        (:class:`repro.faults.plan.FaultPlan` does); the engine stays
        free of fault-model imports.  Each edge becomes one event at
        ``slot * cycles_per_slot`` calling ``dispatcher(action, fault,
        slot)`` with :data:`FAULT_EVENT_PRIORITY`, so fault toggles
        always precede same-time workload events.  Returns the number of
        edges scheduled.
        """
        if cycles_per_slot < 1:
            raise SimulationError(
                f"cycles_per_slot must be >= 1, got {cycles_per_slot}"
            )
        scheduled = 0
        for slot, action, _index, fault in plan.events():
            time = slot * cycles_per_slot
            if time < self.now:
                raise SimulationError(
                    f"fault edge at slot {slot} (t={time}) lies in the past "
                    f"(now={self.now}); attach the plan before running"
                )
            self.at(
                time, dispatcher, action, fault, slot,
                priority=FAULT_EVENT_PRIORITY,
            )
            scheduled += 1
        return scheduled

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or ``until`` is reached.

        Returns the simulation time at which execution stopped.  When
        ``until`` is given, :attr:`now` is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run``
        calls observe contiguous windows.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        try:
            while self._heap:
                event_time = self._heap[0][0]
                if until is not None and event_time > until:
                    break
                time, _priority, _seq, callback, args = heapq.heappop(self._heap)
                self.now = time
                self.event_count += 1
                callback(*args)
                if self._stopped:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # -- helpers -----------------------------------------------------------

    def all_of(self, processes: Iterable[Process]) -> Generator:
        """Process body that waits for every process in ``processes``."""
        results = []
        for process in processes:
            value = yield process
            results.append(value if value is not None else process.value)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={len(self._heap)})"
