"""Structured event tracing.

Hardware models emit :class:`TraceEvent` records (release, enqueue,
dispatch, preempt, complete, deadline-miss, ...) into a
:class:`TraceRecorder`.  The metrics layer consumes traces to compute
success ratios, throughput and latency statistics, the observability
layer (:mod:`repro.obs`) converts them to Perfetto timelines, and the
tests use them to assert ordering invariants (e.g. EDF never runs a
later-deadline job while an earlier-deadline job is ready).

Determinism contract: event times are *integer slot indices*, validated
through :func:`repro.core.timeslot.as_slot_count` at the recorder
boundary, so trace digests never depend on float representation
(iolint rule IOL004 enforces the same contract statically).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

#: Lazily-bound :func:`repro.core.timeslot.as_slot_count`.  Bound on the
#: first recorded event instead of at import time because
#: ``repro.core`` itself imports this module (hypervisor configuration).
_as_slot_count: Optional[Callable[[Any, str], int]] = None


def _slot_time(value: Any) -> int:
    """Validate one event time as an integer slot index."""
    global _as_slot_count
    if _as_slot_count is None:
        from repro.core.timeslot import as_slot_count

        _as_slot_count = as_slot_count
    return _as_slot_count(value, "trace event time")


@dataclass(frozen=True)
class TraceEvent:
    """One slot-stamped occurrence inside the simulated system.

    ``time`` is an integer slot index -- every producer schedules in
    whole slots, and keeping the type integral keeps trace digests
    byte-stable across runs (the IOL004 contract).
    """

    time: int
    category: str
    source: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.time}, {self.category}, {self.source})"


class TraceRecorder:
    """Append-only event log with per-category indexing.

    Recording can be disabled wholesale (``enabled=False``) for large
    parameter sweeps where only aggregate counters are needed, or limited
    to a category whitelist.  With ``max_events`` set the recorder
    becomes a ring buffer: once full, the *oldest* event is evicted for
    each new one and :attr:`dropped_events` counts the evictions --
    truncation is always explicit, never silent.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[List[str]] = None,
        max_events: Optional[int] = None,
    ):
        if max_events is not None:
            max_events = int(max_events)
            if max_events < 1:
                raise ValueError(
                    f"max_events must be >= 1 (or None for unbounded), "
                    f"got {max_events}"
                )
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.max_events = max_events
        self.events: Deque[TraceEvent] = deque()
        self._by_category: Dict[str, Deque[TraceEvent]] = {}
        self.counters: Dict[str, int] = {}
        #: Events evicted by the ring buffer (0 when unbounded).
        self.dropped_events = 0

    def record(
        self, time: int, category: str, source: str, **payload: Any
    ) -> None:
        """Log one event (cheap no-op when disabled/filtered).

        ``time`` must be an integer slot index (integral floats are
        normalized, fractional values raise ``ValueError``).
        """
        if self.categories is not None and category not in self.categories:
            # A whitelisted recorder observes *only* its categories:
            # neither events nor counters exist for filtered ones.
            return
        if not self.enabled:
            self.counters[category] = self.counters.get(category, 0) + 1
            return
        # Validate before counting, so a rejected time never leaves a
        # phantom counter increment behind.
        event = TraceEvent(
            time=_slot_time(time), category=category, source=source,
            payload=payload,
        )
        self.counters[category] = self.counters.get(category, 0) + 1
        if self.max_events is not None and len(self.events) >= self.max_events:
            self._evict_oldest()
        self.events.append(event)
        self._by_category.setdefault(category, deque()).append(event)

    def _evict_oldest(self) -> None:
        """Drop the globally-oldest event (ring-buffer mode)."""
        oldest = self.events.popleft()
        bucket = self._by_category[oldest.category]
        # Per-category deques preserve insertion order, so the global
        # oldest of a category is always that bucket's leftmost entry.
        bucket.popleft()
        if not bucket:
            del self._by_category[oldest.category]
        self.dropped_events += 1

    # -- queries -----------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        return list(self._by_category.get(category, ()))

    def count(self, category: str) -> int:
        """Occurrences of ``category`` *passing the whitelist*.

        Counts keep accumulating when the recorder is disabled
        (``enabled=False``), which is the cheap sweep mode; but a
        category filtered out by the ``categories`` whitelist is never
        counted -- ``count`` and :meth:`by_category` agree on what the
        recorder observed.  Ring-buffer eviction does *not* decrement
        counts: ``count(c) - len(by_category(c))`` is the number of
        evicted ``c`` events.
        """
        return self.counters.get(category, 0)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [event for event in self.events if predicate(event)]

    def sources(self) -> List[str]:
        return sorted({event.source for event in self.events})

    def clear(self) -> None:
        self.events.clear()
        self._by_category.clear()
        self.counters.clear()
        self.dropped_events = 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder({len(self.events)} events, enabled={self.enabled})"
