"""Structured event tracing.

Hardware models emit :class:`TraceEvent` records (release, enqueue,
dispatch, preempt, complete, deadline-miss, ...) into a
:class:`TraceRecorder`.  The metrics layer consumes traces to compute
success ratios, throughput and latency statistics, and the tests use them
to assert ordering invariants (e.g. EDF never runs a later-deadline job
while an earlier-deadline job is ready).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence inside the simulated system."""

    time: float
    category: str
    source: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.time}, {self.category}, {self.source})"


class TraceRecorder:
    """Append-only event log with per-category indexing.

    Recording can be disabled wholesale (``enabled=False``) for large
    parameter sweeps where only aggregate counters are needed, or limited
    to a category whitelist.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[List[str]] = None,
    ):
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.events: List[TraceEvent] = []
        self._by_category: Dict[str, List[TraceEvent]] = {}
        self.counters: Dict[str, int] = {}

    def record(
        self, time: float, category: str, source: str, **payload: Any
    ) -> None:
        """Log one event (cheap no-op when disabled/filtered)."""
        self.counters[category] = self.counters.get(category, 0) + 1
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        event = TraceEvent(time=time, category=category, source=source, payload=payload)
        self.events.append(event)
        self._by_category.setdefault(category, []).append(event)

    # -- queries -----------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        return list(self._by_category.get(category, []))

    def count(self, category: str) -> int:
        """Total occurrences of ``category`` (counted even when disabled)."""
        return self.counters.get(category, 0)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        return [event for event in self.events if predicate(event)]

    def sources(self) -> List[str]:
        return sorted({event.source for event in self.events})

    def clear(self) -> None:
        self.events.clear()
        self._by_category.clear()
        self.counters.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecorder({len(self.events)} events, enabled={self.enabled})"
