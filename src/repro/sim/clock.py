"""Global timer: the single timing source of the modelled platform.

The paper assumes "the system elements are synchronized by a single source
of timing (global timer)" (Sec. II).  :class:`GlobalTimer` binds the three
time bases used throughout the reproduction together:

* **cycles** -- the native unit of the simulator (the FPGA clock,
  100 MHz in the paper's evaluation),
* **time slots** -- the scheduling quantum of the hypervisor's two-layer
  scheduler (an integer number of cycles),
* **seconds** -- wall-clock, for reporting throughput in bytes/second.
"""

from __future__ import annotations

from repro.sim.engine import SimulationError, Simulator

#: Platform clock used across the paper's evaluation (Sec. V).
DEFAULT_FREQUENCY_HZ = 100_000_000

#: Default scheduling quantum: cycles per hypervisor time slot.
DEFAULT_CYCLES_PER_SLOT = 1_000


class GlobalTimer:
    """Conversions between cycles, scheduler time slots and seconds."""

    def __init__(
        self,
        sim: Simulator,
        frequency_hz: int = DEFAULT_FREQUENCY_HZ,
        cycles_per_slot: int = DEFAULT_CYCLES_PER_SLOT,
    ):
        if frequency_hz <= 0:
            raise SimulationError(f"frequency must be positive, got {frequency_hz}")
        if cycles_per_slot <= 0:
            raise SimulationError(
                f"cycles_per_slot must be positive, got {cycles_per_slot}"
            )
        self.sim = sim
        self.frequency_hz = frequency_hz
        self.cycles_per_slot = cycles_per_slot

    # -- current time ------------------------------------------------------

    @property
    def now_cycles(self) -> float:
        return self.sim.now

    @property
    def now_slots(self) -> int:
        """Index of the current time slot (floor of cycles / slot size)."""
        return int(self.sim.now // self.cycles_per_slot)

    @property
    def now_seconds(self) -> float:
        return self.sim.now / self.frequency_hz

    # -- conversions -------------------------------------------------------

    def slots_to_cycles(self, slots: float) -> float:
        return slots * self.cycles_per_slot

    def cycles_to_slots(self, cycles: float) -> float:
        return cycles / self.cycles_per_slot

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def slot_start_cycle(self, slot_index: int) -> float:
        """Absolute cycle at which time slot ``slot_index`` begins."""
        return slot_index * self.cycles_per_slot

    def next_slot_boundary(self) -> float:
        """Absolute cycle of the next slot boundary strictly after now.

        If the simulator sits exactly on a boundary, returns the following
        one (a scheduler invoked at a boundary acts *for* that slot and
        must next wake at the subsequent boundary).
        """
        current_slot = int(self.sim.now // self.cycles_per_slot)
        boundary = (current_slot + 1) * self.cycles_per_slot
        return float(boundary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalTimer({self.frequency_hz / 1e6:.0f} MHz, "
            f"{self.cycles_per_slot} cycles/slot, now={self.sim.now})"
        )
