"""Blocking resources for contention modelling.

:class:`Resource` is a counted semaphore with FIFO grant order -- the NoC
links and shared I/O controllers use it to model arbitration delay.
:class:`Store` is a blocking FIFO buffer of bounded capacity -- router
input buffers and legacy (FIFO) I/O queues are Stores.

Both are implemented on top of :class:`~repro.sim.engine.Signal` so they
compose with generator processes: ``yield store.get(consumer)``-style usage
is expressed through request/grant signal pairs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.engine import Signal, SimulationError, Simulator


class Resource:
    """Counted semaphore with deterministic FIFO grant order."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self.in_use = 0
        self._wait_queue: Deque[Signal] = deque()
        # contention statistics
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.peak_queue_length = 0

    def acquire(self) -> Generator:
        """Process sub-generator: ``yield from resource.acquire()``."""
        requested_at = self.sim.now
        if self.in_use < self.capacity and not self._wait_queue:
            self.in_use += 1
            self.total_acquisitions += 1
            return
        grant = self.sim.signal(name=f"{self.name}.grant")
        self._wait_queue.append(grant)
        self.peak_queue_length = max(self.peak_queue_length, len(self._wait_queue))
        yield grant
        self.total_acquisitions += 1
        self.total_wait_time += self.sim.now - requested_at

    def release(self) -> None:
        """Release one unit; wakes the head of the wait queue, if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._wait_queue:
            # Hand the unit directly to the next waiter: in_use stays
            # constant across the hand-off so capacity is never exceeded.
            grant = self._wait_queue.popleft()
            grant.fire()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._wait_queue)

    @property
    def mean_wait(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.total_acquisitions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} busy, "
            f"{len(self._wait_queue)} queued)"
        )


class Store:
    """Bounded blocking FIFO buffer.

    ``put`` blocks while the store is full; ``get`` blocks while it is
    empty.  Both are process sub-generators used with ``yield from``.
    A ``capacity`` of ``None`` means unbounded (puts never block).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "",
    ):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "store"
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[Tuple[Signal, Any]] = deque()
        self.total_puts = 0
        self.total_gets = 0
        self.peak_occupancy = 0

    def put(self, item: Any) -> Generator:
        """Process sub-generator: block until the item is accepted."""
        if self.capacity is None or len(self._items) < self.capacity:
            self._accept(item)
            return
        gate = self.sim.signal(name=f"{self.name}.put")
        self._putters.append((gate, item))
        yield gate

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._accept(item)
        return True

    def _accept(self, item: Any) -> None:
        self._items.append(item)
        self.total_puts += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        if self._getters:
            gate = self._getters.popleft()
            gate.fire(self._release_head())

    def get(self) -> Generator:
        """Process sub-generator: block until an item is available.

        The item is delivered as the generator's return value, so use
        ``item = yield from store.get()``.
        """
        if self._items:
            return self._release_head()
        gate = self.sim.signal(name=f"{self.name}.get")
        self._getters.append(gate)
        item = yield gate
        return item

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        return True, self._release_head()

    def _release_head(self) -> Any:
        item = self._items.popleft()
        self.total_gets += 1
        # Space freed: admit a blocked putter, if any.
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            gate, pending = self._putters.popleft()
            self._items.append(pending)
            self.total_puts += 1
            gate.fire()
        return item

    def peek(self) -> Any:
        """Return (without removing) the head item, or None when empty."""
        return self._items[0] if self._items else None

    def items(self) -> List[Any]:
        """Snapshot of buffered items in FIFO order."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"Store({self.name!r}, {len(self._items)}/{cap})"
