"""Deterministic random-number sources.

Every stochastic element of the reproduction (task release jitter,
synthetic workload composition, payload generation) draws from a
:class:`RandomSource` derived from a single experiment seed, so whole
experiments replay bit-identically.  :func:`spawn_streams` splits one
seed into independent named child streams, which keeps a change in one
subsystem's draw count from perturbing the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Optional, Sequence


class RandomSource(random.Random):
    """A named, seeded ``random.Random`` with domain-specific helpers."""

    def __init__(self, seed: int, name: str = ""):
        self.name = name
        self.seed_value = seed
        super().__init__(seed)

    def spawn(self, child_name: str) -> "RandomSource":
        """Derive an independent child stream keyed by ``child_name``.

        Derivation is *stateless* -- it hashes ``(seed_value, name)`` and
        never touches this generator's position -- so children can be
        spawned in any order, or in different processes, and still yield
        the same draws.  The parallel experiment runner relies on this.
        """
        return RandomSource(derive_seed(self.seed_value, child_name), child_name)

    def streams(self, *child_names: str) -> "List[RandomSource]":
        """Spawn several named children at once, in argument order.

        Convenience over repeated :meth:`spawn`; ``pad, wl = rng.streams(
        "pad", "wl")`` derives exactly the same streams as two spawn
        calls, so it is safe to adopt without perturbing replay.
        """
        return [self.spawn(name) for name in child_names]

    # -- domain helpers ----------------------------------------------------

    def log_uniform(self, low: float, high: float) -> float:
        """Sample log-uniformly from ``[low, high]`` (period generation)."""
        if low <= 0 or high < low:
            raise ValueError(f"invalid log-uniform range [{low}, {high}]")
        import math

        return math.exp(self.uniform(math.log(low), math.log(high)))

    def uunifast(self, n: int, total_utilization: float) -> List[float]:
        """UUniFast: n task utilizations summing to ``total_utilization``.

        Bini & Buttazzo's unbiased utilization-splitting algorithm; the
        standard generator for schedulability experiments.
        """
        if n < 1:
            raise ValueError(f"need at least one task, got n={n}")
        if total_utilization < 0:
            raise ValueError(f"negative utilization {total_utilization}")
        utilizations = []
        remaining = total_utilization
        for i in range(1, n):
            next_remaining = remaining * self.random() ** (1.0 / (n - i))
            utilizations.append(remaining - next_remaining)
            remaining = next_remaining
        utilizations.append(remaining)
        return utilizations

    def choice_weighted(self, items: Sequence, weights: Sequence[float]):
        """Single weighted choice (wrapper over ``random.choices``)."""
        return self.choices(list(items), weights=list(weights), k=1)[0]


def derive_seed(base_seed: int, name: str) -> int:
    """Stable 63-bit seed derived from a base seed and a stream name."""
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def spawn_streams(
    base_seed: int, names: Iterable[str], prefix: Optional[str] = None
) -> Dict[str, RandomSource]:
    """Create one independent :class:`RandomSource` per name."""
    streams: Dict[str, RandomSource] = {}
    for name in names:
        full_name = f"{prefix}.{name}" if prefix else name
        streams[name] = RandomSource(derive_seed(base_seed, full_name), full_name)
    return streams
