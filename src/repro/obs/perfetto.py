"""Chrome/Perfetto ``trace.json`` export of a recorded run.

Converts a :class:`~repro.sim.trace.TraceRecorder` (plus, optionally, a
:class:`~repro.faults.trace.FaultTrace`) into the Chrome trace-event
JSON format, which both ``chrome://tracing`` and ``ui.perfetto.dev``
open directly.  Track layout -- one track per VM, device and scheduler
component, grouped into four processes:

====  ===========  =========================================
pid   process      threads (tracks)
====  ===========  =========================================
1     scheduler    G-Sched, P-channel, R-channel, Hypervisor
2     vms          one per VM id seen in the trace
3     devices      one per device name seen in the trace
4     faults       fault-plan injections (windows, storms)
====  ===========  =========================================

Raw trace events become instant events (phase ``"i"``); derived job
spans (:func:`repro.obs.events.derive_job_spans`) become complete
events (phase ``"X"``) with slot-granular durations.  Timestamps are
microseconds: ``slot * slot_us`` with the paper's 10 us case-study slot
by default, kept integral so serialization is byte-stable.

Determinism contract: the emitted document is a pure function of the
recorder/fault-trace contents -- metadata first (sorted), then spans,
then instants in recording order -- and :func:`render_chrome_trace`
serializes with sorted keys and fixed separators, so identical runs
produce byte-identical ``trace.json`` artefacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.trace import FaultTrace
from repro.obs.events import (
    DEVICE_CATEGORIES,
    VM_CATEGORIES,
    derive_job_spans,
)
from repro.sim.trace import TraceEvent, TraceRecorder

#: Slot length in microseconds (the case study's 10 us I/O slot).
DEFAULT_SLOT_US = 10

_PID_SCHED = 1
_PID_VMS = 2
_PID_DEVICES = 3
_PID_FAULTS = 4

_PROCESS_NAMES = {
    _PID_SCHED: "scheduler",
    _PID_VMS: "vms",
    _PID_DEVICES: "devices",
    _PID_FAULTS: "faults",
}

#: Fixed scheduler-track thread ids.
_TID_GSCHED = 1
_TID_PCHANNEL = 2
_TID_RCHANNEL = 3
_TID_HYPERVISOR = 4

_SCHED_THREAD_NAMES = {
    _TID_GSCHED: "G-Sched",
    _TID_PCHANNEL: "P-channel",
    _TID_RCHANNEL: "R-channel",
    _TID_HYPERVISOR: "Hypervisor",
}


def _vm_id_of(event: TraceEvent) -> Optional[int]:
    vm = event.payload.get("vm")
    return vm if isinstance(vm, int) else None


def _device_of(event: TraceEvent) -> Optional[str]:
    device = event.payload.get("device")
    return device if isinstance(device, str) else None


def _event_track(event: TraceEvent) -> Tuple[int, object]:
    """Map one raw event to its ``(pid, track key)`` coordinates."""
    if event.category in VM_CATEGORIES:
        vm = _vm_id_of(event)
        if vm is not None:
            return _PID_VMS, vm
    if event.category in DEVICE_CATEGORIES:
        device = _device_of(event)
        if device is not None:
            return _PID_DEVICES, device
    if event.category.startswith("gsched."):
        return _PID_SCHED, _TID_GSCHED
    if event.category.startswith("pchannel."):
        return _PID_SCHED, _TID_PCHANNEL
    if event.category.startswith(("rchannel.", "lsched.", "iopool.")):
        return _PID_SCHED, _TID_RCHANNEL
    return _PID_SCHED, _TID_HYPERVISOR


def _collect_tracks(
    recorder: TraceRecorder, fault_trace: Optional[FaultTrace]
) -> Tuple[Dict[int, int], Dict[str, int], Dict[str, int]]:
    """Assign deterministic thread ids to VM, device and fault tracks."""
    vms = sorted(
        {
            vm
            for event in recorder
            if (vm := _vm_id_of(event)) is not None
        }
    )
    devices = sorted(
        {
            device
            for event in recorder
            if (device := _device_of(event)) is not None
        }
    )
    fault_kinds: List[str] = []
    if fault_trace is not None:
        fault_kinds = sorted({event.kind for event in fault_trace})
    vm_tids = {vm: vm + 1 for vm in vms}
    device_tids = {device: index + 1 for index, device in enumerate(devices)}
    fault_tids = {kind: index + 1 for index, kind in enumerate(fault_kinds)}
    return vm_tids, device_tids, fault_tids


def _metadata_events(
    vm_tids: Dict[int, int],
    device_tids: Dict[str, int],
    fault_tids: Dict[str, int],
) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for pid in sorted(_PROCESS_NAMES):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _PROCESS_NAMES[pid]},
            }
        )
    for tid in sorted(_SCHED_THREAD_NAMES):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_SCHED,
                "tid": tid,
                "args": {"name": _SCHED_THREAD_NAMES[tid]},
            }
        )
    for vm in sorted(vm_tids):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_VMS,
                "tid": vm_tids[vm],
                "args": {"name": f"VM {vm}"},
            }
        )
    for device in sorted(device_tids):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_DEVICES,
                "tid": device_tids[device],
                "args": {"name": device},
            }
        )
    for kind in sorted(fault_tids):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_FAULTS,
                "tid": fault_tids[kind],
                "args": {"name": kind},
            }
        )
    return events


def chrome_trace(
    recorder: TraceRecorder,
    fault_trace: Optional[FaultTrace] = None,
    slot_us: int = DEFAULT_SLOT_US,
) -> Dict[str, Any]:
    """Build the Chrome trace-event document for one recorded run."""
    if not isinstance(slot_us, int) or isinstance(slot_us, bool) or slot_us < 1:
        raise ValueError(f"slot_us must be a positive integer, got {slot_us!r}")
    vm_tids, device_tids, fault_tids = _collect_tracks(recorder, fault_trace)
    trace_events = _metadata_events(vm_tids, device_tids, fault_tids)

    for span in derive_job_spans(recorder):
        if span.track.startswith("vm"):
            pid, tid = _PID_VMS, vm_tids[int(span.track[2:])]
        else:
            pid, tid = _PID_SCHED, _TID_PCHANNEL
        trace_events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_slot * slot_us,
                "dur": max(span.duration_slots, 1) * slot_us,
                "pid": pid,
                "tid": tid,
                "cat": "span",
                "args": span.args,
            }
        )

    for event in recorder:
        pid, key = _event_track(event)
        if pid == _PID_VMS:
            tid = vm_tids[key]  # type: ignore[index]
        elif pid == _PID_DEVICES:
            tid = device_tids[key]  # type: ignore[index]
        else:
            tid = int(key)  # type: ignore[arg-type]
        args = dict(sorted(event.payload.items()))
        args["source"] = event.source
        trace_events.append(
            {
                "name": event.category,
                "ph": "i",
                "ts": event.time * slot_us,
                "pid": pid,
                "tid": tid,
                "s": "t",
                "cat": event.category,
                "args": args,
            }
        )

    if fault_trace is not None:
        for fault in fault_trace:
            detail = dict(sorted(fault.detail.items()))
            detail["target"] = fault.target
            trace_events.append(
                {
                    "name": f"{fault.kind}:{fault.action}",
                    "ph": "i",
                    "ts": fault.slot * slot_us,
                    "pid": _PID_FAULTS,
                    "tid": fault_tids[fault.kind],
                    "s": "t",
                    "cat": fault.kind,
                    "args": detail,
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"slot_us": slot_us},
    }


def render_chrome_trace(document: Dict[str, Any]) -> str:
    """Serialize a trace document canonically (byte-stable)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


_REQUIRED_KEYS = {"name", "ph", "pid", "tid", "args"}


def validate_chrome_trace(document: Dict[str, Any]) -> None:
    """Schema check over a Chrome trace document; raises on violations.

    Covers the subset of the format this exporter emits: metadata
    events, complete events with non-negative integral ``ts``/``dur``,
    and instant events with a scope.  The CI smoke job runs this over
    the exported artefact so a malformed document fails fast instead of
    silently rendering an empty timeline.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("document must be a dict with a traceEvents list")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        missing = _REQUIRED_KEYS - set(event)
        if missing:
            raise ValueError(
                f"traceEvents[{index}] missing keys: {sorted(missing)}"
            )
        phase = event["ph"]
        if phase == "M":
            if event["name"] not in ("process_name", "thread_name"):
                raise ValueError(
                    f"traceEvents[{index}]: unknown metadata {event['name']!r}"
                )
            if "name" not in event["args"]:
                raise ValueError(
                    f"traceEvents[{index}]: metadata args need a name"
                )
            continue
        if phase not in ("X", "i"):
            raise ValueError(
                f"traceEvents[{index}]: unsupported phase {phase!r}"
            )
        ts = event.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            raise ValueError(
                f"traceEvents[{index}]: ts must be a non-negative int, "
                f"got {ts!r}"
            )
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 1:
                raise ValueError(
                    f"traceEvents[{index}]: dur must be a positive int, "
                    f"got {dur!r}"
                )
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            raise ValueError(
                f"traceEvents[{index}]: instant scope must be g/p/t, "
                f"got {event.get('s')!r}"
            )
