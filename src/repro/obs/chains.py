"""Chain instances and end-to-end latencies derived from trace events.

:mod:`repro.chains` defines what a cause-effect chain *is*; this module
measures one from a recorded trace.  It consumes exactly two existing
event categories -- ``iopool.enqueue`` (a run-time job's release into
its VM's I/O pool) and ``job_complete`` (the hypervisor completion
hook) -- and reconstructs, per chain:

* **instances** (backward, for data age): for every completed job of
  the *last* hop, walk backward through the register semantics -- each
  hop read the predecessor value with the latest publication no later
  than its own release -- down to the first-hop job whose sample the
  output transitively consumed.  The instance's *data age* is the
  output completion minus that first release.
* **reactions** (forward, for reaction time): for an external input
  arriving just after a first-hop release, follow the *next* first-hop
  job forward -- each subsequent hop picks the value up with its first
  release at or after the predecessor's completion -- to the output
  completion.  The *reaction* is that completion minus the input slot.

Completion times follow the executor convention ``completed_at =
slot + 1`` (a job finishing *in* slot ``s`` has its result at the slot
boundary ``s + 1``); the ``job_complete`` event is stamped ``s``, so
derivation adds one.  Instances whose backward walk runs off the start
of the trace (warm-up) or whose forward walk runs off the end (still in
flight at the horizon) are skipped, never guessed.

Derivation is a pure function of the event sequence: re-deriving from
the same trace yields the identical instance list.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chains.model import CauseEffectChain
from repro.obs.events import IOPOOL_ENQUEUE, JOB_COMPLETE, Span
from repro.sim.trace import TraceRecorder

#: The categories chain derivation needs; pass to a whitelisting
#: :class:`TraceRecorder` to keep chain-instrumented sweeps cheap.
CHAIN_TRACE_CATEGORIES = (IOPOOL_ENQUEUE, JOB_COMPLETE)


@dataclass(frozen=True)
class ChainInstance:
    """One backward-resolved chain instance (data-age sample).

    ``releases[i]``/``completions[i]`` belong to hop ``i``'s job; the
    data behind the output at ``completions[-1]`` was sampled at
    ``releases[0]``.
    """

    chain_name: str
    releases: Tuple[int, ...]
    completions: Tuple[int, ...]

    @property
    def data_age(self) -> int:
        return self.completions[-1] - self.releases[0]


@dataclass(frozen=True)
class ChainReaction:
    """One forward-resolved reaction sample.

    ``input_slot`` is the first-hop release the (hypothetical) external
    input just missed; the chain reacts at ``completions[-1]``.
    """

    chain_name: str
    input_slot: int
    releases: Tuple[int, ...]
    completions: Tuple[int, ...]

    @property
    def reaction(self) -> int:
        return self.completions[-1] - self.input_slot


class _TaskJobs:
    """One task's observed jobs, indexed for both walk directions."""

    def __init__(self) -> None:
        #: All observed releases, sorted (completed or not).
        self.releases: List[int] = []
        #: release -> completion (``None`` while in flight).
        self.completion_of: Dict[int, Optional[int]] = {}
        #: (completion, release) pairs of completed jobs, sorted by
        #: completion -- ties broken toward the later (fresher) release.
        self.by_completion: List[Tuple[int, int]] = []
        self._completions: List[int] = []

    def freeze(self) -> None:
        self.releases.sort()
        self.by_completion.sort()
        self._completions = [entry[0] for entry in self.by_completion]

    def latest_publication_before(
        self, slot: int
    ) -> Optional[Tuple[int, int]]:
        """The completed job with the latest completion ``<= slot``,
        as ``(release, completion)``; None when nothing published yet."""
        index = bisect.bisect_right(self._completions, slot)
        if index == 0:
            return None
        completion, release = self.by_completion[index - 1]
        return release, completion

    def first_release_at_or_after(self, slot: int) -> Optional[int]:
        index = bisect.bisect_left(self.releases, slot)
        if index == len(self.releases):
            return None
        return self.releases[index]


def _collect_task_jobs(
    recorder: TraceRecorder, task_names: Tuple[str, ...]
) -> Dict[str, _TaskJobs]:
    """Join enqueue and completion events into per-task job records."""
    wanted = set(task_names)
    jobs: Dict[str, _TaskJobs] = {name: _TaskJobs() for name in task_names}
    release_of: Dict[str, int] = {}
    for event in recorder:
        job_name = event.payload.get("job")
        if not isinstance(job_name, str) or "#" not in job_name:
            continue
        task_name = job_name.rsplit("#", 1)[0]
        if task_name not in wanted:
            continue
        record = jobs[task_name]
        if event.category == IOPOOL_ENQUEUE and job_name not in release_of:
            release_of[job_name] = event.time
            record.releases.append(event.time)
            record.completion_of[event.time] = None
        elif event.category == JOB_COMPLETE and job_name in release_of:
            release = release_of[job_name]
            if record.completion_of.get(release) is None:
                completion = event.time + 1
                record.completion_of[release] = completion
                record.by_completion.append((completion, release))
    for record in jobs.values():
        record.freeze()
    return jobs


def derive_chain_instances(
    recorder: TraceRecorder, chain: CauseEffectChain
) -> List[ChainInstance]:
    """Backward-resolve every observable instance of ``chain``.

    One candidate per completed last-hop job; candidates whose backward
    walk finds no published predecessor value (trace warm-up) are
    dropped.  Sorted by last-hop release.
    """
    jobs = _collect_task_jobs(recorder, chain.task_names)
    instances: List[ChainInstance] = []
    last = jobs[chain.task_names[-1]]
    for release in last.releases:
        completion = last.completion_of[release]
        if completion is None:
            continue
        releases = [release]
        completions = [completion]
        cursor = release
        complete = True
        for task_name in reversed(chain.task_names[:-1]):
            published = jobs[task_name].latest_publication_before(cursor)
            if published is None:
                complete = False
                break
            hop_release, hop_completion = published
            releases.append(hop_release)
            completions.append(hop_completion)
            cursor = hop_release
        if complete:
            instances.append(
                ChainInstance(
                    chain_name=chain.name,
                    releases=tuple(reversed(releases)),
                    completions=tuple(reversed(completions)),
                )
            )
    return instances


def derive_chain_reactions(
    recorder: TraceRecorder, chain: CauseEffectChain
) -> List[ChainReaction]:
    """Forward-resolve every observable reaction sample of ``chain``.

    The worst input arrives just after a first-hop release ``r_k``: it
    is sampled by the next release, then each later hop picks the value
    (or a fresher one) up with its first release at or after the
    predecessor's completion.  Samples whose forward walk reaches a job
    still in flight at the horizon are dropped.
    """
    jobs = _collect_task_jobs(recorder, chain.task_names)
    first = jobs[chain.task_names[0]]
    reactions: List[ChainReaction] = []
    for input_slot, sampled in zip(first.releases, first.releases[1:]):
        releases = [sampled]
        completions: List[int] = []
        cursor: Optional[int] = sampled
        complete = True
        for hop, task_name in enumerate(chain.task_names):
            record = jobs[task_name]
            if hop > 0:
                cursor = record.first_release_at_or_after(completions[-1])
                if cursor is None:
                    complete = False
                    break
                releases.append(cursor)
            assert cursor is not None
            completion = record.completion_of.get(cursor)
            if completion is None:
                complete = False
                break
            completions.append(completion)
        if complete:
            reactions.append(
                ChainReaction(
                    chain_name=chain.name,
                    input_slot=input_slot,
                    releases=tuple(releases),
                    completions=tuple(completions),
                )
            )
    return reactions


def derive_chain_spans(
    recorder: TraceRecorder, chain: CauseEffectChain
) -> List[Span]:
    """Render the chain's instances as spans on a per-chain track.

    Each span covers sample (first-hop release) to output (last-hop
    completion) and carries the data age, so chain latency lands in the
    same Perfetto timeline as the job wait/run spans.
    """
    spans = []
    for index, instance in enumerate(derive_chain_instances(recorder, chain)):
        spans.append(
            Span(
                name=f"{chain.name}#{index}",
                track=f"chain.{chain.name}",
                start_slot=instance.releases[0],
                end_slot=instance.completions[-1],
                args={
                    "kind": "chain",
                    "chain": chain.name,
                    "hops": len(instance.releases),
                    "data_age": instance.data_age,
                },
            )
        )
    return spans
