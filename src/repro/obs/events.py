"""Event taxonomy and the span model derived from raw trace events.

The instrumented hardware models emit *point* events -- one
:class:`~repro.sim.trace.TraceEvent` per scheduler decision, queue
transition or fault symptom, keyed by integer slot.  This module is the
single place the category names are declared (producers and consumers
both import them, so a typo cannot silently split a category in two)
and it reconstructs *spans* -- slot intervals with a start and an end --
from those points:

* a **wait span** runs from a job's ``iopool.enqueue`` to its first
  dispatch: time buffered in the pool before the two-layer scheduler
  granted it a slot;
* a **run span** covers a job's first dispatch through its last
  observed activity (final dispatch or completion): the window in which
  the executor worked on it.

Span derivation is a pure function of the recorded event sequence;
re-deriving from the same trace yields the identical span list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.trace import TraceRecorder

# -- taxonomy ---------------------------------------------------------------

#: G-Sched granted a free slot to a VM (budgeted or background).
GSCHED_GRANT = "gsched.grant"
#: A server's budget was replenished at a period boundary.
GSCHED_REPLENISH = "gsched.replenish"
#: L-Sched staged a job into the shadow register.
LSCHED_STAGE = "lsched.stage"
#: L-Sched preempted the staged job with an earlier-deadline arrival.
LSCHED_PREEMPT = "lsched.preempt"
#: A pool accepted a run-time submission.
IOPOOL_ENQUEUE = "iopool.enqueue"
#: A pool bounced a submission (queue full -- back-pressure).
IOPOOL_REJECT = "iopool.reject"
#: Containment discarded a buffered job (drain or predicate drop).
IOPOOL_DROP = "iopool.drop"
#: The R-channel executor ran the staged job for one slot.
RCHANNEL_DISPATCH = "rchannel.dispatch"
#: An allocated slot was burned by a vetoed (stalled-device) job.
RCHANNEL_BURN = "rchannel.burn"
#: The P-channel executed a table slot of a pre-defined task.
PCHANNEL_FIRE = "pchannel.fire"
#: The guarded driver path retried after a device stall.
DRIVER_RETRY = "driver.retry"
#: The guarded driver path abandoned an operation (all retries failed).
DRIVER_TIMEOUT = "driver.timeout"
#: A job finished (recorded by the hypervisor completion hook).
JOB_COMPLETE = "job_complete"

#: Every category the instrumented models emit, in taxonomy order.
CATEGORIES = (
    GSCHED_GRANT,
    GSCHED_REPLENISH,
    LSCHED_STAGE,
    LSCHED_PREEMPT,
    IOPOOL_ENQUEUE,
    IOPOOL_REJECT,
    IOPOOL_DROP,
    RCHANNEL_DISPATCH,
    RCHANNEL_BURN,
    PCHANNEL_FIRE,
    DRIVER_RETRY,
    DRIVER_TIMEOUT,
    JOB_COMPLETE,
)

#: Categories whose events carry a ``vm`` payload key (VM-track events).
VM_CATEGORIES = frozenset(
    {
        LSCHED_STAGE,
        LSCHED_PREEMPT,
        IOPOOL_ENQUEUE,
        IOPOOL_REJECT,
        IOPOOL_DROP,
        RCHANNEL_DISPATCH,
        RCHANNEL_BURN,
    }
)

#: Categories whose events carry a ``device`` payload key.
DEVICE_CATEGORIES = frozenset({DRIVER_RETRY, DRIVER_TIMEOUT})


# -- span model -------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """One derived slot interval: ``[start_slot, end_slot)`` on a track."""

    name: str
    track: str
    start_slot: int
    end_slot: int
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_slot < self.start_slot:
            raise ValueError(
                f"span {self.name!r} ends ({self.end_slot}) before it "
                f"starts ({self.start_slot})"
            )

    @property
    def duration_slots(self) -> int:
        return self.end_slot - self.start_slot


@dataclass
class _JobActivity:
    """Accumulated per-job observations while walking the event stream."""

    vm: Optional[int] = None
    enqueue_slot: Optional[int] = None
    first_dispatch: Optional[int] = None
    last_dispatch: Optional[int] = None
    complete_slot: Optional[int] = None
    dispatches: int = 0


def _collect_activity(recorder: TraceRecorder) -> Dict[str, _JobActivity]:
    """Fold the event stream into per-job activity records.

    Only a job's *first* enqueue is kept (periodic task instances carry
    unique job names, so a second enqueue means re-submission of the
    same job, where the first observation is the release -- and
    determinism only needs a consistent rule).
    """
    jobs: Dict[str, _JobActivity] = {}
    for event in recorder:
        job_name = event.payload.get("job")
        if not isinstance(job_name, str):
            continue
        activity = jobs.setdefault(job_name, _JobActivity())
        vm = event.payload.get("vm")
        if activity.vm is None and isinstance(vm, int):
            activity.vm = vm
        if event.category == IOPOOL_ENQUEUE and activity.enqueue_slot is None:
            activity.enqueue_slot = event.time
        elif event.category in (RCHANNEL_DISPATCH, PCHANNEL_FIRE):
            if activity.first_dispatch is None:
                activity.first_dispatch = event.time
            activity.last_dispatch = event.time
            activity.dispatches += 1
        elif event.category == JOB_COMPLETE and activity.complete_slot is None:
            activity.complete_slot = event.time
    return jobs


def _job_track(job_name: str, activity: _JobActivity) -> str:
    if activity.vm is not None:
        return f"vm{activity.vm}"
    return "pchannel"


def derive_job_spans(recorder: TraceRecorder) -> List[Span]:
    """Reconstruct wait/run spans for every job seen in the trace.

    Jobs whose enqueue was evicted by a ring buffer simply lose their
    wait span (the run span survives as long as a dispatch remains) --
    derived views degrade gracefully, never guess.
    """
    spans: List[Span] = []
    for job_name, activity in _collect_activity(recorder).items():
        track = _job_track(job_name, activity)
        if (
            activity.enqueue_slot is not None
            and activity.first_dispatch is not None
            and activity.first_dispatch > activity.enqueue_slot
        ):
            spans.append(
                Span(
                    name=f"{job_name} wait",
                    track=track,
                    start_slot=activity.enqueue_slot,
                    end_slot=activity.first_dispatch,
                    args={"job": job_name, "kind": "wait"},
                )
            )
        if activity.first_dispatch is not None:
            end = activity.last_dispatch
            if activity.complete_slot is not None:
                end = max(end, activity.complete_slot)
            spans.append(
                Span(
                    name=f"{job_name} run",
                    track=track,
                    start_slot=activity.first_dispatch,
                    end_slot=end + 1,
                    args={
                        "job": job_name,
                        "kind": "run",
                        "dispatch_slots": activity.dispatches,
                    },
                )
            )
    spans.sort(key=lambda span: (span.start_slot, span.track, span.name))
    return spans


def job_wait_slots(recorder: TraceRecorder) -> Dict[str, int]:
    """Per-job pool-wait durations (enqueue to first dispatch), sorted.

    Feeds the ``rchannel.wait_slots`` histogram of the metrics registry;
    jobs never dispatched (still buffered, dropped or rejected) are
    excluded -- their wait is unbounded, not zero.
    """
    waits: Dict[str, int] = {}
    for job_name, activity in sorted(_collect_activity(recorder).items()):
        if activity.enqueue_slot is None or activity.first_dispatch is None:
            continue
        waits[job_name] = activity.first_dispatch - activity.enqueue_slot
    return waits
