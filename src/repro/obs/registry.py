"""Unified metrics registry: named counters, gauges and histograms.

The repo grew metric sources organically -- :class:`LatencyStats`
summaries, success ratios, per-pool back-pressure counters, the
analysis-kernel cache statistics, trace-recorder category counts.  Each
is fine in isolation but there was no single object an experiment (or
the CI smoke job) could snapshot.  :class:`MetricsRegistry` is that
object: every metric is registered under one dot-separated name, the
snapshot is sorted and JSON-canonical, and ``ingest_*`` helpers adapt
each existing source without changing it.

Three metric kinds, mirroring the usual monitoring vocabulary:

* :class:`Counter` -- monotonically non-decreasing integer (events
  observed, jobs rejected);
* :class:`Gauge` -- a point-in-time number (occupancy, a ratio);
* :class:`Histogram` -- a sample of observations, summarized through
  :func:`repro.metrics.stats.summarize` at snapshot time.

Determinism: a registry built from the same inputs in the same order
snapshots to byte-identical JSON (sorted names, sorted keys, no
wall-clock or environment data anywhere).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.metrics.backpressure import BackPressureReport
from repro.metrics.stats import LatencyStats, summarize
from repro.metrics.success import SweepPoint
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synth.report import SynthesisReport

Number = Union[int, float]


class Counter:
    """Monotonically non-decreasing integer metric."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if not isinstance(amount, int) or isinstance(amount, bool):
            raise TypeError(
                f"counter {self.name!r} increments must be int, "
                f"got {type(amount).__name__}"
            )
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (increment {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Point-in-time numeric metric (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Observation sample, summarized at snapshot time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: Number) -> None:
        self.values.append(float(value))

    def summary(self) -> Dict[str, float]:
        """``LatencyStats``-shaped dict; ``{"count": 0}`` when empty."""
        if not self.values:
            return {"count": 0}
        return summarize(self.values).as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={len(self.values)})"


class MetricsRegistry:
    """One namespace of counters, gauges and histograms.

    A name belongs to exactly one metric kind for the registry's
    lifetime; re-requesting it returns the same object, requesting it
    as a different kind raises -- silent aliasing is how dashboards rot.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- registration ------------------------------------------------------

    def _check_free(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{other_kind}, cannot re-register as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, "histogram")
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested snapshot: kind -> sorted name -> value."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        """Canonical JSON rendering of :meth:`snapshot` (byte-stable)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"

    # -- ingestion adapters ------------------------------------------------

    def ingest_trace(self, recorder: TraceRecorder, prefix: str = "trace") -> None:
        """Category counts + storage accounting of one trace recorder."""
        for category in sorted(recorder.counters):
            self.counter(f"{prefix}.events.{category}").inc(
                recorder.count(category)
            )
        self.counter(f"{prefix}.dropped_events").inc(recorder.dropped_events)
        self.gauge(f"{prefix}.stored_events").set(len(recorder))

    def ingest_latency(self, prefix: str, stats: LatencyStats) -> None:
        """Spread one :class:`LatencyStats` over gauges + a count counter."""
        self.counter(f"{prefix}.count").inc(stats.count)
        for key, value in sorted(stats.as_dict().items()):
            if key == "count":
                continue
            self.gauge(f"{prefix}.{key}").set(value)
        self.gauge(f"{prefix}.jitter").set(stats.jitter)

    def ingest_backpressure(
        self, report: BackPressureReport, prefix: str = "backpressure"
    ) -> None:
        """Per-pool rejection/drop counters + occupancy gauges."""
        for pool in report.pools:
            pool_prefix = f"{prefix}.vm{pool.vm_id}"
            self.counter(f"{pool_prefix}.submitted").inc(pool.submitted)
            self.counter(f"{pool_prefix}.rejected").inc(pool.rejected)
            self.counter(f"{pool_prefix}.dropped").inc(pool.dropped)
            self.counter(f"{pool_prefix}.completed").inc(pool.completed)
            self.gauge(f"{pool_prefix}.occupancy").set(pool.occupancy)
            self.gauge(f"{pool_prefix}.peak_occupancy").set(pool.peak_occupancy)
            self.gauge(f"{pool_prefix}.rejection_ratio").set(
                pool.rejection_ratio
            )
        self.counter(f"{prefix}.total_rejected").inc(report.total_rejected)
        self.counter(f"{prefix}.total_dropped").inc(report.total_dropped)

    def ingest_cache_stats(
        self,
        stats: Optional[Dict[str, Dict[str, int]]] = None,
        prefix: str = "cache",
    ) -> None:
        """Analysis-kernel memoization traffic (``repro.analysis.cache``)."""
        if stats is None:
            from repro.analysis.cache import cache_stats

            stats = cache_stats()
        for name in sorted(stats):
            self.counter(f"{prefix}.{name}.hits").inc(stats[name]["hits"])
            self.counter(f"{prefix}.{name}.misses").inc(stats[name]["misses"])
            self.gauge(f"{prefix}.{name}.currsize").set(
                stats[name]["currsize"]
            )

    def ingest_synthesis(
        self, report: "SynthesisReport", prefix: str = "synthesis"
    ) -> None:
        """Search-tree counters + design gauges of one synthesis run.

        The counters mirror :class:`~repro.synth.search.SearchStats`
        (oracle calls, pruned/expanded nodes, backtracks); the gauges
        capture the design itself (bandwidth, server count, verdict)
        so a dashboard can watch search effort against design quality.
        The bound trajectory lands in a histogram: its spread shows how
        quickly the incumbent converged.
        """
        stats = report.stats
        self.counter(f"{prefix}.oracle_calls").inc(stats.oracle_calls)
        self.counter(f"{prefix}.pruned_nodes").inc(stats.pruned_nodes)
        self.counter(f"{prefix}.nodes_expanded").inc(stats.nodes_expanded)
        self.counter(f"{prefix}.rounds").inc(stats.rounds)
        self.counter(f"{prefix}.incumbent_updates").inc(
            stats.incumbent_updates
        )
        self.counter(f"{prefix}.backtracks").inc(stats.backtracks)
        self.gauge(f"{prefix}.schedulable").set(
            1.0 if report.schedulable else 0.0
        )
        self.gauge(f"{prefix}.bandwidth").set(report.bandwidth)
        if report.seed_bandwidth is not None:
            self.gauge(f"{prefix}.seed_bandwidth").set(report.seed_bandwidth)
        self.gauge(f"{prefix}.servers").set(len(report.servers))
        self.gauge(f"{prefix}.fast_path_lanes").set(report.fast_path_vms)
        self.gauge(f"{prefix}.hyperperiod").set(report.table.total_slots)
        for _nodes, objective in stats.bound_trajectory:
            self.histogram(f"{prefix}.incumbent_bound").observe(objective)

    def ingest_sweep_point(
        self, point: SweepPoint, prefix: str = "sweep"
    ) -> None:
        """Success ratio + throughput of one aggregated sweep cell."""
        util = f"{point.target_utilization:g}".replace(".", "_")
        cell = f"{prefix}.{point.system}.u{util}"
        self.counter(f"{cell}.trials").inc(point.trials)
        self.gauge(f"{cell}.success_ratio").set(point.success_ratio)
        self.gauge(f"{cell}.throughput_mbps").set(point.mean_throughput_mbps)
        self.gauge(f"{cell}.throughput_stdev").set(
            point.stdev_throughput_mbps
        )
        self.gauge(f"{cell}.miss_ratio").set(point.mean_miss_ratio)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )
