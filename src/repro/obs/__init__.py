"""Observability layer: span tracing, metrics registry, Perfetto export.

Everything in this package is *derived* -- it consumes the structured
events a :class:`~repro.sim.trace.TraceRecorder` collected (plus the
existing metrics objects) and never feeds anything back into simulated
state.  Attaching or detaching the layer therefore cannot change a
run's results; the determinism contract extends to the artefacts
themselves: identical inputs yield byte-identical ``trace.json`` and
metrics snapshots.

* :mod:`repro.obs.events` -- the event taxonomy and the span model
  derived from raw trace events;
* :mod:`repro.obs.chains` -- cause-effect-chain instances, reactions
  and spans reconstructed from the same job events;
* :mod:`repro.obs.registry` -- one registry of named counters, gauges
  and histograms unifying the scattered metric sources;
* :mod:`repro.obs.perfetto` -- Chrome/Perfetto ``trace.json`` export
  (open in ``ui.perfetto.dev`` or ``chrome://tracing``);
* :mod:`repro.obs.capture` -- run the fault-isolation scenario with
  tracing attached and roll the outcome into a registry;
* ``python -m repro.obs`` -- ``export`` / ``summary`` / ``spans`` /
  ``sweep`` command-line front end.
"""

from repro.obs.capture import ObsCapture, build_registry, capture_fault_isolation
from repro.obs.chains import (
    CHAIN_TRACE_CATEGORIES,
    ChainInstance,
    ChainReaction,
    derive_chain_instances,
    derive_chain_reactions,
    derive_chain_spans,
)
from repro.obs.events import (
    CATEGORIES,
    Span,
    derive_job_spans,
    job_wait_slots,
)
from repro.obs.perfetto import chrome_trace, render_chrome_trace, validate_chrome_trace
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CATEGORIES",
    "CHAIN_TRACE_CATEGORIES",
    "ChainInstance",
    "ChainReaction",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsCapture",
    "Span",
    "build_registry",
    "capture_fault_isolation",
    "chrome_trace",
    "derive_chain_instances",
    "derive_chain_reactions",
    "derive_chain_spans",
    "derive_job_spans",
    "job_wait_slots",
    "render_chrome_trace",
    "validate_chrome_trace",
]
