"""Command-line front end of the observability layer.

Usage::

    python -m repro.obs export  --out results/obs [--seed N] [--horizon S]
                                [--max-events N] [--slot-us U]
    python -m repro.obs summary [--seed N] [--horizon S] [--max-events N]
    python -m repro.obs spans   [--seed N] [--horizon S] [--limit N]
    python -m repro.obs sweep   --seeds 1 2 3 [--jobs N] [--horizon S]
                                [--max-events N] [--profile]

``export`` writes the Perfetto/Chrome ``trace.json`` (open it in
``ui.perfetto.dev`` or ``chrome://tracing``) plus the unified
``metrics.json`` snapshot; both artefacts are byte-identical across
reruns with the same arguments -- the property the CI ``obs-smoke`` job
asserts.  ``summary`` prints the registry snapshot as text, ``spans``
the derived job spans.  ``sweep`` fans seeds out over the parallel
experiment runner with ring-buffered recorders (``--max-events``
bounds each cell's memory; evictions are reported, never silent).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.obs.capture import DEFAULT_MAX_EVENTS, capture_fault_isolation
from repro.obs.events import derive_job_spans
from repro.obs.perfetto import (
    DEFAULT_SLOT_US,
    chrome_trace,
    render_chrome_trace,
    validate_chrome_trace,
)

#: Sweep cells are deliberately short: the sweep demonstrates bounded
#: tracing under the parallel runner, not a full-scale experiment.
SWEEP_HORIZON_SLOTS = 2_000
SWEEP_MAX_EVENTS = 4_096


def _metrics_document(capture, args) -> Dict[str, object]:
    """Metrics artefact: run identity + registry snapshot."""
    return {
        "meta": {
            "scenario": "fault-isolation",
            "seed": args.seed,
            "horizon_slots": args.horizon,
            "max_events": args.max_events,
            "fault_plan_digest": capture.result.plan.digest(),
            "fault_trace_digest": capture.result.fault_trace_digest,
            "sim_trace_digests": dict(
                sorted(capture.result.sim_trace_digests.items())
            ),
        },
        "metrics": capture.registry.snapshot(),
    }


def _cmd_export(args) -> int:
    capture = capture_fault_isolation(
        seed=args.seed, horizon_slots=args.horizon, max_events=args.max_events
    )
    document = chrome_trace(
        capture.recorder,
        fault_trace=None,
        slot_us=args.slot_us,
    )
    validate_chrome_trace(document)
    args.out.mkdir(parents=True, exist_ok=True)
    trace_path = args.out / "trace.json"
    trace_path.write_text(render_chrome_trace(document))
    metrics_path = args.out / "metrics.json"
    metrics_path.write_text(
        json.dumps(_metrics_document(capture, args), sort_keys=True, indent=2)
        + "\n"
    )
    print(f"wrote {trace_path}")
    print(f"wrote {metrics_path}")
    if capture.recorder.dropped_events:
        print(
            f"note: ring buffer evicted {capture.recorder.dropped_events} "
            f"events (max_events={args.max_events})",
            file=sys.stderr,
        )
    return 0


def _cmd_summary(args) -> int:
    capture = capture_fault_isolation(
        seed=args.seed, horizon_slots=args.horizon, max_events=args.max_events
    )
    snapshot = capture.registry.snapshot()
    rows = []
    for name, value in snapshot["counters"].items():
        rows.append((name, "counter", value))
    for name, value in snapshot["gauges"].items():
        rows.append((name, "gauge", f"{value:g}"))
    for name, summary in snapshot["histograms"].items():
        count = summary.get("count", 0)
        if count:
            cell = (
                f"n={count} mean={summary['mean']:g} "
                f"p99={summary['p99']:g} max={summary['max']:g}"
            )
        else:
            cell = "n=0"
        rows.append((name, "histogram", cell))
    rows.sort(key=lambda row: row[0])
    print(
        render_table(
            ["metric", "kind", "value"],
            rows,
            title=(
                f"Metrics registry: fault-isolation seed={args.seed} "
                f"horizon={args.horizon}"
            ),
        )
    )
    return 0


def _cmd_spans(args) -> int:
    capture = capture_fault_isolation(
        seed=args.seed, horizon_slots=args.horizon, max_events=args.max_events
    )
    spans = derive_job_spans(capture.recorder)
    shown = spans if args.limit is None else spans[: args.limit]
    rows = [
        (
            span.track,
            span.name,
            span.start_slot,
            span.end_slot,
            span.duration_slots,
        )
        for span in shown
    ]
    print(
        render_table(
            ["track", "span", "start", "end", "slots"],
            rows,
            title=(
                f"{len(spans)} derived job spans "
                f"({len(shown)} shown; seed={args.seed})"
            ),
        )
    )
    return 0


def _sweep_cell(seed: int, horizon_slots: int, max_events: int) -> Dict[str, object]:
    """One bounded traced run (module-level: must pickle to workers)."""
    capture = capture_fault_isolation(
        seed=seed, horizon_slots=horizon_slots, max_events=max_events
    )
    document = chrome_trace(capture.recorder)
    rendered = render_chrome_trace(document)
    return {
        "seed": seed,
        "events_stored": len(capture.recorder),
        "events_dropped": capture.recorder.dropped_events,
        "victim_misses": capture.result.victim_misses["ioguard"],
        "trace_digest": hashlib.sha256(rendered.encode("utf-8")).hexdigest(),
    }


def _cmd_sweep(args) -> int:
    if not args.seeds:
        raise SystemExit("sweep needs at least one --seeds value")
    runner = ExperimentRunner(args.jobs, profile=args.profile)
    max_events = (
        args.max_events if args.max_events is not None else SWEEP_MAX_EVENTS
    )
    cells = runner.starmap(
        _sweep_cell,
        [(seed, args.horizon, max_events) for seed in args.seeds],
        label="obs.sweep",
    )
    rows = [
        (
            cell["seed"],
            cell["events_stored"],
            cell["events_dropped"],
            cell["victim_misses"],
            str(cell["trace_digest"])[:12],
        )
        for cell in cells
    ]
    print(
        render_table(
            ["seed", "events", "dropped", "victim misses", "trace digest"],
            rows,
            title=(
                f"Bounded traced sweep: {len(cells)} seeds, "
                f"max_events={max_events}, horizon={args.horizon}, "
                f"jobs={runner.jobs}"
            ),
        )
    )
    if args.profile:
        for phase in runner.timing.phases:
            print(
                f"phase {phase.label}: {phase.elapsed_seconds:.2f}s "
                f"({phase.items} cells)",
                file=sys.stderr,
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability: Perfetto export, metrics, spans.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, horizon: int) -> None:
        p.add_argument("--seed", type=int, default=2021)
        p.add_argument("--horizon", type=int, default=horizon)
        p.add_argument(
            "--max-events", type=int, default=DEFAULT_MAX_EVENTS,
            help="ring-buffer bound on stored events (evictions are "
            "counted and reported)",
        )

    export = sub.add_parser(
        "export", help="write Perfetto trace.json + metrics.json"
    )
    common(export, horizon=8_000)
    export.add_argument("--out", type=Path, default=Path("results/obs"))
    export.add_argument(
        "--slot-us", type=int, default=DEFAULT_SLOT_US,
        help="slot length in microseconds for trace timestamps",
    )
    export.set_defaults(func=_cmd_export)

    summary = sub.add_parser(
        "summary", help="print the unified metrics snapshot"
    )
    common(summary, horizon=8_000)
    summary.set_defaults(func=_cmd_summary)

    spans = sub.add_parser("spans", help="print derived job spans")
    common(spans, horizon=2_000)
    spans.add_argument("--limit", type=int, default=40)
    spans.set_defaults(func=_cmd_spans)

    sweep = sub.add_parser(
        "sweep", help="bounded traced runs over the parallel runner"
    )
    sweep.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    sweep.add_argument("--horizon", type=int, default=SWEEP_HORIZON_SLOTS)
    sweep.add_argument(
        "--max-events", type=int, default=None,
        help=f"per-cell ring-buffer bound (default {SWEEP_MAX_EVENTS})",
    )
    sweep.add_argument("--jobs", type=int, default=None)
    sweep.add_argument("--profile", action="store_true")
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
