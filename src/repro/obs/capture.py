"""Traced capture of the fault-isolation scenario.

``capture_fault_isolation`` is the observability layer's reference
workload: it attaches a :class:`~repro.sim.trace.TraceRecorder` to the
I/O-GUARD run of :func:`repro.exp.isolation.run_fault_isolation`, then
rolls the run's raw events, back-pressure report, per-discipline
outcomes and kernel-cache traffic into one
:class:`~repro.obs.registry.MetricsRegistry`.

The capture changes nothing about the run itself -- tracing hooks are
pure observers -- so the captured result equals an untraced
``run_fault_isolation`` with the same arguments, digest for digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.exp.isolation import FAULT_DISCIPLINES, FaultIsolationResult, run_fault_isolation
from repro.metrics.stats import summarize
from repro.obs.events import job_wait_slots
from repro.obs.registry import MetricsRegistry
from repro.sim.trace import TraceRecorder

#: Default ring-buffer bound for captures: large enough to keep every
#: event of the stock scenario, small enough that runaway horizons
#: cannot exhaust memory (evictions are counted, never silent).
DEFAULT_MAX_EVENTS = 250_000


@dataclass
class ObsCapture:
    """One traced run: raw events + scenario outcome + rolled-up metrics."""

    recorder: TraceRecorder
    result: FaultIsolationResult
    registry: MetricsRegistry


def build_registry(
    result: FaultIsolationResult, recorder: TraceRecorder
) -> MetricsRegistry:
    """Unify a traced fault-isolation run into one metrics registry."""
    registry = MetricsRegistry()
    registry.ingest_trace(recorder)
    registry.ingest_backpressure(result.backpressure)
    registry.ingest_cache_stats()
    for discipline in FAULT_DISCIPLINES:
        prefix = f"isolation.{discipline}"
        registry.counter(f"{prefix}.victim_misses").inc(
            result.victim_misses[discipline]
        )
        registry.counter(f"{prefix}.storm_rejected").inc(
            result.storm_rejected[discipline]
        )
        registry.counter(f"{prefix}.blocked_slots").inc(
            result.blocked_slots[discipline]
        )
        if result.victim_jobs:
            registry.gauge(f"{prefix}.victim_success_ratio").set(
                1.0 - result.victim_misses[discipline] / result.victim_jobs
            )
    registry.counter("isolation.victim_jobs").inc(result.victim_jobs)
    registry.counter("isolation.storm_jobs").inc(result.storm_jobs)
    registry.counter("isolation.quarantines").inc(len(result.quarantine_log))
    registry.counter("isolation.fault_events").inc(
        result.fault_trace_jsonl.count("\n") + 1
        if result.fault_trace_jsonl
        else 0
    )
    waits = job_wait_slots(recorder)
    if waits:
        histogram = registry.histogram("rchannel.wait_slots")
        for job_name in sorted(waits):
            histogram.observe(waits[job_name])
        registry.ingest_latency(
            "rchannel.wait_latency", summarize(waits.values())
        )
    return registry


def capture_fault_isolation(
    *,
    seed: int = 2021,
    horizon_slots: int = 8_000,
    max_events: Optional[int] = DEFAULT_MAX_EVENTS,
    categories: Optional[Iterable[str]] = None,
) -> ObsCapture:
    """Run the fault-isolation scenario with tracing attached.

    ``max_events`` bounds the recorder (``None`` = unbounded);
    ``categories`` optionally whitelists what is observed.  Identical
    arguments produce identical captures -- trace, registry and all:
    the analysis caches are cleared first so the registry's
    ``cache.*`` counters reflect this run's kernel traffic alone, not
    whatever the process computed earlier.
    """
    from repro.analysis.cache import clear_caches

    clear_caches()
    recorder = TraceRecorder(
        categories=list(categories) if categories is not None else None,
        max_events=max_events,
    )
    result = run_fault_isolation(
        seed=seed, horizon_slots=horizon_slots, obs_trace=recorder
    )
    return ObsCapture(
        recorder=recorder,
        result=result,
        registry=build_registry(result, recorder),
    )
