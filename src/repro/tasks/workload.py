"""Synthetic workload padding.

The case study controls *target utilization* by adding synthetic tasks
drawn from EEMBC-like kernels until the aggregate utilization reaches the
requested level (Sec. V-C: "adding synthetic workloads to a system only
gives it a target utilization").
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet

#: Period menu for synthetic padding tasks (slots); automotive-flavoured
#: rates between 1 ms and 25 ms at the default 10 us slot.  All values
#: divide the 100_000-slot case-study hyper-period, and the menu tops
#: out at 2 500 slots so synthetic WCETs stay short (<= ~25 slots) --
#: long monolithic padding jobs would head-of-line-block the baselines'
#: FIFO queues even at trivial loads, which is not how background load
#: behaves.
SYNTHETIC_PERIODS = (100, 200, 400, 500, 1_000, 2_000, 2_500)

#: Per-task utilization granted to each synthetic padding task.  Small
#: slices keep the padding smooth so a 5 % utilization step in the sweep
#: adds a handful of tasks rather than one giant one.
SYNTHETIC_SLICE = 0.01


def synthetic_task(
    name: str,
    period: int,
    utilization: float,
    *,
    vm_id: int = 0,
    device: str = "ethernet0",
) -> IOTask:
    """One synthetic padding task of the requested utilization."""
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"synthetic utilization must be in (0, 1], got {utilization}")
    wcet = max(1, int(round(utilization * period)))
    wcet = min(wcet, period)
    return IOTask(
        name=name,
        period=period,
        wcet=wcet,
        deadline=period,
        vm_id=vm_id,
        kind=TaskKind.RUNTIME,
        criticality=Criticality.SYNTHETIC,
        device=device,
        payload_bytes=64,
    )


def pad_to_target_utilization(
    taskset: TaskSet,
    target_utilization: float,
    rng: RandomSource,
    *,
    vm_count: Optional[int] = None,
    slice_utilization: float = SYNTHETIC_SLICE,
    name_prefix: str = "synthetic",
) -> TaskSet:
    """Add synthetic tasks until utilization reaches ``target_utilization``.

    Padding tasks are spread round-robin over the VMs present in the base
    set (or ``range(vm_count)`` when given) and use periods drawn from
    :data:`SYNTHETIC_PERIODS`.  Returns a new set; the base set is not
    modified.  If the base set already exceeds the target, it is returned
    as a copy unchanged -- matching the sweep semantics where the 40 %
    base cannot be trimmed.
    """
    if target_utilization < 0:
        raise ValueError(f"negative target utilization: {target_utilization}")
    if slice_utilization <= 0:
        raise ValueError(f"slice_utilization must be positive: {slice_utilization}")
    padded = TaskSet(name=f"{taskset.name}.u{int(round(target_utilization * 100))}")
    padded.extend(task.renamed(task.name) for task in taskset)
    vm_ids: List[int] = (
        list(range(vm_count)) if vm_count is not None else taskset.vm_ids() or [0]
    )
    deficit = target_utilization - padded.utilization
    index = 0
    while deficit > 1e-9:
        slice_target = min(slice_utilization, deficit)
        period = rng.choice(SYNTHETIC_PERIODS)
        wcet = max(1, int(round(slice_target * period)))
        actual = wcet / period
        # Avoid overshooting the target by more than one slot of demand.
        if actual > deficit and wcet > 1:
            wcet = max(1, int(math.floor(deficit * period)))
            actual = wcet / period
        task = IOTask(
            name=f"{name_prefix}.{index}",
            period=period,
            wcet=wcet,
            deadline=period,
            vm_id=vm_ids[index % len(vm_ids)],
            kind=TaskKind.RUNTIME,
            criticality=Criticality.SYNTHETIC,
            device="ethernet0",
            payload_bytes=64,
        )
        padded.add(task)
        deficit -= actual
        index += 1
        if index > 10_000:
            raise RuntimeError(
                "synthetic padding did not converge; "
                f"remaining deficit {deficit:.6f}"
            )
    return padded
