"""Task models and workload generation.

The paper models run-time (R-channel) I/O work as sporadic tasks
``tau_k = (T_k, C_k, D_k)`` with constrained deadlines, and pre-defined
(P-channel) I/O work as statically-timetabled periodic jobs (Sec. II-B,
Sec. IV).  This package provides:

* :mod:`repro.tasks.task` -- the task/job dataclasses,
* :mod:`repro.tasks.taskset` -- task-set containers with utilization and
  hyperperiod machinery,
* :mod:`repro.tasks.generators` -- random task-set generation (UUniFast,
  log-uniform periods) for schedulability sweeps,
* :mod:`repro.tasks.automotive` -- the case-study catalog mirroring the
  Renesas safety tasks and EEMBC function tasks (Sec. V-C),
* :mod:`repro.tasks.workload` -- synthetic padding to a target utilization.
"""

from repro.tasks.task import (
    Criticality,
    IOTask,
    Job,
    TaskKind,
)
from repro.tasks.taskset import TaskSet
from repro.tasks.generators import (
    TaskSetGenerator,
    generate_random_taskset,
)
from repro.tasks.automotive import (
    AUTOMOTIVE_FUNCTION_TASKS,
    AUTOMOTIVE_SAFETY_TASKS,
    AutomotiveTaskSpec,
    build_case_study_taskset,
)
from repro.tasks.workload import (
    pad_to_target_utilization,
    synthetic_task,
)
from repro.tasks.serialization import (
    load_taskset,
    save_taskset,
    taskset_from_json,
    taskset_to_json,
)

__all__ = [
    "AUTOMOTIVE_FUNCTION_TASKS",
    "AUTOMOTIVE_SAFETY_TASKS",
    "AutomotiveTaskSpec",
    "Criticality",
    "IOTask",
    "Job",
    "TaskKind",
    "TaskSet",
    "TaskSetGenerator",
    "build_case_study_taskset",
    "generate_random_taskset",
    "load_taskset",
    "pad_to_target_utilization",
    "save_taskset",
    "synthetic_task",
    "taskset_from_json",
    "taskset_to_json",
]
