"""Automotive case-study task catalog (Sec. V-C).

The paper draws 20 *safety* tasks from the Renesas automotive use-case
database (CRC, RSA32, ...) and 20 *function* tasks from the EEMBC
AutoBench suite (FFT, speed calculation, ...), each with a measured WCET,
a period and an implicit deadline, totalling roughly 40 % utilization.

We do not have the Renesas/EEMBC measurement data, so this module encodes
a parameterised catalog with the same *structure*: 20 + 20 named tasks
whose periods fall in the automotive-typical 1 ms - 1 s range and whose
WCETs are sized so the catalog's aggregate utilization is ~40 %
(documented substitution; see DESIGN.md Sec. 2).  Timing is expressed in
physical units and converted to scheduler slots via ``slot_us``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet

#: Default slot length used for the case study: 10 microseconds
#: (1000 cycles at the paper's 100 MHz platform clock).
DEFAULT_SLOT_US = 10.0

#: Case-study hyper-period target (slots): periods snap to divisors of
#: this value so the P-channel time slot table stays bounded (the FPGA
#: table is a small on-chip memory; unbounded LCMs are unimplementable).
CASE_STUDY_HYPERPERIOD = 100_000


_divisor_cache: dict = {}


def snap_period(period_slots: int, hyperperiod: int = CASE_STUDY_HYPERPERIOD) -> int:
    """Nearest divisor of ``hyperperiod`` to ``period_slots``.

    Divisor grids are standard practice when building static tables:
    they bound the hyper-period while perturbing each period by at most
    ~23 % (the worst gap of the 2^a * 5^b grid of 100000, between 1250
    and 2000; most periods move far less).
    """
    if period_slots < 1:
        raise ValueError(f"period must be >= 1 slot, got {period_slots}")
    if hyperperiod < 1:
        raise ValueError(f"hyperperiod must be >= 1, got {hyperperiod}")
    divisors = _divisor_cache.get(hyperperiod)
    if divisors is None:
        divisors = [
            d
            for d in range(1, int(math.isqrt(hyperperiod)) + 1)
            if hyperperiod % d == 0
        ]
        divisors += [hyperperiod // d for d in divisors]
        divisors = sorted(set(divisors))
        _divisor_cache[hyperperiod] = divisors
    return min(divisors, key=lambda d: (abs(d - period_slots), d))


@dataclass(frozen=True)
class AutomotiveTaskSpec:
    """Physical-unit description of one catalog task."""

    name: str
    period_ms: float
    wcet_us: float
    criticality: Criticality
    device: str
    payload_bytes: int

    @property
    def utilization(self) -> float:
        return self.wcet_us / (self.period_ms * 1_000.0)

    def to_task(
        self,
        *,
        slot_us: float = DEFAULT_SLOT_US,
        vm_id: int = 0,
        kind: TaskKind = TaskKind.RUNTIME,
        snap: bool = True,
        hyperperiod: int = CASE_STUDY_HYPERPERIOD,
    ) -> IOTask:
        """Materialise the spec as a slot-unit :class:`IOTask`.

        With ``snap`` (the default) the period is snapped to the divisor
        grid of ``hyperperiod`` so that case-study sets admit bounded
        P-channel tables.
        """
        period_slots = max(2, int(round(self.period_ms * 1_000.0 / slot_us)))
        if snap:
            period_slots = snap_period(period_slots, hyperperiod)
        wcet_slots = max(1, int(math.ceil(self.wcet_us / slot_us)))
        wcet_slots = min(wcet_slots, period_slots)
        return IOTask(
            name=self.name,
            period=period_slots,
            wcet=wcet_slots,
            deadline=period_slots,
            vm_id=vm_id,
            kind=kind,
            criticality=self.criticality,
            device=self.device,
            payload_bytes=self.payload_bytes,
        )


def _safety(name, period_ms, wcet_us, device="ethernet0", payload=64):
    return AutomotiveTaskSpec(
        name=name,
        period_ms=period_ms,
        wcet_us=wcet_us,
        criticality=Criticality.SAFETY,
        device=device,
        payload_bytes=payload,
    )


def _function(name, period_ms, wcet_us, device="ethernet0", payload=128):
    return AutomotiveTaskSpec(
        name=name,
        period_ms=period_ms,
        wcet_us=wcet_us,
        criticality=Criticality.FUNCTION,
        device=device,
        payload_bytes=payload,
    )


#: 20 safety tasks modelled after the Renesas automotive use-case database.
#: Names follow the examples the paper cites (CRC, RSA32) plus typical
#: safety-monitor entries; periods follow AUTOSAR-style rates.
#: WCETs are kept below ~200 us (20 scheduler slots) and periods at or
#: above 2 ms: automotive I/O transactions are short; tasks with more
#: work run at a higher rate (the same utilization split into shorter
#: jobs).  The resulting min-deadline / max-WCET ratio of ~10 matches
#: workloads where a single bulk transfer cannot consume a whole
#: deadline window -- deadline misses then require sustained queue
#: build-up, i.e. genuine overload, as in the paper's evaluation.
AUTOMOTIVE_SAFETY_TASKS: List[AutomotiveTaskSpec] = [
    _safety("crc32_frame_check", 2.0, 24.0, payload=32),
    _safety("rsa32_auth", 10.0, 150.0, payload=256),
    _safety("watchdog_heartbeat", 2.0, 8.0, payload=8),
    _safety("brake_pressure_monitor", 5.0, 55.0, payload=16),
    _safety("airbag_arm_check", 10.0, 95.0, payload=16),
    _safety("lane_departure_alarm", 12.5, 120.0, payload=64),
    _safety("obstacle_proximity", 10.0, 130.0, payload=128),
    _safety("steering_torque_limit", 5.0, 60.0, payload=16),
    _safety("battery_cell_guard", 12.5, 105.0, payload=64),
    _safety("ecu_voltage_monitor", 10.0, 70.0, payload=16),
    _safety("wheel_slip_detect", 5.0, 75.0, payload=32),
    _safety("seatbelt_interlock", 25.0, 128.0, payload=8),
    _safety("can_bus_guardian", 2.0, 18.0, payload=16),
    _safety("redundant_sensor_vote", 10.0, 110.0, payload=96),
    _safety("emergency_stop_path", 5.0, 45.0, payload=8),
    _safety("fuel_cutoff_check", 12.5, 95.0, payload=16),
    _safety("door_lock_integrity", 25.0, 113.0, payload=8),
    _safety("crash_log_commit", 20.0, 125.0, payload=512),
    _safety("tire_pressure_alert", 25.0, 113.0, payload=16),
    _safety("adas_failover_probe", 10.0, 130.0, payload=64),
]

#: 20 function tasks modelled after EEMBC AutoBench kernels; the paper
#: names fast Fourier transform and speed calculation as examples.
AUTOMOTIVE_FUNCTION_TASKS: List[AutomotiveTaskSpec] = [
    _function("fft_vibration", 10.0, 180.0, payload=512),
    _function("speed_calculation", 5.0, 42.0, payload=16),
    _function("engine_knock_filter", 2.0, 30.0, payload=64),
    _function("idct_dashcam", 8.0, 130.0, payload=1024),
    _function("matrix_ctrl_law", 10.0, 150.0, payload=128),
    _function("table_lookup_injection", 2.0, 18.0, payload=16),
    _function("angle_to_time_conv", 2.0, 21.0, payload=16),
    _function("bit_manipulation_diag", 20.0, 170.0, payload=32),
    _function("pointer_chase_map", 12.5, 103.0, payload=64),
    _function("pulse_width_mod", 2.0, 16.0, payload=8),
    _function("road_speed_limit_fusion", 25.0, 195.0, payload=256),
    _function("cache_buster_infotain", 20.0, 150.0, payload=1024),
    _function("iir_suspension_filter", 5.0, 48.0, payload=64),
    _function("fir_audio_lane", 10.0, 120.0, payload=256),
    _function("cruise_pid_update", 10.0, 90.0, payload=32),
    _function("gear_shift_planner", 25.0, 175.0, payload=64),
    _function("climate_duty_cycle", 25.0, 105.0, payload=32),
    _function("nav_dead_reckoning", 12.5, 85.0, payload=256),
    _function("telemetry_pack", 12.5, 83.0, payload=512),
    _function("headlight_beam_ctrl", 25.0, 135.0, payload=16),
]


def catalog_utilization(slot_us: float = DEFAULT_SLOT_US) -> float:
    """Aggregate utilization of the 40-task catalog after slot rounding."""
    total = 0.0
    for spec in AUTOMOTIVE_SAFETY_TASKS + AUTOMOTIVE_FUNCTION_TASKS:
        task = spec.to_task(slot_us=slot_us)
        total += task.utilization
    return total


def build_case_study_taskset(
    *,
    vm_count: int = 4,
    slot_us: float = DEFAULT_SLOT_US,
    specs: Optional[Sequence[AutomotiveTaskSpec]] = None,
    name: str = "automotive",
    snap: bool = True,
) -> TaskSet:
    """Assemble the 40-task case-study set, round-robin across VMs.

    The returned set contains only the safety + function tasks; synthetic
    padding to a target utilization is applied separately by
    :func:`repro.tasks.workload.pad_to_target_utilization`, mirroring the
    paper's experimental setup (Sec. V-C).
    """
    if vm_count < 1:
        raise ValueError(f"vm_count must be >= 1, got {vm_count}")
    chosen = list(specs) if specs is not None else (
        AUTOMOTIVE_SAFETY_TASKS + AUTOMOTIVE_FUNCTION_TASKS
    )
    taskset = TaskSet(name=name)
    for position, spec in enumerate(chosen):
        taskset.add(
            spec.to_task(slot_us=slot_us, vm_id=position % vm_count, snap=snap)
        )
    return taskset
