"""Random task-set generation for schedulability sweeps.

The standard recipe from the real-time literature: utilizations from
UUniFast, periods log-uniform over a configurable range, WCETs derived as
``C = max(1, round(U * T))`` and constrained deadlines drawn uniformly
from ``[C, T]`` (or implicit, ``D = T``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet


@dataclass
class TaskSetGenerator:
    """Configurable random task-set factory.

    Attributes
    ----------
    period_min, period_max:
        Log-uniform period range, in slots.
    implicit_deadlines:
        When True every deadline equals the period (the case-study
        configuration); otherwise deadlines are uniform in ``[C, T]``.
    min_wcet:
        Floor on generated WCETs (slots).
    device_pool:
        Devices assigned round-robin to generated tasks.
    """

    period_min: int = 20
    period_max: int = 2_000
    implicit_deadlines: bool = True
    min_wcet: int = 1
    device_pool: tuple = ("io0",)

    def generate(
        self,
        rng: RandomSource,
        task_count: int,
        total_utilization: float,
        *,
        vm_count: int = 1,
        name: str = "random",
        criticality: Criticality = Criticality.FUNCTION,
        kind: TaskKind = TaskKind.RUNTIME,
    ) -> TaskSet:
        """Draw one task set with the requested aggregate utilization.

        Individual task utilizations exceeding 1.0 are re-drawn (they
        cannot be realized with ``C <= D <= T``); after 100 failed
        attempts a ``ValueError`` is raised, which only happens for
        infeasible requests such as ``total_utilization > task_count``.
        """
        if task_count < 1:
            raise ValueError(f"task_count must be >= 1, got {task_count}")
        if total_utilization <= 0:
            raise ValueError(
                f"total_utilization must be positive, got {total_utilization}"
            )
        if total_utilization > task_count:
            raise ValueError(
                f"cannot pack utilization {total_utilization} into "
                f"{task_count} tasks (per-task utilization is capped at 1)"
            )
        utilizations = self._draw_utilizations(rng, task_count, total_utilization)
        taskset = TaskSet(name=name)
        for i, utilization in enumerate(utilizations):
            task = self._make_task(
                rng,
                f"{name}.t{i}",
                utilization,
                vm_id=i % vm_count,
                criticality=criticality,
                kind=kind,
                device=self.device_pool[i % len(self.device_pool)],
            )
            taskset.add(task)
        return taskset

    def _draw_utilizations(
        self, rng: RandomSource, n: int, total: float
    ) -> list:
        for _attempt in range(100):
            utilizations = rng.uunifast(n, total)
            if all(u <= 1.0 for u in utilizations):
                return utilizations
        raise ValueError(
            f"could not draw {n} per-task utilizations <= 1 summing to {total}"
        )

    def _make_task(
        self,
        rng: RandomSource,
        name: str,
        utilization: float,
        *,
        vm_id: int,
        criticality: Criticality,
        kind: TaskKind,
        device: str,
    ) -> IOTask:
        period = max(2, int(round(rng.log_uniform(self.period_min, self.period_max))))
        wcet = max(self.min_wcet, int(round(utilization * period)))
        wcet = min(wcet, period)
        if self.implicit_deadlines:
            deadline = period
        else:
            deadline = rng.randint(wcet, period)
        payload = rng.choice([16, 32, 64, 128, 256, 512])
        return IOTask(
            name=name,
            period=period,
            wcet=wcet,
            deadline=deadline,
            vm_id=vm_id,
            kind=kind,
            criticality=criticality,
            device=device,
            payload_bytes=payload,
        )


def generate_random_taskset(
    seed: int,
    task_count: int,
    total_utilization: float,
    *,
    vm_count: int = 1,
    period_min: int = 20,
    period_max: int = 2_000,
    implicit_deadlines: bool = True,
    name: Optional[str] = None,
) -> TaskSet:
    """One-call wrapper around :class:`TaskSetGenerator`."""
    generator = TaskSetGenerator(
        period_min=period_min,
        period_max=period_max,
        implicit_deadlines=implicit_deadlines,
    )
    rng = RandomSource(seed, name or "generate_random_taskset")
    return generator.generate(
        rng,
        task_count,
        total_utilization,
        vm_count=vm_count,
        name=name or f"random{seed}",
    )


def harmonic_periods(base: int, count: int) -> list:
    """Periods ``base * 2**i`` -- handy for slot-table-friendly sets."""
    if base < 1 or count < 1:
        raise ValueError(f"invalid harmonic spec base={base} count={count}")
    return [base * (2**i) for i in range(count)]


def target_wcet(utilization: float, period: int, minimum: int = 1) -> int:
    """WCET realizing ``utilization`` on ``period`` (clamped to [min, T])."""
    return min(period, max(minimum, int(math.floor(utilization * period))))
