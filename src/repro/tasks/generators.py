"""Random task-set generation for schedulability sweeps.

The standard recipe from the real-time literature: utilizations from
UUniFast, periods log-uniform over a configurable range, WCETs derived
via :func:`target_wcet` (``C = floor(U * T)``, clamped to ``[min, T]``)
and constrained deadlines drawn uniformly from ``[C, T]`` (or implicit,
``D = T``).

For hyper-period-sensitive consumers (exact Theorem-1/3 tests, the
batched engine's tiled step-point grids) :class:`HyperperiodBasis`
replaces the log-uniform period draw with the prime-factorization
sampler from the end-to-end-latency literature: every period is a
product of a sub-multiset of a bounded factor basis, so the LCM of *any*
subset of periods divides the basis hyper-period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class HyperperiodBasis:
    """Prime-factorization period sampler with a bounded hyper-period.

    Instead of drawing periods log-uniformly (whose pairwise LCMs grow
    multiplicatively and routinely blow past any exact-test cap), fix a
    factor *multiset* -- e.g. ``(2, 2, 2, 5, 5, 5)`` for a hyper-period
    of 1000 -- and draw each period as the product of a random
    sub-multiset.  Every candidate period divides
    :meth:`hyperperiod`, so the LCM of any set of sampled periods does
    too: exact tests stay tractable by construction and the batched
    engine's hyper-period-tiled grids always engage.

    Attributes
    ----------
    factors:
        The factor multiset (each entry >= 2; repeats allowed).
    period_min, period_max:
        Accepted period range; candidates outside it are never drawn.
        ``period_max=None`` means the full hyper-period.
    """

    factors: Tuple[int, ...] = (2, 2, 2, 5, 5, 5)
    period_min: int = 2
    period_max: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("factor basis must not be empty")
        for factor in self.factors:
            if factor < 2:
                raise ValueError(f"factors must be >= 2, got {factor}")
        if self.period_min < 1:
            raise ValueError(f"period_min must be >= 1, got {self.period_min}")
        high = self.period_max
        if high is not None and high < self.period_min:
            raise ValueError(
                f"empty period range [{self.period_min}, {high}]"
            )
        if not self.candidate_periods():
            raise ValueError(
                f"no product of {self.factors} lies in "
                f"[{self.period_min}, {high or self.hyperperiod()}]"
            )

    def hyperperiod(self) -> int:
        """Product of the full factor multiset: the LCM ceiling."""
        return _basis_product(self.factors)

    def candidate_periods(self) -> Tuple[int, ...]:
        """All distinct in-range sub-multiset products, sorted."""
        high = self.period_max if self.period_max is not None else self.hyperperiod()
        return tuple(
            value
            for value in _basis_candidates(tuple(sorted(self.factors)))
            if self.period_min <= value <= high
        )

    def divisor_periods(self) -> Tuple[int, ...]:
        """All in-range divisors of the basis hyper-period, sorted.

        The candidate-period grid for server synthesis: a server period
        dividing the hyper-period tiles exactly into every P-channel
        table and task window built on this basis, so the synthesized
        ``(Pi, Theta)`` grid never introduces a new LCM.  A superset of
        :meth:`candidate_periods` when the factor basis contains
        composites (e.g. factor 4 also yields divisor 2).
        """
        high = self.period_max if self.period_max is not None else self.hyperperiod()
        return tuple(
            value
            for value in divisors(self.hyperperiod())
            if self.period_min <= value <= high
        )

    def sample_period(self, rng: RandomSource) -> int:
        """Draw one period: a 0/1 inclusion "filter" over the factors.

        Each factor joins the product independently (the idiom from the
        end-to-end-latency generators); out-of-range products are
        rejected and, after a bounded number of tries, the draw degrades
        to a uniform choice over the in-range candidates so the method
        always terminates.
        """
        candidates = self.candidate_periods()
        low, high = candidates[0], candidates[-1]
        for _attempt in range(128):
            period = 1
            for factor in self.factors:
                if rng.random() < 0.5:
                    period *= factor
            if low <= period <= high and self.period_min <= period:
                if self.period_max is None or period <= self.period_max:
                    return period
        return rng.choice(list(candidates))


def divisors(n: int) -> Tuple[int, ...]:
    """All positive divisors of ``n``, sorted ascending.

    Trial division up to ``sqrt(n)`` -- the hyper-periods this is used
    on are bounded by construction (:class:`HyperperiodBasis`, the slot
    table cap), so the scan is a few thousand iterations at most.
    """
    if n < 1:
        raise ValueError(f"divisors() requires n >= 1, got {n}")
    small: list = []
    large: list = []
    step = 1
    while step * step <= n:
        if n % step == 0:
            small.append(step)
            if step != n // step:
                large.append(n // step)
        step += 1
    return tuple(small + large[::-1])


def _basis_product(factors: Tuple[int, ...]) -> int:
    product = 1
    for factor in factors:
        product *= factor
    return product


@lru_cache(maxsize=256)
def _basis_candidates(factors: Tuple[int, ...]) -> Tuple[int, ...]:
    """Distinct products of all sub-multisets of ``factors``, sorted."""
    products = {1}
    for factor in factors:
        products |= {value * factor for value in sorted(products)}
    return tuple(sorted(products))


@dataclass
class TaskSetGenerator:
    """Configurable random task-set factory.

    Attributes
    ----------
    period_min, period_max:
        Log-uniform period range, in slots.
    implicit_deadlines:
        When True every deadline equals the period (the case-study
        configuration); otherwise deadlines are uniform in ``[C, T]``.
    min_wcet:
        Floor on generated WCETs (slots).
    device_pool:
        Devices assigned round-robin to generated tasks.
    period_basis:
        When set, periods come from this :class:`HyperperiodBasis`
        instead of the log-uniform draw, bounding every LCM the analysis
        will ever take over the generated periods.
    """

    period_min: int = 20
    period_max: int = 2_000
    implicit_deadlines: bool = True
    min_wcet: int = 1
    device_pool: tuple = ("io0",)
    period_basis: Optional[HyperperiodBasis] = None

    def generate(
        self,
        rng: RandomSource,
        task_count: int,
        total_utilization: float,
        *,
        vm_count: int = 1,
        name: str = "random",
        criticality: Criticality = Criticality.FUNCTION,
        kind: TaskKind = TaskKind.RUNTIME,
    ) -> TaskSet:
        """Draw one task set with the requested aggregate utilization.

        Individual task utilizations exceeding 1.0 are re-drawn (they
        cannot be realized with ``C <= D <= T``); after 100 failed
        attempts a ``ValueError`` is raised, which only happens for
        infeasible requests such as ``total_utilization > task_count``.
        """
        if task_count < 1:
            raise ValueError(f"task_count must be >= 1, got {task_count}")
        if total_utilization <= 0:
            raise ValueError(
                f"total_utilization must be positive, got {total_utilization}"
            )
        if total_utilization > task_count:
            raise ValueError(
                f"cannot pack utilization {total_utilization} into "
                f"{task_count} tasks (per-task utilization is capped at 1)"
            )
        utilizations = self._draw_utilizations(rng, task_count, total_utilization)
        taskset = TaskSet(name=name)
        for i, utilization in enumerate(utilizations):
            task = self._make_task(
                rng,
                f"{name}.t{i}",
                utilization,
                vm_id=i % vm_count,
                criticality=criticality,
                kind=kind,
                device=self.device_pool[i % len(self.device_pool)],
            )
            taskset.add(task)
        return taskset

    def _draw_utilizations(
        self, rng: RandomSource, n: int, total: float
    ) -> list:
        for _attempt in range(100):
            utilizations = rng.uunifast(n, total)
            if all(u <= 1.0 for u in utilizations):
                return utilizations
        raise ValueError(
            f"could not draw {n} per-task utilizations <= 1 summing to {total}"
        )

    def _make_task(
        self,
        rng: RandomSource,
        name: str,
        utilization: float,
        *,
        vm_id: int,
        criticality: Criticality,
        kind: TaskKind,
        device: str,
    ) -> IOTask:
        if self.period_basis is not None:
            period = self.period_basis.sample_period(rng)
        else:
            period = max(
                2, int(round(rng.log_uniform(self.period_min, self.period_max)))
            )
        wcet = target_wcet(utilization, period, self.min_wcet)
        if self.implicit_deadlines:
            deadline = period
        else:
            deadline = rng.randint(wcet, period)
        payload = rng.choice([16, 32, 64, 128, 256, 512])
        return IOTask(
            name=name,
            period=period,
            wcet=wcet,
            deadline=deadline,
            vm_id=vm_id,
            kind=kind,
            criticality=criticality,
            device=device,
            payload_bytes=payload,
        )


def generate_random_taskset(
    seed: int,
    task_count: int,
    total_utilization: float,
    *,
    vm_count: int = 1,
    period_min: int = 20,
    period_max: int = 2_000,
    implicit_deadlines: bool = True,
    name: Optional[str] = None,
) -> TaskSet:
    """One-call wrapper around :class:`TaskSetGenerator`."""
    generator = TaskSetGenerator(
        period_min=period_min,
        period_max=period_max,
        implicit_deadlines=implicit_deadlines,
    )
    rng = RandomSource(seed, name or "generate_random_taskset")
    return generator.generate(
        rng,
        task_count,
        total_utilization,
        vm_count=vm_count,
        name=name or f"random{seed}",
    )


def generate_factorized_taskset(
    seed: int,
    task_count: int,
    total_utilization: float,
    *,
    basis: Optional[HyperperiodBasis] = None,
    vm_count: int = 1,
    implicit_deadlines: bool = True,
    name: Optional[str] = None,
) -> TaskSet:
    """Random task set whose period LCMs divide a bounded hyper-period.

    Like :func:`generate_random_taskset`, but every period is drawn from
    ``basis`` (default: the standard basis floored at 20 slots -- tiny
    periods make the ``min_wcet`` clamp dominate realized utilization),
    so exact tests and hyper-period-tiled grids stay small no matter
    which tasks end up analyzed together.
    """
    basis = basis or HyperperiodBasis(period_min=20)
    generator = TaskSetGenerator(
        period_min=basis.candidate_periods()[0],
        period_max=basis.candidate_periods()[-1],
        implicit_deadlines=implicit_deadlines,
        period_basis=basis,
    )
    rng = RandomSource(seed, name or "generate_factorized_taskset")
    return generator.generate(
        rng,
        task_count,
        total_utilization,
        vm_count=vm_count,
        name=name or f"factorized{seed}",
    )


def harmonic_periods(base: int, count: int) -> list:
    """Periods ``base * 2**i`` -- handy for slot-table-friendly sets."""
    if base < 1 or count < 1:
        raise ValueError(f"invalid harmonic spec base={base} count={count}")
    return [base * (2**i) for i in range(count)]


def target_wcet(utilization: float, period: int, minimum: int = 1) -> int:
    """WCET realizing ``utilization`` on ``period`` (clamped to [min, T]).

    The single quantization rule for every generator in the repo.
    Flooring (rather than ``round``, which banker's-rounds ``0.5`` cases
    *up*) guarantees ``C/T <= U`` per task, so a realized task set never
    exceeds its requested total utilization -- except through the
    ``minimum`` clamp, which only binds when ``U * T < minimum``.
    Sweeps position cells just below the schedulability boundary;
    round-up bias silently pushed them over it.
    """
    return min(period, max(minimum, int(math.floor(utilization * period))))
