"""Task-set containers.

:class:`TaskSet` aggregates :class:`~repro.tasks.task.IOTask` objects and
provides the derived quantities the analysis and the experiment harness
need: total utilization, hyperperiod, per-VM partitions and P/R channel
splits.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.tasks.task import Criticality, IOTask, TaskKind


class TaskSet:
    """An ordered collection of I/O tasks with convenience queries."""

    def __init__(self, tasks: Iterable[IOTask] = (), name: str = "taskset"):
        self.name = name
        self._tasks: List[IOTask] = []
        self._names: Dict[str, IOTask] = {}
        for task in tasks:
            self.add(task)

    # -- mutation ----------------------------------------------------------

    def add(self, task: IOTask) -> None:
        if task.name in self._names:
            raise ValueError(
                f"duplicate task name {task.name!r} in task set {self.name!r}"
            )
        self._tasks.append(task)
        self._names[task.name] = task

    def extend(self, tasks: Iterable[IOTask]) -> None:
        for task in tasks:
            self.add(task)

    def remove(self, name: str) -> IOTask:
        task = self._names.pop(name, None)
        if task is None:
            raise KeyError(f"no task named {name!r} in task set {self.name!r}")
        self._tasks.remove(task)
        return task

    # -- access ------------------------------------------------------------

    def __iter__(self) -> Iterator[IOTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __getitem__(self, name: str) -> IOTask:
        return self._names[name]

    @property
    def tasks(self) -> List[IOTask]:
        return list(self._tasks)

    # -- derived quantities --------------------------------------------------

    @property
    def utilization(self) -> float:
        """Sum of ``C/T`` over all tasks."""
        return sum(task.utilization for task in self._tasks)

    @property
    def density(self) -> float:
        """Sum of ``C/D`` over all tasks."""
        return sum(task.density for task in self._tasks)

    @property
    def hyperperiod(self) -> int:
        """LCM of all task periods (1 for an empty set)."""
        if not self._tasks:
            return 1
        return reduce(math.lcm, (task.period for task in self._tasks))

    @property
    def max_laxity_gap(self) -> int:
        """``max(T_k - D_k)`` -- appears in the Theorem-4 bound."""
        if not self._tasks:
            return 0
        return max(task.period - task.deadline for task in self._tasks)

    # -- partitions ----------------------------------------------------------

    def by_vm(self) -> Dict[int, "TaskSet"]:
        """Partition into per-VM task sets (keyed by ``vm_id``)."""
        partitions: Dict[int, TaskSet] = {}
        for task in self._tasks:
            partitions.setdefault(
                task.vm_id, TaskSet(name=f"{self.name}.vm{task.vm_id}")
            ).add(task)
        return partitions

    def vm_ids(self) -> List[int]:
        return sorted({task.vm_id for task in self._tasks})

    def for_vm(self, vm_id: int) -> "TaskSet":
        return TaskSet(
            (task for task in self._tasks if task.vm_id == vm_id),
            name=f"{self.name}.vm{vm_id}",
        )

    def of_kind(self, kind: TaskKind) -> "TaskSet":
        return TaskSet(
            (task for task in self._tasks if task.kind == kind),
            name=f"{self.name}.{kind.value}",
        )

    def of_criticality(self, criticality: Criticality) -> "TaskSet":
        return TaskSet(
            (task for task in self._tasks if task.criticality == criticality),
            name=f"{self.name}.{criticality.value}",
        )

    def predefined(self) -> "TaskSet":
        """The P-channel share of the set."""
        return self.of_kind(TaskKind.PREDEFINED)

    def runtime(self) -> "TaskSet":
        """The R-channel share of the set."""
        return self.of_kind(TaskKind.RUNTIME)

    def devices(self) -> List[str]:
        return sorted({task.device for task in self._tasks})

    # -- transformation --------------------------------------------------------

    def split_predefined(
        self,
        fraction: float,
        *,
        prefer_periodic: bool = True,
    ) -> "TaskSet":
        """Mark a fraction of tasks as P-channel (pre-defined) tasks.

        Implements the paper's *I/O-GUARD-x* configuration: ``x%`` of the
        I/O tasks are pre-loaded into the P-channel, the rest go through
        the R-channel (Sec. V-C).  Tasks are sorted by utilization
        descending when ``prefer_periodic`` (heavier tasks benefit most
        from static placement); the first ``round(fraction * n)`` become
        ``PREDEFINED``.  Returns a new task set; the receiver is not
        modified.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
        ordered = list(self._tasks)
        if prefer_periodic:
            ordered.sort(key=lambda task: (-task.utilization, task.name))
        cutoff = round(fraction * len(ordered))
        predefined_names = {task.name for task in ordered[:cutoff]}
        result = TaskSet(name=f"{self.name}.split{int(fraction * 100)}")
        for task in self._tasks:
            copy = task.renamed(task.name)
            copy.vm_id = task.vm_id
            copy.kind = (
                TaskKind.PREDEFINED
                if task.name in predefined_names
                else TaskKind.RUNTIME
            )
            result.add(copy)
        return result

    def assign_round_robin(self, vm_count: int) -> "TaskSet":
        """Distribute tasks over ``vm_count`` VMs in round-robin order."""
        if vm_count < 1:
            raise ValueError(f"vm_count must be >= 1, got {vm_count}")
        result = TaskSet(name=f"{self.name}.{vm_count}vm")
        for position, task in enumerate(self._tasks):
            result.add(task.with_vm(position % vm_count))
        return result

    def scaled_wcet(self, factor: float) -> "TaskSet":
        """Copy with every WCET scaled (ceil) by ``factor``; D, T kept."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        result = TaskSet(name=f"{self.name}.scaled")
        for task in self._tasks:
            copy = task.renamed(task.name)
            copy.wcet = max(1, math.ceil(task.wcet * factor))
            if copy.wcet > copy.deadline:
                copy.wcet = copy.deadline
            result.add(copy)
        return result

    def summary(self) -> Dict[str, float]:
        """Aggregate description used by experiment logs."""
        return {
            "tasks": len(self._tasks),
            "utilization": self.utilization,
            "density": self.density,
            "hyperperiod": self.hyperperiod,
            "vms": len(self.vm_ids()),
            "predefined": len(self.predefined()),
            "runtime": len(self.runtime()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskSet({self.name!r}, n={len(self._tasks)}, "
            f"U={self.utilization:.3f})"
        )


def merge(tasksets: Sequence[TaskSet], name: Optional[str] = None) -> TaskSet:
    """Union of several task sets (names must stay unique)."""
    merged = TaskSet(name=name or "+".join(ts.name for ts in tasksets))
    for taskset in tasksets:
        merged.extend(taskset)
    return merged
