"""Task-set serialization: JSON load/save.

System integrators keep workload descriptions in version control; this
module defines the stable JSON schema for task sets and round-trips
them.  Schema (one object per task)::

    {
      "name": "brake_monitor",
      "period": 500,          # slots
      "wcet": 6,              # slots
      "deadline": 500,        # optional, defaults to period
      "vm_id": 0,
      "kind": "runtime",      # or "predefined"
      "criticality": "safety",# or "function" / "synthetic"
      "device": "eth0",
      "payload_bytes": 16,
      "offset": 0,            # optional
      "jitter": 0             # optional
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet

PathLike = Union[str, Path]

#: Fields every serialized task must carry.
REQUIRED_FIELDS = ("name", "period", "wcet")


def canonical_json(payload: object) -> str:
    """Canonical JSON: sorted keys, compact separators, no trailing space.

    Equal payloads serialize to byte-identical strings, so canonical
    forms can be compared (and digested) directly -- the contract behind
    controller snapshots and the admission service's decision log.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def task_to_dict(task: IOTask) -> dict:
    """Stable dictionary form of one task."""
    return {
        "name": task.name,
        "period": task.period,
        "wcet": task.wcet,
        "deadline": task.deadline,
        "vm_id": task.vm_id,
        "kind": task.kind.value,
        "criticality": task.criticality.value,
        "device": task.device,
        "payload_bytes": task.payload_bytes,
        "offset": task.offset,
        "jitter": task.jitter,
    }


def task_from_dict(data: dict) -> IOTask:
    """Parse one task object, with schema errors naming the field."""
    for field in REQUIRED_FIELDS:
        if field not in data:
            raise ValueError(
                f"task object missing required field {field!r}: {data!r}"
            )
    try:
        kind = TaskKind(data.get("kind", "runtime"))
    except ValueError:
        raise ValueError(
            f"unknown kind {data.get('kind')!r}; expected "
            f"{[k.value for k in TaskKind]}"
        ) from None
    try:
        criticality = Criticality(data.get("criticality", "function"))
    except ValueError:
        raise ValueError(
            f"unknown criticality {data.get('criticality')!r}; expected "
            f"{[c.value for c in Criticality]}"
        ) from None
    return IOTask(
        name=data["name"],
        period=int(data["period"]),
        wcet=int(data["wcet"]),
        deadline=int(data["deadline"]) if "deadline" in data and data["deadline"] is not None else None,
        vm_id=int(data.get("vm_id", 0)),
        kind=kind,
        criticality=criticality,
        device=data.get("device", "io0"),
        payload_bytes=int(data.get("payload_bytes", 64)),
        offset=int(data.get("offset", 0)),
        jitter=int(data.get("jitter", 0)),
    )


def taskset_to_json(taskset: TaskSet, indent: int = 2) -> str:
    """Serialize a task set (name + task list) to a JSON string."""
    payload = {
        "name": taskset.name,
        "tasks": [task_to_dict(task) for task in taskset],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def taskset_from_json(text: str) -> TaskSet:
    """Parse a task set from its JSON string form."""
    payload = json.loads(text)
    if not isinstance(payload, dict) or "tasks" not in payload:
        raise ValueError(
            "task-set JSON must be an object with a 'tasks' array"
        )
    tasks: List[IOTask] = [task_from_dict(item) for item in payload["tasks"]]
    return TaskSet(tasks, name=payload.get("name", "taskset"))


def save_taskset(taskset: TaskSet, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(taskset_to_json(taskset))
    return path


def load_taskset(path: PathLike) -> TaskSet:
    return taskset_from_json(Path(path).read_text())
