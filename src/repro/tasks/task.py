"""I/O task and job models.

Units follow the paper's analysis (Sec. IV): all task parameters are
expressed in integer *time slots* of the hypervisor scheduler.  ``T`` is
the period / minimum inter-arrival separation, ``C`` the worst-case
execution (slot) demand of one job, ``D`` the relative deadline with the
constrained-deadline assumption ``D <= T``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class TaskKind(enum.Enum):
    """Where a task is served inside the I/O-GUARD hypervisor.

    ``PREDEFINED`` tasks are loaded into the P-channel's time slot table
    before run time; ``RUNTIME`` tasks arrive sporadically and go through
    the R-channel's two-layer scheduler (Sec. II-B).
    """

    PREDEFINED = "predefined"
    RUNTIME = "runtime"


class Criticality(enum.Enum):
    """Case-study task classes (Sec. V-C).

    The success ratio counts deadline misses of SAFETY and FUNCTION tasks
    only; SYNTHETIC tasks exist to raise system utilization.
    """

    SAFETY = "safety"
    FUNCTION = "function"
    SYNTHETIC = "synthetic"

    @property
    def counts_for_success(self) -> bool:
        return self in (Criticality.SAFETY, Criticality.FUNCTION)


_task_id_counter = itertools.count()


@dataclass
class IOTask:
    """A sporadic (or periodic) I/O task ``tau = (T, C, D)``.

    Attributes
    ----------
    name:
        Human-readable identifier (unique inside a task set).
    period:
        ``T`` -- minimum job separation, in time slots.
    wcet:
        ``C`` -- worst-case execution demand of one job, in time slots.
    deadline:
        ``D`` -- relative deadline in slots; defaults to the period
        (implicit deadline, as used by the case study).
    vm_id:
        Index of the virtual machine issuing the task.
    kind:
        P-channel (``PREDEFINED``) or R-channel (``RUNTIME``).
    criticality:
        Case-study class; drives success-ratio accounting.
    device:
        Name of the I/O device the task targets (e.g. ``"ethernet0"``).
    payload_bytes:
        Bytes moved per job; drives throughput accounting.
    offset:
        Release offset of the first job, in slots (periodic pattern).
    jitter:
        Maximum extra release delay drawn per job for sporadic arrival
        patterns (0 = strictly periodic).
    """

    name: str
    period: int
    wcet: int
    deadline: Optional[int] = None
    vm_id: int = 0
    kind: TaskKind = TaskKind.RUNTIME
    criticality: Criticality = Criticality.FUNCTION
    device: str = "io0"
    payload_bytes: int = 64
    offset: int = 0
    jitter: int = 0
    task_id: int = field(default_factory=lambda: next(_task_id_counter))

    def __post_init__(self) -> None:
        if self.deadline is None:
            self.deadline = self.period
        if self.period <= 0:
            raise ValueError(f"task {self.name!r}: period must be > 0, got {self.period}")
        if self.wcet <= 0:
            raise ValueError(f"task {self.name!r}: wcet must be > 0, got {self.wcet}")
        if self.deadline <= 0:
            raise ValueError(
                f"task {self.name!r}: deadline must be > 0, got {self.deadline}"
            )
        if self.wcet > self.deadline:
            raise ValueError(
                f"task {self.name!r}: wcet {self.wcet} exceeds deadline "
                f"{self.deadline}; the job can never meet it"
            )
        if self.deadline > self.period:
            raise ValueError(
                f"task {self.name!r}: deadline {self.deadline} exceeds period "
                f"{self.period}; the analysis assumes constrained deadlines"
            )
        if self.offset < 0:
            raise ValueError(f"task {self.name!r}: negative offset {self.offset}")
        if self.jitter < 0:
            raise ValueError(f"task {self.name!r}: negative jitter {self.jitter}")

    @property
    def utilization(self) -> float:
        """``C / T`` -- the long-run slot demand fraction."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """``C / D`` -- demand per deadline window."""
        return self.wcet / self.deadline

    def job(self, release: int, index: int) -> "Job":
        """Instantiate the ``index``-th job released at slot ``release``."""
        return Job(task=self, release=release, index=index)

    def renamed(self, name: str) -> "IOTask":
        """Copy of this task under a different name (fresh task_id)."""
        return IOTask(
            name=name,
            period=self.period,
            wcet=self.wcet,
            deadline=self.deadline,
            vm_id=self.vm_id,
            kind=self.kind,
            criticality=self.criticality,
            device=self.device,
            payload_bytes=self.payload_bytes,
            offset=self.offset,
            jitter=self.jitter,
        )

    def with_vm(self, vm_id: int) -> "IOTask":
        """Copy of this task assigned to ``vm_id``."""
        task = self.renamed(self.name)
        task.vm_id = vm_id
        return task

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOTask({self.name!r}, T={self.period}, C={self.wcet}, "
            f"D={self.deadline}, vm={self.vm_id}, {self.kind.value})"
        )


@dataclass
class Job:
    """One released instance of an :class:`IOTask`."""

    task: IOTask
    release: int
    index: int
    remaining: int = field(init=False)
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    preemption_count: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.remaining = self.task.wcet

    @property
    def absolute_deadline(self) -> int:
        return self.release + self.task.deadline

    @property
    def name(self) -> str:
        return f"{self.task.name}#{self.index}"

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def response_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.release

    def met_deadline(self) -> Optional[bool]:
        """True/False once completed; None while in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at <= self.absolute_deadline

    def execute(self, slots: int = 1) -> None:
        """Consume ``slots`` of remaining demand (clamped at zero)."""
        if slots < 0:
            raise ValueError(f"cannot execute negative slots: {slots}")
        self.remaining = max(0, self.remaining - slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.name}, r={self.release}, d={self.absolute_deadline}, "
            f"rem={self.remaining})"
        )
