"""Seeded, deterministic fault plans.

The paper claims *guaranteed* real-time I/O even when other VMs or
devices misbehave (per-VM I/O pools, footnote 1); exercising that claim
needs reproducible hostility.  A :class:`FaultPlan` is a static,
seed-derived description of every fault a run will see:

* :class:`DeviceStallFault` -- an external device stops answering for a
  bounded window (wedged sensor bus, brown-out);
* :class:`NocLinkFault` -- a directed NoC link goes down;
* :class:`PacketDropFault` -- routers discard a deterministic subset of
  packets (corrupted headers);
* :class:`QueueStormFault` -- a babbling-idiot VM floods its I/O pool
  with contract-violating short-deadline jobs.

Like PR 1's sweep cells, every parameter derives *statelessly* from the
experiment seed (:func:`repro.sim.rng.derive_seed`), so two runs with
the same seed build byte-identical plans -- the determinism contract the
fault trace and the CI smoke job assert.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Iterator, List, Sequence, Tuple

from repro.sim.rng import RandomSource, derive_seed


@dataclass(frozen=True, order=True)
class FaultWindow:
    """Half-open activity interval ``[start_slot, end_slot)``."""

    start_slot: int
    duration_slots: int

    def __post_init__(self):
        if self.start_slot < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start_slot}")
        if self.duration_slots < 1:
            raise ValueError(
                f"fault duration must be >= 1 slot, got {self.duration_slots}"
            )

    @property
    def end_slot(self) -> int:
        return self.start_slot + self.duration_slots

    def active(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot


@dataclass(frozen=True)
class DeviceStallFault:
    """Device ``device`` answers nothing during the window."""

    kind: ClassVar[str] = "device-stall"
    window: FaultWindow
    device: str

    @property
    def target(self) -> str:
        return self.device


@dataclass(frozen=True)
class NocLinkFault:
    """Directed mesh link ``source -> destination`` is down."""

    kind: ClassVar[str] = "noc-link-down"
    window: FaultWindow
    source: Tuple[int, int]
    destination: Tuple[int, int]

    @property
    def link(self) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        return (self.source, self.destination)

    @property
    def target(self) -> str:
        return f"{self.source}->{self.destination}"


@dataclass(frozen=True)
class PacketDropFault:
    """Drop packets with ``packet_id % modulus == phase`` in the window.

    Modulus-based selection is a deterministic function of the packet,
    not of a shared RNG stream, so the set of dropped packets is
    independent of injection order -- the property that keeps parallel
    and serial replays identical.
    """

    kind: ClassVar[str] = "noc-packet-drop"
    window: FaultWindow
    modulus: int
    phase: int

    def __post_init__(self):
        if self.modulus < 2:
            raise ValueError(f"drop modulus must be >= 2, got {self.modulus}")
        if not 0 <= self.phase < self.modulus:
            raise ValueError(
                f"drop phase must lie in [0, {self.modulus}), got {self.phase}"
            )

    @property
    def target(self) -> str:
        return f"id%{self.modulus}=={self.phase}"

    def matches(self, packet_id: int) -> bool:
        return packet_id % self.modulus == self.phase


@dataclass(frozen=True)
class QueueStormFault:
    """Babbling-idiot VM: ``jobs_per_slot`` extra jobs every storm slot.

    The storm jobs carry deliberately tight deadlines (``deadline_slots``)
    so that schedulers without per-VM budgets -- global EDF, shared FIFO
    -- are forced to serve the idiot ahead of well-behaved traffic.
    """

    kind: ClassVar[str] = "queue-storm"
    window: FaultWindow
    vm_id: int
    jobs_per_slot: int
    deadline_slots: int
    wcet_slots: int = 1
    payload_bytes: int = 64
    device: str = "io0"

    def __post_init__(self):
        if self.vm_id < 0:
            raise ValueError(f"storm vm_id must be >= 0, got {self.vm_id}")
        if self.jobs_per_slot < 1:
            raise ValueError(
                f"storm rate must be >= 1 job/slot, got {self.jobs_per_slot}"
            )
        if not 0 < self.wcet_slots <= self.deadline_slots:
            raise ValueError(
                f"storm wcet must satisfy 0 < wcet <= deadline, got "
                f"wcet={self.wcet_slots}, deadline={self.deadline_slots}"
            )
        if self.payload_bytes < 0:
            raise ValueError(f"negative storm payload: {self.payload_bytes}")

    @property
    def target(self) -> str:
        return f"vm{self.vm_id}"


#: Registry used by (de)serialization; insertion order is the canonical
#: kind order for tie-breaking simultaneous fault edges.
FAULT_TYPES = {
    DeviceStallFault.kind: DeviceStallFault,
    NocLinkFault.kind: NocLinkFault,
    PacketDropFault.kind: PacketDropFault,
    QueueStormFault.kind: QueueStormFault,
}

FaultSpec = Any  # union of the dataclasses above (py3.9-friendly alias)


def _fault_to_dict(fault: FaultSpec) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "kind": fault.kind,
        "start_slot": fault.window.start_slot,
        "duration_slots": fault.window.duration_slots,
    }
    if isinstance(fault, DeviceStallFault):
        data["device"] = fault.device
    elif isinstance(fault, NocLinkFault):
        data["source"] = list(fault.source)
        data["destination"] = list(fault.destination)
    elif isinstance(fault, PacketDropFault):
        data["modulus"] = fault.modulus
        data["phase"] = fault.phase
    elif isinstance(fault, QueueStormFault):
        data.update(
            vm_id=fault.vm_id,
            jobs_per_slot=fault.jobs_per_slot,
            deadline_slots=fault.deadline_slots,
            wcet_slots=fault.wcet_slots,
            payload_bytes=fault.payload_bytes,
            device=fault.device,
        )
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown fault type {type(fault).__name__}")
    return data


def _fault_from_dict(data: Dict[str, Any]) -> FaultSpec:
    kind = data.get("kind")
    if kind not in FAULT_TYPES:
        raise ValueError(f"unknown fault kind {kind!r}")
    window = FaultWindow(
        start_slot=int(data["start_slot"]),
        duration_slots=int(data["duration_slots"]),
    )
    if kind == DeviceStallFault.kind:
        return DeviceStallFault(window=window, device=str(data["device"]))
    if kind == NocLinkFault.kind:
        return NocLinkFault(
            window=window,
            source=tuple(data["source"]),
            destination=tuple(data["destination"]),
        )
    if kind == PacketDropFault.kind:
        return PacketDropFault(
            window=window,
            modulus=int(data["modulus"]),
            phase=int(data["phase"]),
        )
    return QueueStormFault(
        window=window,
        vm_id=int(data["vm_id"]),
        jobs_per_slot=int(data["jobs_per_slot"]),
        deadline_slots=int(data["deadline_slots"]),
        wcet_slots=int(data.get("wcet_slots", 1)),
        payload_bytes=int(data.get("payload_bytes", 64)),
        device=str(data.get("device", "io0")),
    )


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seed-stamped collection of fault specifications."""

    name: str
    seed: int
    faults: Tuple[FaultSpec, ...]

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> List[FaultSpec]:
        if kind not in FAULT_TYPES:
            raise ValueError(f"unknown fault kind {kind!r}")
        return [fault for fault in self.faults if fault.kind == kind]

    @property
    def device_stalls(self) -> List[DeviceStallFault]:
        return self.of_kind(DeviceStallFault.kind)

    @property
    def link_faults(self) -> List[NocLinkFault]:
        return self.of_kind(NocLinkFault.kind)

    @property
    def drop_faults(self) -> List[PacketDropFault]:
        return self.of_kind(PacketDropFault.kind)

    @property
    def storms(self) -> List[QueueStormFault]:
        return self.of_kind(QueueStormFault.kind)

    def events(self) -> Iterator[Tuple[int, str, int, FaultSpec]]:
        """Activation/clear edges: ``(slot, action, fault_index, fault)``.

        Sorted by ``(slot, action, kind-order, index)`` with ``clear``
        before ``activate`` at equal slots (a window ending exactly when
        another begins never yields a double-active instant).  The order
        is a pure function of the plan -- the simulator relies on that
        for replay (:meth:`repro.sim.engine.Simulator.consume_fault_plan`).
        """
        kind_order = {kind: rank for rank, kind in enumerate(FAULT_TYPES)}
        edges = []
        for index, fault in enumerate(self.faults):
            edges.append(
                (fault.window.start_slot, 1, kind_order[fault.kind], index, "activate", fault)
            )
            edges.append(
                (fault.window.end_slot, 0, kind_order[fault.kind], index, "clear", fault)
            )
        edges.sort(key=lambda edge: edge[:4])
        for slot, _rank, _kind_rank, index, action, fault in edges:
            yield (slot, action, index, fault)

    @property
    def horizon_hint(self) -> int:
        """Last slot any fault is active (sizing aid for harnesses)."""
        return max((fault.window.end_slot for fault in self.faults), default=0)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [_fault_to_dict(fault) for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            faults=tuple(_fault_from_dict(entry) for entry in data["faults"]),
        )

    def canonical_json(self) -> str:
        """Stable byte representation (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical form; the plan's replay identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for fault in self.faults:
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        return f"FaultPlan({self.name!r}, seed={self.seed}, {kinds})"


def _window_in(
    rng: RandomSource, horizon: int, start_frac: Tuple[float, float],
    dur_frac: Tuple[float, float],
) -> FaultWindow:
    start = rng.randint(
        max(0, int(horizon * start_frac[0])), max(1, int(horizon * start_frac[1]))
    )
    duration = rng.randint(
        max(1, int(horizon * dur_frac[0])), max(2, int(horizon * dur_frac[1]))
    )
    return FaultWindow(start_slot=start, duration_slots=duration)


def generate_fault_plan(
    seed: int,
    *,
    horizon_slots: int,
    devices: Sequence[str] = (),
    storm_vms: Sequence[int] = (),
    links: Sequence[Tuple[Tuple[int, int], Tuple[int, int]]] = (),
    packet_drop: bool = False,
    storm_jobs_per_slot: int = 0,
    storm_device: str = "io0",
    name: str = "faultplan",
) -> FaultPlan:
    """Derive a :class:`FaultPlan` statelessly from ``seed``.

    Each fault draws its parameters from its own child stream keyed by
    ``(seed, name, kind, target)``, so adding or removing one fault
    never perturbs the draws of another -- the same discipline the
    parallel experiment runner applies to sweep cells.

    ``storm_jobs_per_slot`` overrides the drawn storm rate when > 0
    (experiments that must guarantee overload use this).
    """
    if horizon_slots < 10:
        raise ValueError(f"horizon too short for faults: {horizon_slots}")
    faults: List[FaultSpec] = []
    for device in devices:
        rng = RandomSource(derive_seed(seed, f"{name}.stall.{device}"))
        faults.append(
            DeviceStallFault(
                window=_window_in(rng, horizon_slots, (0.25, 0.45), (0.08, 0.15)),
                device=device,
            )
        )
    for vm_id in storm_vms:
        rng = RandomSource(derive_seed(seed, f"{name}.storm.{vm_id}"))
        window = _window_in(rng, horizon_slots, (0.10, 0.30), (0.15, 0.30))
        rate = storm_jobs_per_slot or rng.randint(2, 6)
        faults.append(
            QueueStormFault(
                window=window,
                vm_id=vm_id,
                jobs_per_slot=rate,
                deadline_slots=rng.randint(8, 24),
                wcet_slots=1,
                payload_bytes=rng.choice((16, 32, 64)),
                device=storm_device,
            )
        )
    for link in links:
        source, destination = tuple(link[0]), tuple(link[1])
        rng = RandomSource(
            derive_seed(seed, f"{name}.link.{source}->{destination}")
        )
        faults.append(
            NocLinkFault(
                window=_window_in(rng, horizon_slots, (0.30, 0.55), (0.05, 0.12)),
                source=source,
                destination=destination,
            )
        )
    if packet_drop:
        rng = RandomSource(derive_seed(seed, f"{name}.drop"))
        modulus = rng.randint(5, 13)
        faults.append(
            PacketDropFault(
                window=_window_in(rng, horizon_slots, (0.20, 0.50), (0.10, 0.25)),
                modulus=modulus,
                phase=rng.randint(0, modulus - 1),
            )
        )
    return FaultPlan(name=name, seed=seed, faults=tuple(faults))
