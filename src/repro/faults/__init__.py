"""Deterministic fault injection (robustness layer).

The reproduction's isolation claim -- victim VMs keep their deadlines
while other VMs or devices misbehave -- is only testable with
reproducible hostility.  This package provides it:

* :mod:`repro.faults.plan` -- seed-derived, serializable
  :class:`~repro.faults.plan.FaultPlan` (device stalls, NoC link faults,
  packet drops, babbling-idiot queue storms);
* :mod:`repro.faults.injectors` -- wiring a plan into
  :mod:`repro.hw.devices`, :mod:`repro.noc` and the I/O-pool submission
  path, in slot-loop or event-engine mode;
* :mod:`repro.faults.trace` -- the canonical
  :class:`~repro.faults.trace.FaultTrace` whose digest states the
  determinism contract (same seed + plan => byte-identical trace).

Containment lives on the hypervisor side, not here: bounded
retry/backoff in :mod:`repro.core.driver`, quarantine policy in
:mod:`repro.core.manager`, back-pressure accounting in
:mod:`repro.metrics.backpressure`.
"""

from repro.faults.plan import (
    DeviceStallFault,
    FaultPlan,
    FaultWindow,
    NocLinkFault,
    PacketDropFault,
    QueueStormFault,
    generate_fault_plan,
)
from repro.faults.injectors import (
    DeviceStallInjector,
    FaultController,
    NocFaultInjector,
    StormInjector,
)
from repro.faults.trace import FaultEvent, FaultTrace

__all__ = [
    "DeviceStallFault",
    "DeviceStallInjector",
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "FaultTrace",
    "FaultWindow",
    "NocFaultInjector",
    "NocLinkFault",
    "PacketDropFault",
    "QueueStormFault",
    "StormInjector",
    "generate_fault_plan",
]
