"""Injectors: wire a :class:`~repro.faults.plan.FaultPlan` into the
hardware models.

Two consumption modes, both deterministic:

* **slot-loop** -- slot-granular experiments call
  :meth:`FaultController.on_slot` once per slot; window edges toggle,
  storm jobs materialize, everything lands in the
  :class:`~repro.faults.trace.FaultTrace` in slot order;
* **event-engine** -- engine-driven models call
  :meth:`FaultController.attach`, which hands the plan to
  :meth:`repro.sim.engine.Simulator.consume_fault_plan`; edges fire as
  simulator events at :data:`~repro.sim.engine.FAULT_EVENT_PRIORITY`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.faults.plan import (
    DeviceStallFault,
    FaultPlan,
    NocLinkFault,
    PacketDropFault,
    QueueStormFault,
)
from repro.faults.trace import FaultTrace
from repro.hw.devices import IODevice
from repro.tasks.task import Criticality, IOTask, Job
from repro.tasks.taskset import TaskSet


class DeviceStallInjector:
    """Toggles a device's stalled state at the fault's window edges."""

    def __init__(
        self,
        fault: DeviceStallFault,
        device: IODevice,
        trace: Optional[FaultTrace] = None,
    ):
        if device.name != fault.device:
            raise ValueError(
                f"fault targets device {fault.device!r}, got {device.name!r}"
            )
        self.fault = fault
        self.device = device
        self.trace = trace

    def apply(self, action: str, slot: int) -> None:
        if action == "activate":
            self.device.begin_stall()
        else:
            self.device.end_stall()
        if self.trace is not None:
            self.trace.record(slot, self.fault.kind, self.fault.target, action)

    def on_slot(self, slot: int) -> None:
        if slot == self.fault.window.start_slot:
            self.apply("activate", slot)
        if slot == self.fault.window.end_slot:
            self.apply("clear", slot)


class StormInjector:
    """Materializes a babbling-idiot VM's flood, slot by slot.

    Job identity is a pure function of ``(fault, slot, position)``, so
    two runs -- or two disciplines inside one experiment facing "the
    same" attack -- obtain identical job sequences without sharing
    mutable state.
    """

    def __init__(
        self, fault: QueueStormFault, trace: Optional[FaultTrace] = None
    ):
        self.fault = fault
        self.trace = trace
        # Storm jobs masquerade as a legitimate runtime task of the VM;
        # period == deadline keeps the IOTask invariants satisfied while
        # the *actual* release rate violates the declared contract
        # (that's the attack).
        self.task = IOTask(
            name=f"storm.vm{fault.vm_id}",
            period=fault.deadline_slots,
            wcet=fault.wcet_slots,
            deadline=fault.deadline_slots,
            vm_id=fault.vm_id,
            criticality=Criticality.SYNTHETIC,
            device=fault.device,
            payload_bytes=fault.payload_bytes,
        )
        self.jobs_generated = 0

    def jobs_for_slot(self, slot: int) -> List[Job]:
        """Storm releases at ``slot`` (empty outside the window)."""
        if not self.fault.window.active(slot):
            return []
        base = (slot - self.fault.window.start_slot) * self.fault.jobs_per_slot
        jobs = [
            self.task.job(release=slot, index=base + position)
            for position in range(self.fault.jobs_per_slot)
        ]
        self.jobs_generated += len(jobs)
        return jobs

    def apply(self, action: str, slot: int) -> None:
        if self.trace is not None:
            self.trace.record(
                slot,
                self.fault.kind,
                self.fault.target,
                action,
                jobs_per_slot=self.fault.jobs_per_slot,
            )

    def on_slot_edges(self, slot: int) -> None:
        if slot == self.fault.window.start_slot:
            self.apply("activate", slot)
        if slot == self.fault.window.end_slot:
            self.apply("clear", slot)


class NocFaultInjector:
    """Applies link-down and packet-drop faults to a ``NocNetwork``."""

    def __init__(
        self,
        network,
        faults: Sequence,
        trace: Optional[FaultTrace] = None,
    ):
        self.network = network
        self.faults = list(faults)
        self.trace = trace
        self._active_drops: List[PacketDropFault] = []
        for fault in self.faults:
            if not isinstance(fault, (NocLinkFault, PacketDropFault)):
                raise TypeError(
                    f"NocFaultInjector handles NoC faults only, got "
                    f"{type(fault).__name__}"
                )

    def _refresh_drop_rule(self) -> None:
        if self._active_drops:
            active = tuple(self._active_drops)
            self.network.drop_rule = lambda packet: any(
                fault.matches(packet.packet_id) for fault in active
            )
        else:
            self.network.drop_rule = None

    def apply(self, action: str, fault, slot: int) -> None:
        if isinstance(fault, NocLinkFault):
            if action == "activate":
                self.network.fail_link(fault.link)
            else:
                self.network.restore_link(fault.link)
        else:
            if action == "activate":
                if fault not in self._active_drops:
                    self._active_drops.append(fault)
            else:
                if fault in self._active_drops:
                    self._active_drops.remove(fault)
            self._refresh_drop_rule()
        if self.trace is not None:
            self.trace.record(slot, fault.kind, fault.target, action)

    def on_slot(self, slot: int) -> None:
        for fault in self.faults:
            if slot == fault.window.start_slot:
                self.apply("activate", fault, slot)
            if slot == fault.window.end_slot:
                self.apply("clear", fault, slot)


class FaultController:
    """One object wiring a whole plan into a run.

    ``devices`` maps device name -> :class:`IODevice` for stall faults;
    ``network`` (optional) receives NoC faults.  Storm faults always get
    a :class:`StormInjector`; their jobs are returned from
    :meth:`on_slot` for the harness to submit through the normal driver
    path (back-pressure and containment must see them like any other
    submission).
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        devices: Optional[Dict[str, IODevice]] = None,
        network=None,
        trace: Optional[FaultTrace] = None,
    ):
        self.plan = plan
        self.trace = trace if trace is not None else FaultTrace()
        devices = devices or {}
        self.device_injectors: List[DeviceStallInjector] = []
        for fault in plan.device_stalls:
            if fault.device not in devices:
                raise ValueError(
                    f"plan stalls device {fault.device!r} but no such device "
                    f"was provided (have {sorted(devices)})"
                )
            self.device_injectors.append(
                DeviceStallInjector(fault, devices[fault.device], self.trace)
            )
        self.storm_injectors: List[StormInjector] = [
            StormInjector(fault, self.trace) for fault in plan.storms
        ]
        noc_faults = list(plan.link_faults) + list(plan.drop_faults)
        self.noc_injector: Optional[NocFaultInjector] = None
        if noc_faults:
            if network is None:
                raise ValueError(
                    "plan contains NoC faults but no network was provided"
                )
            self.noc_injector = NocFaultInjector(network, noc_faults, self.trace)

    # -- slot-loop mode -----------------------------------------------------

    def on_slot(self, slot: int) -> List[Job]:
        """Apply window edges for ``slot``; return storm jobs to submit."""
        for injector in self.device_injectors:
            injector.on_slot(slot)
        if self.noc_injector is not None:
            self.noc_injector.on_slot(slot)
        jobs: List[Job] = []
        for injector in self.storm_injectors:
            injector.on_slot_edges(slot)
            jobs.extend(injector.jobs_for_slot(slot))
        return jobs

    # -- event-engine mode ---------------------------------------------------

    def attach(self, sim, cycles_per_slot: int = 1) -> int:
        """Schedule every fault edge on ``sim``; returns the edge count.

        Storm faults stay slot-loop-only (they need a submission path);
        attach accepts them but only their activate/clear edges fire, so
        harnesses can log the window even in engine mode.
        """
        return sim.consume_fault_plan(
            self.plan, self._dispatch, cycles_per_slot=cycles_per_slot
        )

    def _dispatch(self, action: str, fault, slot: int) -> None:
        if isinstance(fault, DeviceStallFault):
            for injector in self.device_injectors:
                if injector.fault == fault:
                    injector.apply(action, slot)
        elif isinstance(fault, (NocLinkFault, PacketDropFault)):
            if self.noc_injector is not None:
                self.noc_injector.apply(action, fault, slot)
        elif isinstance(fault, QueueStormFault):
            for injector in self.storm_injectors:
                if injector.fault == fault:
                    injector.apply(action, slot)

    def storm_taskset(self) -> TaskSet:
        """The storm tasks as a task set (admission-test comparisons)."""
        return TaskSet(
            [injector.task for injector in self.storm_injectors],
            name=f"{self.plan.name}.storms",
        )
