"""Deterministic fault trace.

Every observable fault-layer occurrence -- a window activating or
clearing, a storm job injected, a packet dropped, a pool rejecting a
submission, a device or VM quarantined -- lands in a :class:`FaultTrace`
as a :class:`FaultEvent`.  The trace serializes to canonical JSONL and
hashes to a single digest, which is the artefact the determinism
contract is stated over: *identical seed + fault plan => byte-identical
fault trace*.  The CI smoke job compares digests across two runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


@dataclass(frozen=True)
class FaultEvent:
    """One fault-layer occurrence at slot granularity."""

    slot: int
    kind: str
    target: str
    action: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "slot": self.slot,
            "kind": self.kind,
            "target": self.target,
            "action": self.action,
        }
        if self.detail:
            data["detail"] = self.detail
        return data


class FaultTrace:
    """Append-only, canonically-serializable fault event log."""

    def __init__(self):
        self.events: List[FaultEvent] = []
        self.counters: Dict[str, int] = {}

    def record(
        self, slot: int, kind: str, target: str, action: str, **detail: Any
    ) -> FaultEvent:
        event = FaultEvent(
            slot=slot, kind=kind, target=target, action=action, detail=detail
        )
        self.events.append(event)
        self.counters[action] = self.counters.get(action, 0) + 1
        return event

    def count(self, action: str) -> int:
        return self.counters.get(action, 0)

    def by_action(self, action: str) -> List[FaultEvent]:
        return [event for event in self.events if event.action == action]

    def to_jsonl(self) -> str:
        """One canonical JSON object per line, in recording order."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
            for event in self.events
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSONL -- the replay identity."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultTrace({len(self.events)} events, {self.counters})"
