"""Event-driven NoC: arbitration, forwarding and latency accounting.

Each *directed link* is a single-capacity resource; a packet holds a link
for ``router_latency + flit_count`` cycles (store-and-forward of the whole
packet at one flit per cycle after the router's pipeline delay).  Packets
queue FIFO at contended links -- exactly the "scheduling left to the
routers" behaviour the Legacy baseline exhibits (Sec. V): no notion of
deadlines, so an urgent packet waits behind bulk traffic.

The model is wormhole-coarse (whole-packet granularity) rather than
flit-interleaved; for the latency phenomena the paper's evaluation relies
on (queueing growth with load, hop-count dependence) this is the standard
fidelity/performance trade-off, and :mod:`repro.noc.latency` calibrates
the closed-form model against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.packet import Packet
from repro.noc.routing import route_links
from repro.noc.topology import Coordinate, MeshTopology
from repro.sim.engine import Simulator, Timeout
from repro.sim.resource import Resource

#: Cycles a router needs to process a header before forwarding.
DEFAULT_ROUTER_LATENCY = 3


@dataclass
class PacketRecord:
    """Per-delivered-packet accounting."""

    packet: Packet
    hops: int
    queueing_cycles: float
    transfer_cycles: float

    @property
    def total_latency(self) -> float:
        latency = self.packet.latency
        return latency if latency is not None else 0.0


@dataclass
class DropRecord:
    """One packet lost to a fault (filtered at injection or mid-route)."""

    packet: Packet
    time: float
    reason: str
    #: Link the packet died on; None when filtered at injection.
    link: Optional[Tuple[Coordinate, Coordinate]] = None


class NocNetwork:
    """Mesh network executing packet traversals as simulator processes."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[MeshTopology] = None,
        router_latency: int = DEFAULT_ROUTER_LATENCY,
    ):
        if router_latency < 0:
            raise ValueError(f"router latency must be >= 0, got {router_latency}")
        self.sim = sim
        self.topology = topology or MeshTopology()
        self.router_latency = router_latency
        self._links: Dict[Tuple[Coordinate, Coordinate], Resource] = {}
        for link in self.topology.links():
            self._links[link] = Resource(
                sim, capacity=1, name=f"link{link[0]}->{link[1]}"
            )
        self.delivered: List[PacketRecord] = []
        self.dropped: List[DropRecord] = []
        self.in_flight = 0
        self.total_injected = 0
        self.total_dropped = 0
        self._failed_links: set = set()
        #: Fault-layer hook: packets for which this predicate returns
        #: True are discarded at injection (corrupted-header model).
        #: Must be a *deterministic* function of the packet for replay.
        self.drop_rule: Optional[Callable[[Packet], bool]] = None

    def link_resource(self, link: Tuple[Coordinate, Coordinate]) -> Resource:
        return self._links[link]

    # -- fault hooks -----------------------------------------------------------

    def fail_link(self, link: Tuple[Coordinate, Coordinate]) -> None:
        """Take a directed link down; packets routed over it are dropped."""
        if link not in self._links:
            raise ValueError(f"no such link {link[0]}->{link[1]} in the mesh")
        self._failed_links.add(link)

    def restore_link(self, link: Tuple[Coordinate, Coordinate]) -> None:
        """Bring a failed link back; in-flight routes re-check per hop."""
        self._failed_links.discard(link)

    def link_failed(self, link: Tuple[Coordinate, Coordinate]) -> bool:
        return link in self._failed_links

    @property
    def failed_links(self) -> List[Tuple[Coordinate, Coordinate]]:
        return sorted(self._failed_links)

    def _drop(
        self,
        packet: Packet,
        reason: str,
        link: Optional[Tuple[Coordinate, Coordinate]],
        on_dropped: Optional[Callable[[Packet], None]],
    ) -> None:
        self.total_dropped += 1
        self.dropped.append(
            DropRecord(packet=packet, time=self.sim.now, reason=reason, link=link)
        )
        if on_dropped is not None:
            on_dropped(packet)

    def inject(
        self,
        packet: Packet,
        on_delivered: Optional[Callable[[Packet], None]] = None,
        on_dropped: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        """Start a packet traversal at the current simulation time.

        Packets matching :attr:`drop_rule` are discarded immediately;
        packets that reach a failed link are discarded mid-route.  Both
        are counted in :attr:`dropped` (and reported via ``on_dropped``)
        rather than silently lost.
        """
        if not self.topology.contains(packet.source) or not self.topology.contains(
            packet.destination
        ):
            raise ValueError(
                f"packet endpoints {packet.source}->{packet.destination} "
                "must lie in the mesh"
            )
        packet.injected_at = self.sim.now
        self.total_injected += 1
        if self.drop_rule is not None and self.drop_rule(packet):
            self._drop(packet, "drop-rule", None, on_dropped)
            return
        self.in_flight += 1
        self.sim.process(
            self._traverse(packet, on_delivered, on_dropped),
            name=f"packet{packet.packet_id}",
        )

    def _traverse(
        self,
        packet: Packet,
        on_delivered: Optional[Callable[[Packet], None]],
        on_dropped: Optional[Callable[[Packet], None]] = None,
    ):
        links = route_links(self.topology, packet.source, packet.destination)
        queueing = 0.0
        transfer = 0.0
        hold_cycles = self.router_latency + packet.flit_count
        for link in links:
            if link in self._failed_links:
                self.in_flight -= 1
                self._drop(packet, "link-down", link, on_dropped)
                return
            resource = self._links[link]
            wait_start = self.sim.now
            yield from resource.acquire()
            queueing += self.sim.now - wait_start
            if link in self._failed_links:
                # The link died while the packet queued for it.
                resource.release()
                self.in_flight -= 1
                self._drop(packet, "link-down", link, on_dropped)
                return
            yield Timeout(hold_cycles)
            transfer += hold_cycles
            resource.release()
        packet.delivered_at = self.sim.now
        self.in_flight -= 1
        self.delivered.append(
            PacketRecord(
                packet=packet,
                hops=len(links),
                queueing_cycles=queueing,
                transfer_cycles=transfer,
            )
        )
        if on_delivered is not None:
            on_delivered(packet)

    # -- statistics ------------------------------------------------------------

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(record.total_latency for record in self.delivered) / len(
            self.delivered
        )

    def max_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return max(record.total_latency for record in self.delivered)

    def mean_queueing(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(record.queueing_cycles for record in self.delivered) / len(
            self.delivered
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NocNetwork({self.topology.width}x{self.topology.height}, "
            f"delivered={len(self.delivered)}, in_flight={self.in_flight})"
        )
