"""Event-driven NoC: arbitration, forwarding and latency accounting.

Each *directed link* is a single-capacity resource; a packet holds a link
for ``router_latency + flit_count`` cycles (store-and-forward of the whole
packet at one flit per cycle after the router's pipeline delay).  Packets
queue FIFO at contended links -- exactly the "scheduling left to the
routers" behaviour the Legacy baseline exhibits (Sec. V): no notion of
deadlines, so an urgent packet waits behind bulk traffic.

The model is wormhole-coarse (whole-packet granularity) rather than
flit-interleaved; for the latency phenomena the paper's evaluation relies
on (queueing growth with load, hop-count dependence) this is the standard
fidelity/performance trade-off, and :mod:`repro.noc.latency` calibrates
the closed-form model against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.packet import Packet
from repro.noc.routing import route_links
from repro.noc.topology import Coordinate, MeshTopology
from repro.sim.engine import Simulator, Timeout
from repro.sim.resource import Resource

#: Cycles a router needs to process a header before forwarding.
DEFAULT_ROUTER_LATENCY = 3


@dataclass
class PacketRecord:
    """Per-delivered-packet accounting."""

    packet: Packet
    hops: int
    queueing_cycles: float
    transfer_cycles: float

    @property
    def total_latency(self) -> float:
        latency = self.packet.latency
        return latency if latency is not None else 0.0


class NocNetwork:
    """Mesh network executing packet traversals as simulator processes."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[MeshTopology] = None,
        router_latency: int = DEFAULT_ROUTER_LATENCY,
    ):
        if router_latency < 0:
            raise ValueError(f"router latency must be >= 0, got {router_latency}")
        self.sim = sim
        self.topology = topology or MeshTopology()
        self.router_latency = router_latency
        self._links: Dict[Tuple[Coordinate, Coordinate], Resource] = {}
        for link in self.topology.links():
            self._links[link] = Resource(
                sim, capacity=1, name=f"link{link[0]}->{link[1]}"
            )
        self.delivered: List[PacketRecord] = []
        self.in_flight = 0
        self.total_injected = 0

    def link_resource(self, link: Tuple[Coordinate, Coordinate]) -> Resource:
        return self._links[link]

    def inject(
        self,
        packet: Packet,
        on_delivered: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        """Start a packet traversal at the current simulation time."""
        if not self.topology.contains(packet.source) or not self.topology.contains(
            packet.destination
        ):
            raise ValueError(
                f"packet endpoints {packet.source}->{packet.destination} "
                "must lie in the mesh"
            )
        packet.injected_at = self.sim.now
        self.total_injected += 1
        self.in_flight += 1
        self.sim.process(
            self._traverse(packet, on_delivered),
            name=f"packet{packet.packet_id}",
        )

    def _traverse(
        self, packet: Packet, on_delivered: Optional[Callable[[Packet], None]]
    ):
        links = route_links(self.topology, packet.source, packet.destination)
        queueing = 0.0
        transfer = 0.0
        hold_cycles = self.router_latency + packet.flit_count
        for link in links:
            resource = self._links[link]
            wait_start = self.sim.now
            yield from resource.acquire()
            queueing += self.sim.now - wait_start
            yield Timeout(hold_cycles)
            transfer += hold_cycles
            resource.release()
        packet.delivered_at = self.sim.now
        self.in_flight -= 1
        self.delivered.append(
            PacketRecord(
                packet=packet,
                hops=len(links),
                queueing_cycles=queueing,
                transfer_cycles=transfer,
            )
        )
        if on_delivered is not None:
            on_delivered(packet)

    # -- statistics ------------------------------------------------------------

    def mean_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(record.total_latency for record in self.delivered) / len(
            self.delivered
        )

    def max_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return max(record.total_latency for record in self.delivered)

    def mean_queueing(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(record.queueing_cycles for record in self.delivered) / len(
            self.delivered
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NocNetwork({self.topology.width}x{self.topology.height}, "
            f"delivered={len(self.delivered)}, in_flight={self.in_flight})"
        )
