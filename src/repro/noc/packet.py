"""Packets and flits (Sec. II, assumption (ii)).

I/O requests and responses "are encapsulated as packets using the
communication protocol introduced in [Blueshell]": a header flit carrying
routing information followed by 32-bit payload flits.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Payload bytes carried per flit (32-bit links, Blueshell convention).
FLIT_BYTES = 4


class PacketKind(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"


@dataclass(frozen=True)
class Flit:
    """One link-level transfer unit."""

    packet_id: int
    index: int
    is_header: bool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_header else "P"
        return f"Flit({self.packet_id}.{self.index}{kind})"


_packet_ids = itertools.count()


@dataclass
class Packet:
    """A routed message: header flit + ceil(payload/4) payload flits."""

    source: Tuple[int, int]
    destination: Tuple[int, int]
    kind: PacketKind
    payload_bytes: int
    #: Arbitrary reference back to the originating I/O job.
    context: object = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    injected_at: Optional[float] = None
    delivered_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload: {self.payload_bytes}")
        if self.source == self.destination:
            raise ValueError(
                f"packet {self.packet_id}: source equals destination "
                f"{self.source}; local traffic does not enter the NoC"
            )

    @property
    def flit_count(self) -> int:
        """Header flit plus payload flits."""
        payload_flits = (self.payload_bytes + FLIT_BYTES - 1) // FLIT_BYTES
        return 1 + payload_flits

    @property
    def latency(self) -> Optional[float]:
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at

    def flits(self):
        """Materialise the flit sequence (tests and detailed traces)."""
        for index in range(self.flit_count):
            yield Flit(packet_id=self.packet_id, index=index, is_header=index == 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.packet_id} {self.kind.value} "
            f"{self.source}->{self.destination}, {self.payload_bytes}B)"
        )
