"""Rectangular mesh topology.

The evaluation platform is a 5x5 mesh hosting 16 MicroBlaze processors,
memory, I/O peripherals and the hypervisor (Sec. V).  Nodes are addressed
by ``(x, y)`` coordinates; links are bidirectional between 4-neighbours.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

Coordinate = Tuple[int, int]


class MeshTopology:
    """A ``width x height`` mesh with optional named node roles."""

    def __init__(self, width: int = 5, height: int = 5):
        if width < 1 or height < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {width}x{height}")
        self.width = width
        self.height = height
        self._roles: Dict[Coordinate, str] = {}

    # -- structure ---------------------------------------------------------

    def nodes(self) -> Iterator[Coordinate]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def contains(self, node: Coordinate) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbors(self, node: Coordinate) -> List[Coordinate]:
        if not self.contains(node):
            raise ValueError(f"node {node} outside {self.width}x{self.height} mesh")
        x, y = node
        candidates = [(x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)]
        return [candidate for candidate in candidates if self.contains(candidate)]

    def links(self) -> List[Tuple[Coordinate, Coordinate]]:
        """All directed links (both directions listed)."""
        result = []
        for node in self.nodes():
            for neighbor in self.neighbors(node):
                result.append((node, neighbor))
        return result

    def manhattan(self, a: Coordinate, b: Coordinate) -> int:
        if not self.contains(a) or not self.contains(b):
            raise ValueError(f"nodes {a}, {b} must lie in the mesh")
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    # -- roles ---------------------------------------------------------------

    def assign_role(self, node: Coordinate, role: str) -> None:
        """Label a node (e.g. ``"processor0"``, ``"hypervisor"``)."""
        if not self.contains(node):
            raise ValueError(f"node {node} outside {self.width}x{self.height} mesh")
        self._roles[node] = role

    def role_of(self, node: Coordinate) -> str:
        return self._roles.get(node, "")

    def node_with_role(self, role: str) -> Coordinate:
        for node, assigned in self._roles.items():
            if assigned == role:
                return node
        raise KeyError(f"no node with role {role!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshTopology({self.width}x{self.height})"
