"""Closed-form NoC latency model, calibrated against the event network.

Flit-stepping every I/O request of a 100-second case-study trial is
infeasible; the system-level experiments instead draw per-request NoC
delays from this model:

    latency(h, f, rho) = h * (R + f) * (1 + k * rho / (1 - rho))

where ``h`` is the hop count, ``f`` the flit count, ``R`` the router
pipeline latency, ``rho`` the offered link load, and ``k`` a contention
gain.  The ``rho/(1-rho)`` term is the standard M/M/1-shaped queueing
growth; :func:`calibrate_latency_model` fits ``k`` by driving the
event-driven :class:`~repro.noc.network.NocNetwork` at a range of loads
and regressing the observed queueing delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.noc.network import DEFAULT_ROUTER_LATENCY, NocNetwork
from repro.noc.packet import Packet, PacketKind
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator, Timeout
from repro.sim.rng import RandomSource

#: Contention gain obtained from :func:`calibrate_latency_model` with the
#: default mesh/seed; kept as a constant so experiments are reproducible
#: without re-running the calibration (see tests/noc/test_latency.py).
DEFAULT_CONTENTION_GAIN = 0.08

#: Load is clamped below 1 to keep the queueing term finite; beyond this
#: the network is saturated and latencies are effectively unbounded.
MAX_MODEL_LOAD = 0.95


@dataclass
class NocLatencyModel:
    """Sampleable closed-form latency model."""

    router_latency: int = DEFAULT_ROUTER_LATENCY
    contention_gain: float = DEFAULT_CONTENTION_GAIN
    #: Relative jitter amplitude at full load (uniform, load-scaled).
    jitter_amplitude: float = 0.5

    def mean_latency(self, hops: int, flits: int, load: float) -> float:
        """Expected traversal cycles at the given offered load."""
        if hops < 0 or flits < 1:
            raise ValueError(f"invalid packet shape: hops={hops}, flits={flits}")
        if load < 0:
            raise ValueError(f"negative load: {load}")
        if hops == 0:
            return 0.0
        rho = min(load, MAX_MODEL_LOAD)
        base = hops * (self.router_latency + flits)
        return base * (1.0 + self.contention_gain * rho / (1.0 - rho))

    def sample(
        self, hops: int, flits: int, load: float, rng: RandomSource
    ) -> float:
        """One latency draw: mean plus load-scaled uniform jitter."""
        mean = self.mean_latency(hops, flits, load)
        if hops == 0:
            return 0.0
        rho = min(max(load, 0.0), MAX_MODEL_LOAD)
        amplitude = self.jitter_amplitude * rho
        factor = 1.0 + rng.uniform(-amplitude, amplitude)
        return mean * max(factor, 0.1)

    def worst_case(self, hops: int, flits: int, load: float) -> float:
        """Upper envelope of :meth:`sample` at this load."""
        mean = self.mean_latency(hops, flits, load)
        rho = min(max(load, 0.0), MAX_MODEL_LOAD)
        return mean * (1.0 + self.jitter_amplitude * rho)


def calibrate_latency_model(
    seed: int = 7,
    loads: Optional[List[float]] = None,
    packets_per_load: int = 300,
    payload_bytes: int = 32,
    mesh: Optional[MeshTopology] = None,
) -> NocLatencyModel:
    """Fit the contention gain against the event-driven network.

    For each offered load, random source/destination pairs inject
    packets with exponential inter-arrival times scaled so the busiest
    link sees approximately that load; the observed mean latency
    inflation over the zero-load baseline is regressed (least squares
    through the origin) onto ``rho / (1 - rho)``.
    """
    loads = loads or [0.1, 0.3, 0.5, 0.7]
    mesh = mesh or MeshTopology()
    rng = RandomSource(seed, "noc-calibration")
    xs: List[float] = []
    ys: List[float] = []
    for load in loads:
        if not 0 < load < 1:
            raise ValueError(f"calibration loads must lie in (0, 1), got {load}")
        inflation = _measure_inflation(
            mesh, load, packets_per_load, payload_bytes, rng.spawn(f"load{load}")
        )
        xs.append(load / (1.0 - load))
        ys.append(inflation)
    numerator = sum(x * y for x, y in zip(xs, ys))
    denominator = sum(x * x for x in xs)
    gain = numerator / denominator if denominator > 0 else DEFAULT_CONTENTION_GAIN
    return NocLatencyModel(contention_gain=max(gain, 0.0))


def _measure_inflation(
    mesh: MeshTopology,
    load: float,
    packet_count: int,
    payload_bytes: int,
    rng: RandomSource,
) -> float:
    """Mean latency inflation ``observed/base - 1`` at one load level."""
    sim = Simulator()
    network = NocNetwork(sim, topology=mesh)
    flits = Packet(
        source=(0, 0), destination=(1, 0), kind=PacketKind.REQUEST,
        payload_bytes=payload_bytes,
    ).flit_count
    hold = network.router_latency + flits
    # Hotspot traffic: every processor sends toward the I/O corner, the
    # paper's actual pattern.  The last link into the hotspot then sees
    # exactly `rate * hold` load, so the inter-arrival gap targeting
    # `load` is `hold / load` on that bottleneck.
    mean_gap = hold / load
    hotspot = (mesh.width - 1, mesh.height - 1)
    sources = [node for node in mesh.nodes() if node != hotspot]

    def injector():
        for _ in range(packet_count):
            yield Timeout(max(1.0, rng.expovariate(1.0 / mean_gap)))
            source = rng.choice(sources)
            network.inject(
                Packet(
                    source=source,
                    destination=hotspot,
                    kind=PacketKind.REQUEST,
                    payload_bytes=payload_bytes,
                )
            )

    sim.process(injector(), name="calibration-injector")
    sim.run()
    base: Dict[int, float] = {}
    inflations: List[float] = []
    for record in network.delivered:
        ideal = record.hops * hold
        if ideal <= 0:
            continue
        base[record.hops] = ideal
        inflations.append(record.total_latency / ideal - 1.0)
    if not inflations:
        return 0.0
    return max(0.0, math.fsum(inflations) / len(inflations))
