"""Dimension-ordered (XY) routing.

XY routing is the standard deadlock-free choice on predictability-focused
meshes: packets first travel along X to the destination column, then
along Y.  Deterministic paths are what make per-flow interference
analysable.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.topology import Coordinate, MeshTopology


def xy_next_hop(current: Coordinate, destination: Coordinate) -> Coordinate:
    """The next node on the XY route (current must differ from dest)."""
    if current == destination:
        raise ValueError(f"already at destination {destination}")
    x, y = current
    dx, dy = destination
    if x != dx:
        return (x + (1 if dx > x else -1), y)
    return (x, y + (1 if dy > y else -1))


def xy_route(
    topology: MeshTopology, source: Coordinate, destination: Coordinate
) -> List[Coordinate]:
    """Full node sequence from source to destination, inclusive."""
    if not topology.contains(source) or not topology.contains(destination):
        raise ValueError(
            f"route endpoints {source}->{destination} must lie in the mesh"
        )
    route = [source]
    current = source
    while current != destination:
        current = xy_next_hop(current, destination)
        route.append(current)
    return route


def route_links(
    topology: MeshTopology, source: Coordinate, destination: Coordinate
) -> List[Tuple[Coordinate, Coordinate]]:
    """The directed links an XY-routed packet traverses."""
    route = xy_route(topology, source, destination)
    return list(zip(route[:-1], route[1:]))
