"""Worst-case NoC latency analysis for XY-routed flows.

The platform assumption (i) is a *predictability-focused* NoC: with
deterministic XY routing and FIFO link arbitration, a flow's worst-case
traversal latency is boundable from the set of flows sharing its links.
This module implements the classic link-contention bound:

    WCL(flow) = sum over links l of route(flow):
                    hold(flow) + sum_{g != flow, l in route(g)} hold(g)

i.e. on every link the packet may wait behind one in-flight packet of
every competing flow crossing that link (single-packet-per-flow
in-flight assumption, which the slot-paced hypervisor traffic obeys).
The bound is validated against the event-driven network in the tests:
observed latency never exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.noc.network import DEFAULT_ROUTER_LATENCY
from repro.noc.packet import FLIT_BYTES
from repro.noc.routing import route_links
from repro.noc.topology import Coordinate, MeshTopology

Link = Tuple[Coordinate, Coordinate]


@dataclass(frozen=True)
class Flow:
    """A periodic packet stream across the mesh."""

    name: str
    source: Coordinate
    destination: Coordinate
    payload_bytes: int

    @property
    def flit_count(self) -> int:
        return 1 + (self.payload_bytes + FLIT_BYTES - 1) // FLIT_BYTES

    def hold_cycles(self, router_latency: int = DEFAULT_ROUTER_LATENCY) -> int:
        """Cycles this flow's packet occupies one link."""
        return router_latency + self.flit_count


@dataclass
class FlowLatencyBound:
    """WCL verdict for one flow."""

    flow: Flow
    hops: int
    base_cycles: int
    interference_cycles: int
    #: names of flows contributing interference, per link index.
    interferers: List[Set[str]] = field(default_factory=list)

    @property
    def worst_case_cycles(self) -> int:
        return self.base_cycles + self.interference_cycles


class NocContentionAnalysis:
    """Static link-contention analysis over a set of XY flows."""

    def __init__(
        self,
        topology: Optional[MeshTopology] = None,
        router_latency: int = DEFAULT_ROUTER_LATENCY,
    ):
        if router_latency < 0:
            raise ValueError(f"router latency must be >= 0, got {router_latency}")
        self.topology = topology or MeshTopology()
        self.router_latency = router_latency
        self._flows: Dict[str, Flow] = {}
        self._routes: Dict[str, List[Link]] = {}

    def add_flow(self, flow: Flow) -> None:
        if flow.name in self._flows:
            raise ValueError(f"duplicate flow {flow.name!r}")
        route = route_links(self.topology, flow.source, flow.destination)
        self._flows[flow.name] = flow
        self._routes[flow.name] = route

    def flows(self) -> List[Flow]:
        return list(self._flows.values())

    def link_load(self) -> Dict[Link, List[str]]:
        """Which flows cross each link (the interference map)."""
        usage: Dict[Link, List[str]] = {}
        for name, route in self._routes.items():
            for link in route:
                usage.setdefault(link, []).append(name)
        return usage

    def bottleneck_link(self) -> Optional[Tuple[Link, List[str]]]:
        """The most-shared link and its flows (None with no flows)."""
        usage = self.link_load()
        if not usage:
            return None
        link = max(usage, key=lambda candidate: (len(usage[candidate]), candidate))
        return link, sorted(usage[link])

    def latency_bound(self, flow_name: str) -> FlowLatencyBound:
        """WCL bound for one flow against all registered competitors."""
        try:
            flow = self._flows[flow_name]
        except KeyError:
            raise KeyError(
                f"unknown flow {flow_name!r}; registered: "
                f"{sorted(self._flows)}"
            ) from None
        route = self._routes[flow_name]
        hold = flow.hold_cycles(self.router_latency)
        base = hold * len(route)
        interference = 0
        interferers: List[Set[str]] = []
        for link in route:
            sharing = {
                other_name
                for other_name, other_route in self._routes.items()
                if other_name != flow_name and link in other_route
            }
            interferers.append(sharing)
            # Sorted so the accumulation order (and thus the exact float
            # value, if hold costs ever become fractional) is stable.
            for other_name in sorted(sharing):
                interference += self._flows[other_name].hold_cycles(
                    self.router_latency
                )
        return FlowLatencyBound(
            flow=flow,
            hops=len(route),
            base_cycles=base,
            interference_cycles=interference,
            interferers=interferers,
        )

    def all_bounds(self) -> Dict[str, FlowLatencyBound]:
        return {name: self.latency_bound(name) for name in self._flows}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NocContentionAnalysis(flows={len(self._flows)}, "
            f"mesh={self.topology.width}x{self.topology.height})"
        )
