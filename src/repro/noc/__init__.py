"""Network-on-Chip substrate (Sec. II, assumption (i)).

The paper's platform is a predictability-focused 5x5 mesh NoC (Blueshell)
carrying I/O requests/responses as packets.  This package provides:

* :mod:`repro.noc.packet` -- flit/packet model following the Blueshell
  convention (one header flit + 32-bit payload flits),
* :mod:`repro.noc.topology` -- rectangular mesh topology,
* :mod:`repro.noc.routing` -- dimension-ordered (XY) routing,
* :mod:`repro.noc.network` -- an event-driven wormhole-style network:
  per-output-port arbitration, per-hop forwarding latency, full
  per-packet latency accounting,
* :mod:`repro.noc.latency` -- a calibrated closed-form contention model
  fitted against the event-driven network, used by the system-level
  experiments where flit-stepping every I/O request would dominate the
  run time.
"""

from repro.noc.packet import Flit, Packet, PacketKind
from repro.noc.topology import MeshTopology
from repro.noc.routing import xy_route
from repro.noc.network import NocNetwork, PacketRecord
from repro.noc.latency import NocLatencyModel, calibrate_latency_model
from repro.noc.analysis import Flow, FlowLatencyBound, NocContentionAnalysis

__all__ = [
    "Flit",
    "Flow",
    "FlowLatencyBound",
    "NocContentionAnalysis",
    "MeshTopology",
    "NocLatencyModel",
    "NocNetwork",
    "Packet",
    "PacketKind",
    "PacketRecord",
    "calibrate_latency_model",
    "xy_route",
]
