"""Latency / response-time statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def jitter(self) -> float:
        """Peak-to-peak variation -- the predictability headline number."""
        return self.maximum - self.minimum

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile over pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = fraction * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return float(sorted_values[low] * (1 - weight) + sorted_values[high] * weight)


def summarize(values: Iterable[float]) -> LatencyStats:
    """Compute :class:`LatencyStats` for a sample (must be non-empty)."""
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    mean = math.fsum(data) / count
    if count > 1:
        variance = math.fsum((v - mean) ** 2 for v in data) / (count - 1)
    else:
        variance = 0.0
    return LatencyStats(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
        p99=percentile(data, 0.99),
    )
