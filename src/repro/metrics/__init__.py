"""Metrics: success ratio, throughput and latency statistics (Sec. V-C).

* *success ratio* -- "the percentage of trials that executed
  successfully (i.e., without deadline miss of any safety and function
  task), under a specified target utilization";
* *I/O throughput* -- "the average I/O performance of each examined
  system";
* latency statistics -- response-time distributions used by the
  predictability discussion and the tests;
* back-pressure accounting -- per-pool rejection/drop counters
  surfacing the overload and containment behaviour
  (:mod:`repro.metrics.backpressure`).
"""

from repro.metrics.backpressure import BackPressureReport, PoolPressure
from repro.metrics.stats import LatencyStats, summarize
from repro.metrics.success import SweepPoint, success_ratio, sweep_table

__all__ = [
    "BackPressureReport",
    "LatencyStats",
    "PoolPressure",
    "SweepPoint",
    "success_ratio",
    "summarize",
    "sweep_table",
]
