"""Metrics: success ratio, throughput and latency statistics (Sec. V-C).

* *success ratio* -- "the percentage of trials that executed
  successfully (i.e., without deadline miss of any safety and function
  task), under a specified target utilization";
* *I/O throughput* -- "the average I/O performance of each examined
  system";
* latency statistics -- response-time distributions used by the
  predictability discussion and the tests.
"""

from repro.metrics.stats import LatencyStats, summarize
from repro.metrics.success import SweepPoint, success_ratio, sweep_table

__all__ = [
    "LatencyStats",
    "SweepPoint",
    "success_ratio",
    "summarize",
    "sweep_table",
]
