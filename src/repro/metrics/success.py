"""Success-ratio and throughput aggregation across trials."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.baselines.base import TrialResult


def success_ratio(results: Iterable[TrialResult]) -> float:
    """Fraction of trials without a safety/function deadline miss."""
    results = list(results)
    if not results:
        raise ValueError("success ratio of zero trials")
    return sum(1 for result in results if result.success) / len(results)


@dataclass
class SweepPoint:
    """Aggregated outcome of one (system, utilization) sweep cell."""

    system: str
    target_utilization: float
    trials: int
    success_ratio: float
    mean_throughput_mbps: float
    min_throughput_mbps: float
    max_throughput_mbps: float
    mean_miss_ratio: float
    #: Sample standard deviation of per-trial throughput -- the paper's
    #: "experimental variance" comparison (Obs 3).
    stdev_throughput_mbps: float = 0.0

    @property
    def throughput_spread(self) -> float:
        """Peak-to-peak throughput variation across trials."""
        return self.max_throughput_mbps - self.min_throughput_mbps

    def as_row(self) -> Dict[str, float]:
        return {
            "system": self.system,
            "utilization": self.target_utilization,
            "trials": self.trials,
            "success_ratio": self.success_ratio,
            "throughput_mbps": self.mean_throughput_mbps,
            "throughput_stdev": self.stdev_throughput_mbps,
            "miss_ratio": self.mean_miss_ratio,
        }


def aggregate(results: List[TrialResult]) -> SweepPoint:
    """Collapse trials of one sweep cell into a :class:`SweepPoint`."""
    if not results:
        raise ValueError("cannot aggregate zero trials")
    system = results[0].system
    utilization = results[0].target_utilization
    for result in results:
        if result.system != system:
            raise ValueError(
                f"mixed systems in one cell: {system!r} vs {result.system!r}"
            )
    throughputs = [result.throughput_mbps for result in results]
    miss_ratios = [
        result.total_missed / result.total_completed
        if result.total_completed
        else 0.0
        for result in results
    ]
    mean_throughput = sum(throughputs) / len(throughputs)
    if len(throughputs) > 1:
        variance = sum(
            (value - mean_throughput) ** 2 for value in throughputs
        ) / (len(throughputs) - 1)
        stdev = variance**0.5
    else:
        stdev = 0.0
    return SweepPoint(
        system=system,
        target_utilization=utilization,
        trials=len(results),
        success_ratio=success_ratio(results),
        mean_throughput_mbps=mean_throughput,
        min_throughput_mbps=min(throughputs),
        max_throughput_mbps=max(throughputs),
        mean_miss_ratio=sum(miss_ratios) / len(miss_ratios),
        stdev_throughput_mbps=stdev,
    )


def sweep_table(
    cells: Dict[str, Dict[float, List[TrialResult]]]
) -> List[SweepPoint]:
    """Aggregate a {system: {utilization: trials}} sweep into rows."""
    rows: List[SweepPoint] = []
    for system in sorted(cells):
        for utilization in sorted(cells[system]):
            rows.append(aggregate(cells[system][utilization]))
    return rows
