"""Per-pool back-pressure accounting.

The overload/containment story is only auditable if rejection pressure
is *observable*: each I/O pool counts accepted, rejected and dropped
jobs plus its consecutive-rejection streak, and this module rolls those
counters up into one immutable report the experiments render and the
tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple

from repro.core.iopool import IOPool
from repro.core.rchannel import RChannel


@dataclass(frozen=True)
class PoolPressure:
    """Snapshot of one I/O pool's back-pressure counters."""

    vm_id: int
    capacity: int
    occupancy: int
    peak_occupancy: int
    submitted: int
    rejected: int
    dropped: int
    completed: int
    max_reject_streak: int

    @classmethod
    def from_pool(cls, pool: IOPool) -> "PoolPressure":
        return cls(
            vm_id=pool.vm_id,
            capacity=pool.queue.capacity,
            occupancy=len(pool.queue),
            peak_occupancy=pool.queue.peak_occupancy,
            submitted=pool.submitted,
            rejected=pool.rejected,
            dropped=pool.dropped,
            completed=pool.completed,
            max_reject_streak=pool.max_reject_streak,
        )

    @property
    def offered(self) -> int:
        """Submissions the VM attempted (accepted + rejected)."""
        return self.submitted + self.rejected

    @property
    def rejection_ratio(self) -> float:
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.rejected / offered

    def as_dict(self) -> Dict[str, Any]:
        return {
            "vm_id": self.vm_id,
            "capacity": self.capacity,
            "occupancy": self.occupancy,
            "peak_occupancy": self.peak_occupancy,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "completed": self.completed,
            "max_reject_streak": self.max_reject_streak,
            "rejection_ratio": self.rejection_ratio,
        }


@dataclass(frozen=True)
class BackPressureReport:
    """All pools' pressure, ordered by VM id."""

    pools: Tuple[PoolPressure, ...]

    @classmethod
    def from_pools(cls, pools: Iterable[IOPool]) -> "BackPressureReport":
        return cls(
            pools=tuple(
                sorted(
                    (PoolPressure.from_pool(pool) for pool in pools),
                    key=lambda pressure: pressure.vm_id,
                )
            )
        )

    @classmethod
    def from_rchannel(cls, channel: RChannel) -> "BackPressureReport":
        return cls.from_pools(channel.pools.values())

    def for_vm(self, vm_id: int) -> PoolPressure:
        for pressure in self.pools:
            if pressure.vm_id == vm_id:
                return pressure
        raise KeyError(f"no pool pressure recorded for VM {vm_id}")

    @property
    def total_rejected(self) -> int:
        return sum(pressure.rejected for pressure in self.pools)

    @property
    def total_dropped(self) -> int:
        return sum(pressure.dropped for pressure in self.pools)

    @property
    def total_submitted(self) -> int:
        return sum(pressure.submitted for pressure in self.pools)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "pools": [pressure.as_dict() for pressure in self.pools],
            "total_submitted": self.total_submitted,
            "total_rejected": self.total_rejected,
            "total_dropped": self.total_dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BackPressureReport(pools={len(self.pools)}, "
            f"rejected={self.total_rejected}, dropped={self.total_dropped})"
        )
