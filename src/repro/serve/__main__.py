"""CLI for the admission service.

Subcommands::

    python -m repro.serve serve  --system system.json [--port 0 ...]
    python -m repro.serve client --port 40123 --op ping
    python -m repro.serve client --port 40123 --script burst.json
    python -m repro.serve bench  --shards 1,2 --output BENCH_admission.json

``serve`` prints one machine-readable ``LISTENING <host> <port>`` line
once the socket is bound (the CI smoke job reads it to find the
ephemeral port), then runs until a ``shutdown`` request arrives.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Optional

from repro.serve.bench import (
    DEFAULT_NUM_VMS,
    DEFAULT_OPS_PER_VM,
    DEFAULT_SEED,
    run_admission_bench,
    write_admission_bench,
)
from repro.serve.client import ServeClient, load_script, run_script
from repro.serve.protocol import ProtocolError
from repro.serve.server import AdmissionServer, ServeConfig, load_system_file
from repro.tasks.serialization import canonical_json


def _cmd_serve(args: argparse.Namespace) -> int:
    payload = load_system_file(args.system)
    config = ServeConfig.from_system_payload(
        payload,
        host=args.host,
        port=args.port,
        shards=args.shards,
        backend=args.backend,
        epoch_interval=args.epoch_interval,
        queue_limit=args.queue_limit,
    )

    async def _main() -> None:
        server = AdmissionServer(config)
        await server.start()
        print(f"LISTENING {config.host} {server.port}", flush=True)
        await server.serve_until_shutdown()

    asyncio.run(_main())
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    if (args.op is None) == (args.script is None):
        print(
            "client: exactly one of --op / --script is required",
            file=sys.stderr,
        )
        return 2
    if args.script is not None:
        requests = load_script(args.script)
        responses = run_script(args.host, args.port, requests)
        for response in responses:
            print(canonical_json(response))
        return 0 if all(r.get("ok") for r in responses) else 1
    message: Dict[str, Any] = {"op": args.op}
    if args.data:
        extra = json.loads(args.data)
        if not isinstance(extra, dict):
            print("client: --data must be a JSON object", file=sys.stderr)
            return 2
        message.update(extra)
    with ServeClient(args.host, args.port) as client:
        response = client.request(message)
    if args.op == "log" and response.get("ok"):
        # Print the raw decision-log lines: the byte-comparable artifact.
        for line in response["log"]:
            print(line)
        return 0
    print(canonical_json(response))
    return 0 if response.get("ok") else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    shard_counts = [int(part) for part in args.shards.split(",") if part]
    record = run_admission_bench(
        shard_counts,
        repeats=args.repeats,
        num_vms=args.num_vms,
        ops_per_vm=args.ops_per_vm,
        seed=args.seed,
        backend=args.backend,
    )
    for run in record["runs"]:
        print(
            f"shards={run['shards']} requests={run['requests']} "
            f"rate={run['requests_per_sec']:.0f}/s "
            f"log={run['log_entries']} digest={run['log_digest'][:12]}"
        )
    print(f"deterministic={record['deterministic']}")
    if args.output:
        write_admission_bench(record, args.output)
        print(f"wrote {args.output}")
    if not record["deterministic"]:
        print(
            "bench: decision log digests diverged across runs",
            file=sys.stderr,
        )
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Admission service: server, client and benchmark.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run an admission server")
    serve.add_argument("--system", required=True, help="system JSON file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument(
        "--backend", choices=("process", "inline"), default="process"
    )
    serve.add_argument("--epoch-interval", type=float, default=0.01)
    serve.add_argument("--queue-limit", type=int, default=64)
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser("client", help="drive a running server")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--op", help="single operation to send")
    client.add_argument(
        "--data", help="JSON object merged into the single request"
    )
    client.add_argument("--script", help="JSON file with a request list")
    client.set_defaults(func=_cmd_client)

    bench = sub.add_parser("bench", help="throughput/determinism benchmark")
    bench.add_argument("--shards", default="1,2", help="comma list, e.g. 1,2")
    bench.add_argument("--repeats", type=int, default=2)
    bench.add_argument("--num-vms", type=int, default=DEFAULT_NUM_VMS)
    bench.add_argument("--ops-per-vm", type=int, default=DEFAULT_OPS_PER_VM)
    bench.add_argument("--seed", type=int, default=DEFAULT_SEED)
    bench.add_argument(
        "--backend", choices=("process", "inline"), default="process"
    )
    bench.add_argument("--output", help="write BENCH_admission.json here")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except (ProtocolError, ConnectionError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
