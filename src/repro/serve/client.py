"""Synchronous client for the admission service.

One TCP connection speaking the newline-JSON framing
(:mod:`repro.serve.protocol`).  Requests on a single connection are
answered in order, so a client that owns one VM's stream and stamps
increasing ``seq`` values gets exactly the FIFO semantics the decision
log's determinism contract requires.

The module also hosts :func:`run_script`, the engine behind
``python -m repro.serve client --script``: it executes a JSON list of
requests against a live server and returns every response, which is
what the CI smoke job drives its byte-compared bursts with.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.protocol import ProtocolError, decode_message, encode_message


class ServeClient:
    """One newline-JSON connection to a running admission server."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_seq = 0

    # -- plumbing -----------------------------------------------------------

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request dict; block for its response.

        A missing ``seq`` is stamped from the connection-local counter
        (monotonically increasing, hence log-order preserving).
        """
        if "seq" not in message:
            message = dict(message)
            message["seq"] = self._next_seq
        self._next_seq = max(self._next_seq, int(message["seq"])) + 1
        self._sock.sendall(encode_message(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- op helpers ---------------------------------------------------------

    def admit(
        self, task: Dict[str, Any], seq: Optional[int] = None
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "admit", "task": task}
        if seq is not None:
            message["seq"] = seq
        return self.request(message)

    def withdraw(
        self, vm_id: int, task_name: str, seq: Optional[int] = None
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "op": "withdraw",
            "vm_id": vm_id,
            "task_name": task_name,
        }
        if seq is not None:
            message["seq"] = seq
        return self.request(message)

    def analyze(
        self,
        tasks: Sequence[Dict[str, Any]] = (),
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "analyze", "tasks": list(tasks)}
        if seq is not None:
            message["seq"] = seq
        return self.request(message)

    def snapshot(self) -> Dict[str, Any]:
        return self.request({"op": "snapshot"})

    def rebalance(self, shards: int) -> Dict[str, Any]:
        return self.request({"op": "rebalance", "shards": shards})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def log(self) -> List[str]:
        """The server's decision log as canonical-JSON lines (seq order)."""
        response = self.request({"op": "log"})
        if not response.get("ok"):
            raise ProtocolError(f"log request failed: {response!r}")
        return [str(line) for line in response["log"]]

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})


def run_script(
    host: str, port: int, requests: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Execute a request list over one connection; return all responses.

    Requests without an explicit ``seq`` get connection-local stamps, so
    a fixed script always produces the same decision-log bytes.
    """
    responses: List[Dict[str, Any]] = []
    with ServeClient(host, port) as client:
        for message in requests:
            if not isinstance(message, dict):
                raise ProtocolError(
                    f"script entries must be objects, got {message!r}"
                )
            responses.append(client.request(message))
    return responses


def load_script(path: str) -> List[Dict[str, Any]]:
    """Read a JSON request list (the ``--script`` file format)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise ValueError("script file must hold a JSON list of requests")
    return payload
