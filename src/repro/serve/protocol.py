"""Wire protocol of the admission service.

Two framings share one message vocabulary:

* **newline-JSON** (the native framing): each request and response is
  one canonical-JSON object per line over a TCP stream.  Canonical
  means sorted keys and compact separators
  (:func:`repro.tasks.serialization.canonical_json`), so equal
  responses are byte-identical -- the decision log the CI smoke job
  byte-compares is built from exactly these strings.
* **HTTP/1.1**: ``POST /v1/<op>`` with the same JSON object as the
  body (``GET`` is allowed for the read-only ops).  One request per
  connection (``Connection: close``); the response body is the same
  canonical JSON a newline-JSON client would receive.

Every request carries ``op`` plus a client-chosen ``seq`` (a
non-negative integer).  ``seq`` orders the service's decision log:
per-VM streams must be submitted in increasing ``seq`` on one
connection, and the log dump is sorted by ``seq`` -- which is what
makes the log independent of shard count and connection interleaving.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.analysis.gsched_test import GSchedResult
from repro.tasks.serialization import canonical_json

#: Version stamp on every message; bumped on incompatible change.
PROTOCOL_VERSION = 1

#: Every operation the service understands.  ``admit``/``withdraw``
#: mutate one VM's shard; ``analyze`` joins the next epoch batch;
#: the rest are control-plane.
OPS = (
    "admit",
    "withdraw",
    "analyze",
    "snapshot",
    "rebalance",
    "stats",
    "log",
    "ping",
    "shutdown",
)

#: Ops that read-only HTTP GET may invoke.
GET_OPS = ("stats", "log", "snapshot", "ping")

#: Fields each op requires beyond ``op`` and ``seq``.
_REQUIRED_FIELDS = {
    "admit": ("task",),
    "withdraw": ("vm_id", "task_name"),
    "analyze": (),
    "snapshot": (),
    "rebalance": ("shards",),
    "stats": (),
    "log": (),
    "ping": (),
    "shutdown": (),
}


class ProtocolError(ValueError):
    """A malformed request; maps to a structured error response."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One canonical-JSON line, newline-terminated."""
    return (canonical_json(message) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one newline-JSON frame into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check op/seq/fields; returns the message or raises ProtocolError."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    seq = message.get("seq", 0)
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ProtocolError(f"seq must be a non-negative integer, got {seq!r}")
    message["seq"] = seq
    for field in _REQUIRED_FIELDS[op]:
        if field not in message:
            raise ProtocolError(f"op {op!r} requires field {field!r}")
    return message


def ok_response(seq: int, **payload: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"v": PROTOCOL_VERSION, "seq": seq, "ok": True}
    response.update(payload)
    return response


def error_response(
    seq: int, kind: str, message: str, **details: Any
) -> Dict[str, Any]:
    """A structured rejection: typed ``kind``, human ``message``, data.

    ``kind`` values the service emits: ``protocol`` (malformed
    request), ``configuration`` (Theorem-2 server-set failure, with
    ``failing_t`` and ``servers``), ``unknown_vm``, ``unknown_task``,
    ``shedding`` (back-pressure), ``quarantined`` (DegradationPolicy
    verdict), ``internal``.
    """
    error: Dict[str, Any] = {"kind": kind, "message": message}
    error.update(details)
    return {"v": PROTOCOL_VERSION, "seq": seq, "ok": False, "error": error}


def gsched_result_to_dict(result: Optional[GSchedResult]) -> Optional[Dict[str, Any]]:
    """JSON-safe form of a Theorem-2 result (``None`` passes through)."""
    if result is None:
        return None
    return {
        "schedulable": result.schedulable,
        "horizon": result.horizon,
        "slack": result.slack,
        "failing_t": result.failing_t,
        "failing_demand": result.failing_demand,
        "failing_supply": result.failing_supply,
        "method": result.method,
        "servers": [list(pair) for pair in result.servers],
    }


# -- HTTP adaptation ---------------------------------------------------------

_HTTP_METHODS = (b"POST", b"GET", b"PUT", b"HEAD", b"DELETE", b"OPTIONS", b"PATCH")


def looks_like_http(first_line: bytes) -> bool:
    """Frame sniffing: HTTP request lines start with a method token."""
    return any(first_line.startswith(method + b" ") for method in _HTTP_METHODS)


def parse_http_request_line(line: bytes) -> Tuple[str, str]:
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed HTTP request line: {line!r}")
    return parts[0], parts[1]


def http_path_to_op(method: str, path: str) -> str:
    """Map ``POST /v1/<op>`` (or GET for read-only ops) to an op name."""
    prefix = "/v1/"
    if not path.startswith(prefix):
        raise ProtocolError(f"unknown path {path!r}; expected {prefix}<op>")
    op = path[len(prefix):].strip("/")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} in path {path!r}")
    if method == "GET":
        if op not in GET_OPS:
            raise ProtocolError(f"op {op!r} requires POST")
    elif method != "POST":
        raise ProtocolError(f"unsupported method {method!r}")
    return op


def format_http_response(body: Dict[str, Any], status: str = "200 OK") -> bytes:
    """Minimal HTTP/1.1 response carrying one canonical-JSON body."""
    payload = canonical_json(body).encode("utf-8")
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + payload


def http_status_for(response: Dict[str, Any]) -> str:
    """HTTP status line matching a service response object."""
    if response.get("ok"):
        return "200 OK"
    kind = response.get("error", {}).get("kind", "internal")
    return {
        "protocol": "400 Bad Request",
        "unknown_vm": "404 Not Found",
        "unknown_task": "404 Not Found",
        "configuration": "409 Conflict",
        "shedding": "503 Service Unavailable",
        "quarantined": "503 Service Unavailable",
    }.get(kind, "500 Internal Server Error")
