"""Sharded admission-controller workers.

The service partitions the system's VMs over ``N`` shards; each shard
owns one :class:`~repro.core.admission.AdmissionController` restricted
to its VM group.  Per-VM Theorem-4 admission only reads that VM's
admitted set and server, so shards never need to communicate -- and the
decision stream of any single VM is identical for every shard count
(the property the bench byte-compares).

Dropping servers from a Theorem-2-feasible set keeps it feasible (the
global demand is a sum of non-negative per-server terms), so each
shard's subset controller always constructs once the *full* server set
has been validated by the service front-end.

Two backends share the :class:`AdmissionShard` logic:

* ``"inline"`` -- the shard lives in the server process (tests, and
  platforms without ``fork``);
* ``"process"`` -- the shard runs in a ``multiprocessing`` worker
  connected over a pipe, built either fresh from a
  :class:`ShardConfig` or warm from a
  :class:`~repro.core.admission.ControllerSnapshot` payload.

Warm restarts and rebalancing round-trip through snapshots:
:meth:`ShardPool.snapshot` merges the per-shard snapshots into one
full-system image, and :func:`partition_snapshot` splits such an image
back into per-shard warm-start payloads for any new shard count.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.admission import (
    AdmissionController,
    ControllerSnapshot,
    decision_to_dict,
)
from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.tasks.serialization import task_from_dict, task_to_dict


def partition_vms(vm_ids: Sequence[int], num_shards: int) -> List[List[int]]:
    """Deterministic round-robin split of the sorted VM ids.

    Shard ``i`` owns ``sorted(vm_ids)[i::num_shards]``; every shard
    count yields the same per-VM assignment function given the same VM
    set, so rebalancing is a pure repartition of snapshots.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    ordered = sorted(vm_ids)
    return [ordered[index::num_shards] for index in range(num_shards)]


@dataclass
class ShardConfig:
    """Everything one shard needs to build its subset controller."""

    table_pattern: List[int]
    servers: List[Tuple[int, int, int]]
    incremental: bool = True
    max_decisions: Optional[int] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "table_pattern": list(self.table_pattern),
            "servers": [list(entry) for entry in self.servers],
            "incremental": self.incremental,
            "max_decisions": self.max_decisions,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ShardConfig":
        max_decisions = payload["max_decisions"]
        return cls(
            table_pattern=[int(bit) for bit in payload["table_pattern"]],
            servers=[
                (int(entry[0]), int(entry[1]), int(entry[2]))
                for entry in payload["servers"]
            ],
            incremental=bool(payload["incremental"]),
            max_decisions=None if max_decisions is None else int(max_decisions),
        )


class AdmissionShard:
    """One VM group's controller plus its request handler.

    ``handle`` speaks dicts in, dicts out (the pipe wire form); the
    server's dispatcher owns protocol framing and sequencing.
    """

    def __init__(
        self,
        config: Optional[ShardConfig] = None,
        snapshot: Optional[ControllerSnapshot] = None,
    ) -> None:
        if (config is None) == (snapshot is None):
            raise ValueError("exactly one of config/snapshot must be given")
        if snapshot is not None:
            self.controller = AdmissionController.restore(snapshot)
        else:
            assert config is not None
            self.controller = AdmissionController(
                TimeSlotTable.from_pattern(config.table_pattern),
                [
                    ServerSpec(vm_id, pi, theta)
                    for vm_id, pi, theta in config.servers
                ],
                incremental=config.incremental,
                max_decisions=config.max_decisions,
            )

    @property
    def vm_ids(self) -> List[int]:
        return sorted(self.controller._servers)

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message["op"]
        if op == "admit":
            return self._admit(message)
        if op == "withdraw":
            return self._withdraw(message)
        if op == "population":
            return self._population()
        if op == "snapshot":
            return {"ok": True, "snapshot": self.controller.snapshot().to_payload()}
        if op == "counters":
            return {
                "ok": True,
                "counters": {
                    "admitted_count": self.controller.admitted_count,
                    "rejected_count": self.controller.rejected_count,
                    "dropped_decisions": self.controller.dropped_decisions,
                    "retained_decisions": len(self.controller.decisions),
                },
            }
        if op == "ping":
            return {"ok": True}
        return {
            "ok": False,
            "error": {"kind": "internal", "message": f"unknown shard op {op!r}"},
        }

    def _admit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            task = task_from_dict(message["task"])
        except (ValueError, TypeError) as exc:
            return {
                "ok": False,
                "error": {"kind": "protocol", "message": str(exc)},
            }
        decision = self.controller.try_admit(task)
        return {"ok": True, "decision": decision_to_dict(decision)}

    def _withdraw(self, message: Dict[str, Any]) -> Dict[str, Any]:
        vm_id = int(message["vm_id"])
        task_name = str(message["task_name"])
        if vm_id not in self.controller._servers:
            return {
                "ok": False,
                "error": {
                    "kind": "unknown_vm",
                    "message": f"no server configured for VM {vm_id}",
                    "vm_id": vm_id,
                },
            }
        try:
            removed = self.controller.withdraw(vm_id, task_name)
        except KeyError:
            return {
                "ok": False,
                "error": {
                    "kind": "unknown_task",
                    "message": (
                        f"no admitted task named {task_name!r} in VM {vm_id}"
                    ),
                    "vm_id": vm_id,
                    "task_name": task_name,
                },
            }
        return {"ok": True, "task": task_to_dict(removed)}

    def _population(self) -> Dict[str, Any]:
        population = {
            str(vm_id): [
                task_to_dict(task)
                for task in self.controller.admitted_tasks(vm_id).tasks
            ]
            for vm_id in self.vm_ids
        }
        return {"ok": True, "population": population}


def shard_worker(
    conn: Any,
    config_payload: Optional[Dict[str, Any]],
    snapshot_payload: Optional[Dict[str, Any]],
) -> None:
    """Worker-process entry: serve shard requests over a pipe until stop."""
    if snapshot_payload is not None:
        shard = AdmissionShard(
            snapshot=ControllerSnapshot.from_payload(snapshot_payload)
        )
    else:
        assert config_payload is not None
        shard = AdmissionShard(config=ShardConfig.from_payload(config_payload))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message.get("op") == "stop":
            conn.send({"ok": True})
            break
        try:
            conn.send(shard.handle(message))
        except Exception as exc:  # worker must always answer the pipe
            conn.send(
                {"ok": False, "error": {"kind": "internal", "message": str(exc)}}
            )


def _mp_context() -> Any:
    """Fork where available (fast, no import re-exec); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ShardHandle:
    """Uniform call interface over an inline or worker-process shard."""

    def __init__(
        self,
        index: int,
        vm_ids: List[int],
        backend: str,
        config: Optional[ShardConfig] = None,
        snapshot: Optional[ControllerSnapshot] = None,
    ) -> None:
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self.index = index
        self.vm_ids = list(vm_ids)
        self.backend = backend
        #: In-flight request count, maintained by the server dispatcher;
        #: the shedding decision reads it before enqueueing.
        self.inflight = 0
        self._lock = threading.Lock()
        self._shard: Optional[AdmissionShard] = None
        self._conn: Any = None
        self._process: Any = None
        if backend == "inline":
            self._shard = AdmissionShard(config=config, snapshot=snapshot)
        else:
            context = _mp_context()
            parent, child = context.Pipe(duplex=True)
            self._conn = parent
            self._process = context.Process(
                target=shard_worker,
                args=(
                    child,
                    None if config is None else config.to_payload(),
                    None if snapshot is None else snapshot.to_payload(),
                ),
                daemon=True,
            )
            self._process.start()
            child.close()

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Blocking request/reply round trip (thread-safe)."""
        with self._lock:
            if self._shard is not None:
                return self._shard.handle(message)
            self._conn.send(message)
            return self._conn.recv()

    def stop(self) -> None:
        if self._shard is not None:
            self._shard = None
            return
        if self._conn is not None:
            try:
                with self._lock:
                    self._conn.send({"op": "stop"})
                    self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
                pass
            self._conn.close()
            self._conn = None
        if self._process is not None:
            self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - hung worker
                self._process.terminate()
                self._process.join(timeout=5)
            self._process = None


def merge_snapshots(
    snapshots: Sequence[ControllerSnapshot],
) -> ControllerSnapshot:
    """Fold per-shard snapshots into one full-system snapshot.

    Admitted sets and memo states are disjoint by construction (each VM
    lives on exactly one shard) and merge keyed by VM id; counters sum.
    Decision rings concatenate in shard order -- the service's seq-keyed
    log, not the merged ring, is the authoritative global history.
    """
    if not snapshots:
        raise ValueError("cannot merge zero snapshots")
    first = snapshots[0]
    servers: Dict[int, Tuple[int, int, int]] = {}
    admitted: Dict[int, List[Dict[str, Any]]] = {}
    memo: Dict[int, Dict[str, Any]] = {}
    decisions: List[Dict[str, Any]] = []
    admitted_count = rejected_count = dropped = 0
    for snapshot in snapshots:
        if snapshot.table_pattern != first.table_pattern:
            raise ValueError("snapshots disagree on the time slot table")
        for entry in snapshot.servers:
            if entry[0] in servers:
                raise ValueError(f"VM {entry[0]} appears in two snapshots")
            servers[entry[0]] = entry
        for vm_id, tasks in snapshot.admitted.items():
            admitted[vm_id] = list(tasks)
        for vm_id, entry_state in snapshot.memo.items():
            memo[vm_id] = dict(entry_state)
        decisions.extend(snapshot.decisions)
        admitted_count += snapshot.admitted_count
        rejected_count += snapshot.rejected_count
        dropped += snapshot.dropped_decisions
    return ControllerSnapshot(
        table_pattern=list(first.table_pattern),
        servers=[servers[vm_id] for vm_id in sorted(servers)],
        incremental=first.incremental,
        max_decisions=first.max_decisions,
        admitted={vm_id: admitted[vm_id] for vm_id in sorted(admitted)},
        memo={vm_id: memo[vm_id] for vm_id in sorted(memo)},
        admitted_count=admitted_count,
        rejected_count=rejected_count,
        dropped_decisions=dropped,
        decisions=decisions,
    )


def partition_snapshot(
    snapshot: ControllerSnapshot, num_shards: int
) -> List[ControllerSnapshot]:
    """Split a full-system snapshot into per-shard warm-start images.

    The analytic state (admitted sets, memoized curves) partitions
    exactly; counters and the decision ring stay with the merged image
    (the service log owns history), so each shard restarts with zeroed
    shard-local counters.
    """
    vm_ids = [entry[0] for entry in snapshot.servers]
    groups = partition_vms(vm_ids, num_shards)
    parts: List[ControllerSnapshot] = []
    for group in groups:
        chosen = set(group)
        parts.append(
            ControllerSnapshot(
                table_pattern=list(snapshot.table_pattern),
                servers=[
                    entry for entry in snapshot.servers if entry[0] in chosen
                ],
                incremental=snapshot.incremental,
                max_decisions=snapshot.max_decisions,
                admitted={
                    vm_id: list(tasks)
                    for vm_id, tasks in sorted(snapshot.admitted.items())
                    if vm_id in chosen
                },
                memo={
                    vm_id: dict(entry)
                    for vm_id, entry in sorted(snapshot.memo.items())
                    if vm_id in chosen
                },
                admitted_count=0,
                rejected_count=0,
                dropped_decisions=0,
                decisions=[],
            )
        )
    return parts


class ShardPool:
    """The set of live shards plus the VM-to-shard routing map."""

    def __init__(
        self,
        table_pattern: List[int],
        servers: Sequence[Tuple[int, int, int]],
        num_shards: int,
        *,
        backend: str = "process",
        incremental: bool = True,
        max_decisions: Optional[int] = None,
        warm_from: Optional[ControllerSnapshot] = None,
    ) -> None:
        self.table_pattern = list(table_pattern)
        self.servers = [tuple(entry) for entry in servers]
        self.backend = backend
        self.incremental = incremental
        self.max_decisions = max_decisions
        by_vm = {entry[0]: entry for entry in self.servers}
        if len(by_vm) != len(self.servers):
            raise ValueError("duplicate VM id in server set")
        groups = partition_vms(sorted(by_vm), num_shards)
        self.shards: List[ShardHandle] = []
        self._route: Dict[int, ShardHandle] = {}
        warm_parts: Optional[List[ControllerSnapshot]] = None
        if warm_from is not None:
            warm_parts = partition_snapshot(warm_from, num_shards)
        for index, group in enumerate(groups):
            if warm_parts is not None:
                handle = ShardHandle(
                    index, group, backend, snapshot=warm_parts[index]
                )
            else:
                handle = ShardHandle(
                    index,
                    group,
                    backend,
                    config=ShardConfig(
                        table_pattern=self.table_pattern,
                        servers=[by_vm[vm_id] for vm_id in group],
                        incremental=incremental,
                        max_decisions=max_decisions,
                    ),
                )
            self.shards.append(handle)
            for vm_id in group:
                self._route[vm_id] = handle

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, vm_id: int) -> Optional[ShardHandle]:
        return self._route.get(vm_id)

    def snapshot(self) -> ControllerSnapshot:
        """Merged full-system snapshot across every shard."""
        snapshots = []
        for handle in self.shards:
            reply = handle.call({"op": "snapshot"})
            snapshots.append(ControllerSnapshot.from_payload(reply["snapshot"]))
        return merge_snapshots(snapshots)

    def population(self) -> Dict[int, List[Dict[str, Any]]]:
        """Current admitted task dicts per VM, merged across shards."""
        merged: Dict[int, List[Dict[str, Any]]] = {}
        for handle in self.shards:
            reply = handle.call({"op": "population"})
            for vm_text, tasks in sorted(reply["population"].items()):
                merged[int(vm_text)] = list(tasks)
        return merged

    def counters(self) -> Dict[str, int]:
        totals = {
            "admitted_count": 0,
            "rejected_count": 0,
            "dropped_decisions": 0,
            "retained_decisions": 0,
        }
        for handle in self.shards:
            reply = handle.call({"op": "counters"})
            for key in sorted(totals):
                totals[key] += reply["counters"][key]
        return totals

    def stop(self) -> None:
        for handle in self.shards:
            handle.stop()
        self.shards = []
        self._route = {}
