"""The admission service layer: sharded controllers behind one socket.

``repro.serve`` turns the library's :class:`~repro.core.admission.AdmissionController`
into a long-running service: an asyncio front-end (newline-JSON and
HTTP/1.1 framings over one message vocabulary) routes per-VM admission
traffic to sharded worker processes, batches analyze requests per
scheduling epoch through :func:`repro.api.analyze_many`, and sheds
load through the :class:`~repro.core.manager.DegradationPolicy` when
a shard saturates.

Entry points: ``python -m repro.serve serve`` (run a server),
``... client`` (drive one), ``... bench`` (the determinism/throughput
benchmark behind ``BENCH_admission.json``).
"""

from repro.serve.client import ServeClient, load_script, run_script
from repro.serve.protocol import (
    GET_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from repro.serve.server import AdmissionServer, ServeConfig, load_system_file
from repro.serve.shard import (
    AdmissionShard,
    ShardConfig,
    ShardHandle,
    ShardPool,
    merge_snapshots,
    partition_snapshot,
    partition_vms,
)

__all__ = [
    "AdmissionServer",
    "AdmissionShard",
    "GET_OPS",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ShardConfig",
    "ShardHandle",
    "ShardPool",
    "decode_message",
    "encode_message",
    "error_response",
    "load_script",
    "load_system_file",
    "merge_snapshots",
    "ok_response",
    "partition_snapshot",
    "partition_vms",
    "run_script",
    "validate_request",
]
