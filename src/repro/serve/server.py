"""The admission server: asyncio front-end over sharded controllers.

Request flow
------------

* ``admit``/``withdraw`` route to the owning VM's shard
  (:class:`~repro.serve.shard.ShardPool`) and execute immediately, in
  per-connection FIFO order.  Every outcome is appended to the
  seq-keyed decision log as one canonical-JSON line.
* ``analyze`` requests join the *current scheduling epoch* and are
  flushed as one batch: the epoch loop materializes one
  :class:`repro.api.System` per request against the epoch-consistent
  population and submits the whole column through
  :func:`repro.api.analyze_many` -- the PR-7 batched engine is the
  service's inner oracle, paying one numpy pass for the batch instead
  of one engine dispatch per request.
* Overload sheds load instead of queueing without bound: when a
  shard's in-flight count reaches ``queue_limit`` the request is
  rejected with a ``shedding`` error and the rejection feeds the
  per-VM :class:`~repro.core.manager.DegradationPolicy` streak
  (``slot`` = epoch index); a VM that keeps flooding is quarantined
  (GearV-style: LO-priority churn is dropped so admitted HI
  guarantees keep holding) and rejected immediately thereafter.

Construction validates the *full* server set against Theorem 2 once,
raising the typed
:class:`~repro.core.admission.ConfigurationError` (carrying
``failing_t`` and the server triples) -- a structured startup failure,
not a 500.  Shards then hold per-group subset controllers, which stay
feasible by monotonicity.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.core.admission import ConfigurationError, result_to_dict
from repro.core.manager import DegradationPolicy
from repro.core.timeslot import TimeSlotTable
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    format_http_response,
    gsched_result_to_dict,
    http_path_to_op,
    http_status_for,
    looks_like_http,
    ok_response,
    parse_http_request_line,
    validate_request,
)
from repro.serve.shard import ShardPool
from repro.tasks.serialization import canonical_json, task_from_dict


@dataclass
class ServeConfig:
    """Everything the admission server needs to run."""

    table_pattern: List[int]
    servers: List[Tuple[int, int, int]]
    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    #: Shard backend: ``"process"`` (worker processes) or ``"inline"``.
    backend: str = "process"
    incremental: bool = True
    #: Per-shard decision-ring bound (see AdmissionController).
    max_decisions: Optional[int] = 4096
    #: Engine for the epoch analyze batch; ``"batched"`` packs every
    #: request of the epoch into one kernel submission.
    engine: Optional[str] = "batched"
    #: Scheduling-epoch length in seconds: analyze requests arriving
    #: within one epoch are answered from one consistent batch.
    epoch_interval: float = 0.01
    #: Per-shard in-flight bound; beyond it requests are shed.
    queue_limit: int = 64
    #: Consecutive sheds before a VM is quarantined (DegradationPolicy).
    reject_limit: int = 16
    stall_limit: int = 3
    #: Bound on the service decision log (None = unbounded).
    log_limit: Optional[int] = 65536
    name: str = "serve"

    @classmethod
    def from_system_payload(
        cls, payload: Dict[str, Any], **overrides: Any
    ) -> "ServeConfig":
        """Build from a system JSON object (table_pattern + servers)."""
        for key in ("table_pattern", "servers"):
            if key not in payload:
                raise ValueError(f"system object missing {key!r}")
        return cls(
            table_pattern=[int(bit) for bit in payload["table_pattern"]],
            servers=[
                (int(entry[0]), int(entry[1]), int(entry[2]))
                for entry in payload["servers"]
            ],
            **overrides,
        )


@dataclass
class _PendingAnalyze:
    seq: int
    message: Dict[str, Any]
    future: "asyncio.Future[Dict[str, Any]]" = field(repr=False, default=None)  # type: ignore[assignment]


class AdmissionServer:
    """Long-running admission service over one system configuration."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        table = TimeSlotTable.from_pattern(config.table_pattern)
        pairs = [
            (pi, theta)
            for _vm_id, pi, theta in sorted(config.servers)
        ]
        from repro.analysis.gsched_test import gsched_schedulable

        result = gsched_schedulable(table, pairs)
        if not result.schedulable:
            raise ConfigurationError(
                "server set fails the global (Theorem-2) test at "
                f"t={result.failing_t}; the service cannot start",
                failing_t=result.failing_t,
                servers=sorted(config.servers),
            )
        self.pool = ShardPool(
            config.table_pattern,
            config.servers,
            config.shards,
            backend=config.backend,
            incremental=config.incremental,
            max_decisions=config.max_decisions,
        )
        self.policy = DegradationPolicy(
            stall_limit=config.stall_limit, reject_limit=config.reject_limit
        )
        #: Scheduling epoch counter; the DegradationPolicy's time base.
        self.epoch = 0
        self.log: Deque[Tuple[int, str]] = deque()
        self.dropped_log_entries = 0
        self.counters: Dict[str, int] = {
            "requests": 0,
            "admits": 0,
            "admitted": 0,
            "rejected": 0,
            "withdraws": 0,
            "analyzes": 0,
            "analyze_batches": 0,
            "shed": 0,
            "quarantined_rejects": 0,
            "protocol_errors": 0,
        }
        self.port: Optional[int] = None
        self._pending: List[_PendingAnalyze] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._epoch_task: Optional["asyncio.Task[None]"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._epoch_task = asyncio.create_task(self._epoch_loop())

    async def serve_until_shutdown(self) -> None:
        assert self._shutdown_event is not None, "start() first"
        await self._shutdown_event.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._epoch_task is not None:
            self._epoch_task.cancel()
            try:
                await self._epoch_task
            except asyncio.CancelledError:
                pass
            self._epoch_task = None
        await self._flush_epoch()  # answer any straggling analyze futures
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        assert self._loop is not None
        await self._loop.run_in_executor(None, self.pool.stop)

    # -- connection handling ------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if looks_like_http(first):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_lines(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_lines(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        line: bytes = first
        while line.strip():
            response, shutdown = await self._dispatch_frame(line)
            writer.write(encode_message(response))
            await writer.drain()
            if shutdown:
                assert self._shutdown_event is not None
                self._shutdown_event.set()
                return
            line = await reader.readline()

    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, path = parse_http_request_line(first)
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body = await reader.readexactly(length) if length else b"{}"
            op = http_path_to_op(method, path)
            message = decode_message(body) if body.strip() else {}
            message["op"] = op
            message = validate_request(message)
        except (ProtocolError, ValueError, asyncio.IncompleteReadError) as exc:
            self.counters["protocol_errors"] += 1
            response = error_response(0, "protocol", str(exc))
            writer.write(format_http_response(response, http_status_for(response)))
            await writer.drain()
            return
        response, shutdown = await self._dispatch_validated(message)
        writer.write(format_http_response(response, http_status_for(response)))
        await writer.drain()
        if shutdown:
            assert self._shutdown_event is not None
            self._shutdown_event.set()

    async def _dispatch_frame(
        self, line: bytes
    ) -> Tuple[Dict[str, Any], bool]:
        try:
            message = validate_request(decode_message(line))
        except ProtocolError as exc:
            self.counters["protocol_errors"] += 1
            return error_response(0, "protocol", str(exc)), False
        return await self._dispatch_validated(message)

    # -- dispatch -----------------------------------------------------------

    async def _dispatch_validated(
        self, message: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        op = message["op"]
        seq = message["seq"]
        self.counters["requests"] += 1
        if op == "admit":
            return await self._admit(seq, message), False
        if op == "withdraw":
            return await self._withdraw(seq, message), False
        if op == "analyze":
            return await self._analyze(seq, message), False
        if op == "snapshot":
            return await self._snapshot(seq), False
        if op == "rebalance":
            return await self._rebalance(seq, message), False
        if op == "stats":
            return await self._stats(seq), False
        if op == "log":
            return ok_response(seq, log=self.decision_log_lines()), False
        if op == "ping":
            return ok_response(seq, epoch=self.epoch), False
        # validate_request() restricts op to OPS, so this is shutdown.
        return ok_response(seq, shutting_down=True), True

    async def _admit(self, seq: int, message: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["admits"] += 1
        task = message["task"]
        if not isinstance(task, dict):
            self.counters["protocol_errors"] += 1
            return error_response(seq, "protocol", "task must be an object")
        vm_id = int(task.get("vm_id", 0))
        shard = self.pool.shard_for(vm_id)
        if shard is None:
            return error_response(
                seq,
                "unknown_vm",
                f"no server configured for VM {vm_id}",
                vm_id=vm_id,
            )
        if self.policy.vm_quarantined(vm_id):
            self.counters["quarantined_rejects"] += 1
            return error_response(
                seq,
                "quarantined",
                f"VM {vm_id} is quarantined after sustained overload",
                vm_id=vm_id,
            )
        if shard.inflight >= self.config.queue_limit:
            self.counters["shed"] += 1
            tripped = self.policy.note_rejection(vm_id, self.epoch)
            return error_response(
                seq,
                "shedding",
                f"shard {shard.index} is saturated "
                f"({shard.inflight} in flight); retry next epoch",
                vm_id=vm_id,
                quarantined=tripped,
            )
        reply = await self._call_shard(shard, {"op": "admit", "task": task})
        if not reply.get("ok"):
            error = reply.get("error", {})
            return error_response(
                seq,
                error.get("kind", "internal"),
                error.get("message", "shard error"),
            )
        self.policy.note_accept(vm_id)
        decision = reply["decision"]
        if decision["schedulable"]:
            self.counters["admitted"] += 1
        else:
            self.counters["rejected"] += 1
        self._log_entry(seq, {"op": "admit", "decision": decision})
        return ok_response(seq, decision=decision)

    async def _withdraw(
        self, seq: int, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        self.counters["withdraws"] += 1
        vm_id = int(message["vm_id"])
        task_name = str(message["task_name"])
        shard = self.pool.shard_for(vm_id)
        if shard is None:
            return error_response(
                seq,
                "unknown_vm",
                f"no server configured for VM {vm_id}",
                vm_id=vm_id,
            )
        reply = await self._call_shard(
            shard, {"op": "withdraw", "vm_id": vm_id, "task_name": task_name}
        )
        self._log_entry(
            seq,
            {
                "op": "withdraw",
                "vm_id": vm_id,
                "task_name": task_name,
                "ok": bool(reply.get("ok")),
            },
        )
        if not reply.get("ok"):
            error = reply.get("error", {})
            return error_response(
                seq,
                error.get("kind", "internal"),
                error.get("message", "shard error"),
                vm_id=vm_id,
                task_name=task_name,
            )
        return ok_response(seq, task=reply["task"])

    async def _analyze(self, seq: int, message: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["analyzes"] += 1
        assert self._loop is not None
        entry = _PendingAnalyze(seq=seq, message=message)
        entry.future = self._loop.create_future()
        self._pending.append(entry)
        return await entry.future

    async def _snapshot(self, seq: int) -> Dict[str, Any]:
        assert self._loop is not None
        merged = await self._loop.run_in_executor(None, self.pool.snapshot)
        return ok_response(seq, snapshot=merged.to_payload())

    async def _rebalance(self, seq: int, message: Dict[str, Any]) -> Dict[str, Any]:
        shards = int(message["shards"])
        if shards < 1:
            return error_response(
                seq, "protocol", f"shards must be >= 1, got {shards}"
            )
        assert self._loop is not None
        merged = await self._loop.run_in_executor(None, self.pool.snapshot)
        await self._loop.run_in_executor(None, self.pool.stop)
        self.pool = ShardPool(
            self.config.table_pattern,
            self.config.servers,
            shards,
            backend=self.config.backend,
            incremental=self.config.incremental,
            max_decisions=self.config.max_decisions,
            warm_from=merged,
        )
        return ok_response(seq, shards=shards)

    async def _stats(self, seq: int) -> Dict[str, Any]:
        assert self._loop is not None
        pool_counters = await self._loop.run_in_executor(
            None, self.pool.counters
        )
        quarantined = [
            vm_id
            for vm_id, _pi, _theta in sorted(self.config.servers)
            if self.policy.vm_quarantined(vm_id)
        ]
        return ok_response(
            seq,
            stats={
                "epoch": self.epoch,
                "shards": self.pool.num_shards,
                "backend": self.config.backend,
                "counters": {
                    key: self.counters[key] for key in sorted(self.counters)
                },
                "pool": pool_counters,
                "quarantined_vms": quarantined,
                "quarantine_log": [
                    {
                        "slot": event.slot,
                        "category": event.category,
                        "target": event.target,
                        "reason": event.reason,
                    }
                    for event in self.policy.log
                ],
                "log_entries": len(self.log),
                "dropped_log_entries": self.dropped_log_entries,
            },
        )

    async def _call_shard(
        self, shard: Any, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        assert self._loop is not None
        shard.inflight += 1
        try:
            return await self._loop.run_in_executor(None, shard.call, message)
        finally:
            shard.inflight -= 1

    # -- epoch batching -----------------------------------------------------

    async def _epoch_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.epoch_interval)
            await self._flush_epoch()

    async def _flush_epoch(self) -> None:
        """Advance the epoch; answer its analyze batch in one submission."""
        pending, self._pending = self._pending, []
        self.epoch += 1
        if not pending:
            return
        self.counters["analyze_batches"] += 1
        assert self._loop is not None
        try:
            population = await self._loop.run_in_executor(
                None, self.pool.population
            )
            payloads = [entry.message for entry in pending]
            reports = await self._loop.run_in_executor(
                None, self._run_analyze_batch, population, payloads
            )
        except Exception as exc:  # surface, never wedge the futures
            for entry in pending:
                if not entry.future.done():
                    entry.future.set_result(
                        error_response(entry.seq, "internal", str(exc))
                    )
            return
        for entry, report in zip(pending, reports):
            if not entry.future.done():
                entry.future.set_result(
                    ok_response(entry.seq, epoch=self.epoch, report=report)
                )

    def _run_analyze_batch(
        self,
        population: Dict[int, List[Dict[str, Any]]],
        payloads: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """One epoch's analyze column through ``repro.api.analyze_many``."""
        from repro.api import (
            ServerConfig,
            SystemConfig,
            analyze_many,
            build_system,
        )

        base_tasks = [
            task_from_dict(data)
            for vm_id in sorted(population)
            for data in population[vm_id]
        ]
        server_configs = [
            ServerConfig(vm_id=vm_id, pi=pi, theta=theta)
            for vm_id, pi, theta in sorted(self.config.servers)
        ]
        systems = []
        for index, payload in enumerate(payloads):
            extra = [task_from_dict(data) for data in payload.get("tasks", [])]
            systems.append(
                build_system(
                    SystemConfig(
                        tasks=base_tasks + extra,
                        name=f"{self.config.name}.epoch{self.epoch}.{index}",
                        servers=server_configs,
                        table_pattern=self.config.table_pattern,
                        stagger=False,
                    )
                )
            )
        reports = analyze_many(systems, engine=self.config.engine)
        return [self._report_to_dict(report) for report in reports]

    @staticmethod
    def _report_to_dict(report: Any) -> Dict[str, Any]:
        return {
            "schedulable": report.schedulable,
            "reason": report.reason,
            "failing_t": report.failing_t,
            "global_result": gsched_result_to_dict(report.global_result),
            "local_results": {
                str(vm_id): result_to_dict(report.local_results[vm_id])
                for vm_id in sorted(report.local_results)
            },
        }

    # -- decision log -------------------------------------------------------

    def _log_entry(self, seq: int, entry: Dict[str, Any]) -> None:
        payload = {"seq": seq}
        payload.update(entry)
        text = canonical_json(payload)
        if (
            self.config.log_limit is not None
            and len(self.log) >= self.config.log_limit
        ):
            self.log.popleft()
            self.dropped_log_entries += 1
        self.log.append((seq, text))

    def decision_log_lines(self) -> List[str]:
        """Canonical decision-log lines, sorted by ``seq``.

        Sorting makes the dump a pure function of the per-VM request
        streams: identical for every shard count and every connection
        interleaving, which is what the CI smoke job byte-compares.
        """
        return [text for _seq, text in sorted(self.log)]


def load_system_file(path: str) -> Dict[str, Any]:
    """Read a system JSON object (table_pattern + servers) from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError("system file must hold a JSON object")
    return payload
