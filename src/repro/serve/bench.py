"""Admission-service benchmark: concurrent bursts, determinism checks.

The bench starts a real :class:`~repro.serve.server.AdmissionServer`
on a loopback port, opens one client connection per VM (per-VM streams
stay FIFO, the decision-log contract), fires every VM's scripted burst
concurrently, and reports sustained requests/sec.

Determinism is the point, not just throughput: the workload is a pure
function of ``seed``, every request carries a pre-assigned ``seq``
(``vm_id * SEQ_STRIDE + index``), and the decision log is dumped in
seq order -- so the log's SHA-256 digest must be byte-identical across
reruns *and* across shard counts.  ``run_admission_bench`` enforces
exactly that and records the verdict in the schema-versioned
``BENCH_admission.json`` document.
"""

from __future__ import annotations

import asyncio
import hashlib
import random  # iolint: disable=IOL003 -- seeded per-VM Random, pure function of the bench seed
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.client import ServeClient
from repro.serve.server import AdmissionServer, ServeConfig

#: Version of the committed ``BENCH_admission.json`` record; bump when
#: the document shape changes.
ADMISSION_BENCH_SCHEMA_VERSION = 1

#: Per-VM seq stride; VM ``v``'s requests use ``v * SEQ_STRIDE + i``.
SEQ_STRIDE = 1_000_000

#: Default workload shape (kept small enough for CI smoke runs).
DEFAULT_NUM_VMS = 4
DEFAULT_OPS_PER_VM = 25
DEFAULT_SEED = 7


def default_system(num_vms: int = DEFAULT_NUM_VMS) -> Dict[str, Any]:
    """A Theorem-2-feasible bench system: H=20 table, one server per VM.

    Four of twenty slots are P-channel-busy; the server set demands at
    most 14 of the 16 free slots per hyperperiod, leaving headroom so
    admissions (not the global test) decide the workload's fate.
    """
    pattern = [1 if slot % 5 == 0 else 0 for slot in range(20)]
    servers: List[List[int]] = []
    for vm_id in range(num_vms):
        if vm_id % 2 == 0:
            servers.append([vm_id, 10, 2])
        else:
            servers.append([vm_id, 20, 3])
    return {"table_pattern": pattern, "servers": servers}


def generate_workload(
    num_vms: int = DEFAULT_NUM_VMS,
    ops_per_vm: int = DEFAULT_OPS_PER_VM,
    seed: int = DEFAULT_SEED,
) -> Dict[int, List[Dict[str, Any]]]:
    """Deterministic per-VM request scripts (admit/withdraw/analyze mix).

    Each VM's script is generated from its own ``random.Random`` stream
    and stamped with globally unique, per-VM-increasing ``seq`` values,
    so the merged decision log is a pure function of ``(num_vms,
    ops_per_vm, seed)`` -- independent of shard count and of how the
    concurrent connections interleave.
    """
    scripts: Dict[int, List[Dict[str, Any]]] = {}
    for vm_id in range(num_vms):
        rng = random.Random(f"{seed}:{vm_id}")
        script: List[Dict[str, Any]] = []
        submitted: List[str] = []
        for index in range(ops_per_vm):
            seq = vm_id * SEQ_STRIDE + index
            roll = rng.random()
            if roll < 0.70 or not submitted:
                name = f"vm{vm_id}.task{index}"
                task = {
                    "name": name,
                    "vm_id": vm_id,
                    "period": rng.choice((50, 100, 200)),
                    "wcet": rng.randint(1, 3),
                    "device": f"dev{vm_id}",
                }
                submitted.append(name)
                script.append({"op": "admit", "seq": seq, "task": task})
            elif roll < 0.90:
                name = rng.choice(submitted)
                script.append(
                    {
                        "op": "withdraw",
                        "seq": seq,
                        "vm_id": vm_id,
                        "task_name": name,
                    }
                )
            else:
                probe = {
                    "name": f"vm{vm_id}.probe{index}",
                    "vm_id": vm_id,
                    "period": 100,
                    "wcet": 1,
                    "device": f"dev{vm_id}",
                }
                script.append({"op": "analyze", "seq": seq, "tasks": [probe]})
        scripts[vm_id] = script
    return scripts


def digest_log(lines: Sequence[str]) -> str:
    """SHA-256 over the newline-joined decision log."""
    blob = ("\n".join(lines) + "\n") if lines else ""
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_serve_bench(
    num_shards: int,
    *,
    num_vms: int = DEFAULT_NUM_VMS,
    ops_per_vm: int = DEFAULT_OPS_PER_VM,
    seed: int = DEFAULT_SEED,
    backend: str = "process",
    epoch_interval: float = 0.005,
) -> Dict[str, Any]:
    """One bench run: start a server, fire the burst, collect the log."""
    system = default_system(num_vms)
    scripts = generate_workload(num_vms, ops_per_vm, seed)
    config = ServeConfig.from_system_payload(
        system,
        shards=num_shards,
        backend=backend,
        epoch_interval=epoch_interval,
        name=f"bench.s{num_shards}",
    )

    async def _run() -> Dict[str, Any]:
        import time

        server = AdmissionServer(config)
        await server.start()
        assert server.port is not None
        loop = asyncio.get_running_loop()

        def worker(script: List[Dict[str, Any]]) -> int:
            with ServeClient("127.0.0.1", server.port) as client:
                for message in script:
                    client.request(message)
            return len(script)

        try:
            # Dedicated executor: client threads must not starve the
            # server's own run_in_executor shard calls.
            with ThreadPoolExecutor(max_workers=max(1, num_vms)) as pool:
                start = time.perf_counter()  # iolint: disable=IOL003 -- host-side benchmark timing
                counts = await asyncio.gather(
                    *[
                        loop.run_in_executor(pool, worker, scripts[vm_id])
                        for vm_id in sorted(scripts)
                    ]
                )
                elapsed = time.perf_counter() - start  # iolint: disable=IOL003 -- host-side benchmark timing
            await server._flush_epoch()  # settle any just-arrived batch
            log_lines = server.decision_log_lines()
            counters = dict(server.counters)
            pool_counters = await loop.run_in_executor(
                None, server.pool.counters
            )
        finally:
            await server.stop()
        requests = int(sum(counts))
        return {
            "shards": num_shards,
            "backend": backend,
            "num_vms": num_vms,
            "ops_per_vm": ops_per_vm,
            "seed": seed,
            "requests": requests,
            "elapsed_seconds": max(elapsed, 1e-9),
            "requests_per_sec": requests / max(elapsed, 1e-9),
            "log_entries": len(log_lines),
            "log_digest": digest_log(log_lines),
            "log_lines": log_lines,
            "counters": counters,
            "pool_counters": pool_counters,
        }

    return asyncio.run(_run())


def run_admission_bench(
    shard_counts: Sequence[int] = (1, 2),
    *,
    repeats: int = 2,
    num_vms: int = DEFAULT_NUM_VMS,
    ops_per_vm: int = DEFAULT_OPS_PER_VM,
    seed: int = DEFAULT_SEED,
    backend: str = "process",
) -> Dict[str, Any]:
    """The full determinism matrix: every shard count, ``repeats`` times.

    Returns the ``BENCH_admission.json`` record.  ``deterministic`` is
    true iff every run of every shard count produced byte-identical
    decision-log digests.
    """
    if not shard_counts:
        raise ValueError("need at least one shard count")
    runs: List[Dict[str, Any]] = []
    digests: List[str] = []
    for num_shards in shard_counts:
        for _repeat in range(repeats):
            result = run_serve_bench(
                num_shards,
                num_vms=num_vms,
                ops_per_vm=ops_per_vm,
                seed=seed,
                backend=backend,
            )
            digests.append(result["log_digest"])
            runs.append(
                {
                    key: result[key]
                    for key in (
                        "shards",
                        "backend",
                        "requests",
                        "elapsed_seconds",
                        "requests_per_sec",
                        "log_entries",
                        "log_digest",
                    )
                }
            )
    return {
        "schema_version": ADMISSION_BENCH_SCHEMA_VERSION,
        "workload": {
            "num_vms": num_vms,
            "ops_per_vm": ops_per_vm,
            "seed": seed,
            "shard_counts": [int(count) for count in shard_counts],
            "repeats": repeats,
        },
        "runs": runs,
        "log_digest": digests[0],
        "deterministic": len(set(digests)) == 1,
    }


_WORKLOAD_KEYS = ("num_vms", "ops_per_vm", "seed", "shard_counts", "repeats")
_RUN_KEYS = (
    "shards",
    "backend",
    "requests",
    "elapsed_seconds",
    "requests_per_sec",
    "log_entries",
    "log_digest",
)


def validate_admission_bench_schema(doc: object) -> List[str]:
    """Structural check of a ``BENCH_admission.json`` document.

    Returns human-readable problems; empty means valid.  CI runs it
    against both the committed baseline and a freshly generated record
    (absolute rates vary by host, so only structure is compared).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != ADMISSION_BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {ADMISSION_BENCH_SCHEMA_VERSION}"
        )
    workload = doc.get("workload")
    if not isinstance(workload, dict):
        problems.append("missing 'workload' object")
    else:
        for key in _WORKLOAD_KEYS:
            if key not in workload:
                problems.append(f"workload lacks {key!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("missing non-empty 'runs' list")
    else:
        for index, run in enumerate(runs):
            if not isinstance(run, dict):
                problems.append(f"runs[{index}] is not an object")
                continue
            for key in _RUN_KEYS:
                if key not in run:
                    problems.append(f"runs[{index}] lacks {key!r}")
            rate = run.get("requests_per_sec")
            if not isinstance(rate, (int, float)) or rate <= 0:
                problems.append(
                    f"runs[{index}] lacks a positive requests_per_sec"
                )
    if not isinstance(doc.get("log_digest"), str):
        problems.append("missing string 'log_digest'")
    if not isinstance(doc.get("deterministic"), bool):
        problems.append("missing boolean 'deterministic'")
    return problems


def write_admission_bench(doc: Dict[str, Any], path: str) -> str:
    """Validate and write the record (indent-2, sorted keys, newline)."""
    import json

    problems = validate_admission_bench_schema(doc)
    if problems:
        raise ValueError(
            "refusing to write an invalid bench record: " + "; ".join(problems)
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def compare_digests(
    records: Sequence[Dict[str, Any]],
) -> Optional[Tuple[str, str]]:
    """First mismatching digest pair across bench records, else None."""
    digests = [str(record.get("log_digest", "")) for record in records]
    for digest in digests[1:]:
        if digest != digests[0]:
            return digests[0], digest
    return None
