"""FPGA resource usage arithmetic."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceUsage:
    """LUTs, registers, DSP slices, block RAM and power of one design."""

    luts: int
    registers: int
    dsp: int = 0
    ram_kb: int = 0
    power_mw: float = 0.0

    def __post_init__(self):
        if self.luts < 0 or self.registers < 0 or self.dsp < 0 or self.ram_kb < 0:
            raise ValueError(f"negative resource count in {self!r}")
        if self.power_mw < 0:
            raise ValueError(f"negative power in {self!r}")

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            luts=self.luts + other.luts,
            registers=self.registers + other.registers,
            dsp=self.dsp + other.dsp,
            ram_kb=self.ram_kb + other.ram_kb,
            power_mw=self.power_mw + other.power_mw,
        )

    def scaled(self, factor: int) -> "ResourceUsage":
        """Replicate the block ``factor`` times."""
        if factor < 0:
            raise ValueError(f"negative replication factor {factor}")
        return ResourceUsage(
            luts=self.luts * factor,
            registers=self.registers * factor,
            dsp=self.dsp * factor,
            ram_kb=self.ram_kb * factor,
            power_mw=self.power_mw * factor,
        )

    @property
    def cells(self) -> int:
        """LUTs + registers: the area proxy the power model uses."""
        return self.luts + self.registers

    def as_row(self) -> tuple:
        return (self.luts, self.registers, self.dsp, self.ram_kb, self.power_mw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceUsage(luts={self.luts}, regs={self.registers}, "
            f"dsp={self.dsp}, ram={self.ram_kb}KB, {self.power_mw:.0f}mW)"
        )
