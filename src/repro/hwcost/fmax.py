"""Maximum-frequency model (Fig. 8(c)).

Critical paths:

* The hypervisor's longest combinational path runs through the G-Sched
  deadline comparison, a balanced comparator tree over the shadow
  registers: depth grows with ``log2(vm_count)``, so Fmax degrades
  gently as the system scales.
* The legacy NoC system's critical path runs through router arbitration
  and the MicroBlaze carry chains; it starts lower and degrades with
  the mesh radix needed to host the processors.

Constants are chosen for 7-series FPGAs (Virtex-7 speed grade -2):
lightweight scheduler logic closes comfortably above 150 MHz while
full-featured soft processors sit near 120 MHz -- and the paper's
Obs 6: "the maximum frequency of the hypervisor was always greater than
the BS|Legacy" at every scale.
"""

from __future__ import annotations

import math

#: Hypervisor comparator-tree timing: ns of base logic plus ns per tree
#: level.
HYP_BASE_NS = 4.4
HYP_NS_PER_LEVEL = 0.42

#: Legacy system: MicroBlaze + router arbitration base path, plus the
#: growth from larger mesh radix/fan-out as processors are added.
LEGACY_BASE_NS = 7.6
LEGACY_NS_PER_LEVEL = 0.55


def hypervisor_fmax_mhz(vm_count: int) -> float:
    """Maximum frequency of the I/O-GUARD hypervisor at this scale."""
    if vm_count < 1:
        raise ValueError(f"vm_count must be >= 1, got {vm_count}")
    levels = max(1, math.ceil(math.log2(vm_count))) if vm_count > 1 else 1
    period_ns = HYP_BASE_NS + HYP_NS_PER_LEVEL * levels
    return 1000.0 / period_ns


def legacy_fmax_mhz(vm_count: int) -> float:
    """Maximum frequency of the BS|Legacy system at this scale."""
    if vm_count < 1:
        raise ValueError(f"vm_count must be >= 1, got {vm_count}")
    levels = max(1, math.ceil(math.log2(vm_count))) if vm_count > 1 else 1
    period_ns = LEGACY_BASE_NS + LEGACY_NS_PER_LEVEL * levels
    return 1000.0 / period_ns
