"""Reference designs and the Table I generator.

The non-hypervisor rows of Table I are published synthesis anchors (the
paper's own measurements of standard IP and prior work); the "Proposed"
row is *computed* from the compositional block model so the reproduction
demonstrates the same configuration-to-cost relationship rather than
hard-coding its own result.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hwcost.blocks import hypervisor_cost
from repro.hwcost.resources import ResourceUsage

#: Published anchors (Table I of the paper).  The paper spells RISC-V as
#: "RSIC-V" in the table; we keep the corrected name.
REFERENCE_DESIGNS: Dict[str, ResourceUsage] = {
    "microblaze": ResourceUsage(
        luts=4908, registers=4385, dsp=6, ram_kb=256, power_mw=359
    ),
    "riscv": ResourceUsage(
        luts=7432, registers=16321, dsp=21, ram_kb=512, power_mw=583
    ),
    "spi": ResourceUsage(luts=632, registers=427, dsp=0, ram_kb=0, power_mw=4),
    "ethernet": ResourceUsage(
        luts=1321, registers=793, dsp=0, ram_kb=0, power_mw=7
    ),
    "blueio": ResourceUsage(
        luts=3236, registers=3346, dsp=0, ram_kb=256, power_mw=297
    ),
}

#: A single mesh router (XY, 5-port, 4-flit buffers) -- used by the
#: scalability model; typical for lightweight NoC routers on 7-series.
ROUTER = ResourceUsage(luts=520, registers=410, dsp=0, ram_kb=0, power_mw=0)

#: VC709 (XC7VX690T) device capacity, for normalised area reporting.
DEVICE_LUTS = 433_200
DEVICE_REGISTERS = 866_400


def reference_design(name: str) -> ResourceUsage:
    """Anchor lookup with a helpful error."""
    try:
        return REFERENCE_DESIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown reference design {name!r}; available: "
            f"{sorted(REFERENCE_DESIGNS)}"
        ) from None


def table1_rows(vm_count: int = 16, io_count: int = 2) -> List[Tuple[str, ResourceUsage]]:
    """All rows of Table I, with "proposed" computed from the model."""
    rows: List[Tuple[str, ResourceUsage]] = [
        ("microblaze", REFERENCE_DESIGNS["microblaze"]),
        ("riscv", REFERENCE_DESIGNS["riscv"]),
        ("spi", REFERENCE_DESIGNS["spi"]),
        ("ethernet", REFERENCE_DESIGNS["ethernet"]),
        ("blueio", REFERENCE_DESIGNS["blueio"]),
        ("proposed", hypervisor_cost(vm_count, io_count)),
    ]
    return rows


def relative_to(name: str, usage: ResourceUsage) -> Dict[str, float]:
    """Resource ratios of ``usage`` against a reference design.

    Reproduces the paper's headline percentages, e.g. the proposed
    hypervisor needing "56.6% LUTs, 67.8% registers, 77.7% power"
    relative to the MicroBlaze.
    """
    anchor = reference_design(name)
    return {
        "luts": usage.luts / anchor.luts,
        "registers": usage.registers / anchor.registers,
        "power": usage.power_mw / anchor.power_mw if anchor.power_mw else 0.0,
    }
