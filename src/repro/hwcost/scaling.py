"""Scalability model (Fig. 8): area, power, Fmax vs eta.

The paper scales the number of VMs as ``2**eta`` and compares BS|Legacy
against I/O-GUARD on normalised area, total power, and maximum
frequency.  Both systems host their VMs on MicroBlaze processors (up to
three VMs each, Sec. V); the legacy system spends extra routers on
I/O-path arbitration, while I/O-GUARD adds the hypervisor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.hwcost.blocks import hypervisor_cost
from repro.hwcost.fmax import hypervisor_fmax_mhz, legacy_fmax_mhz
from repro.hwcost.models import DEVICE_LUTS, DEVICE_REGISTERS, ROUTER, reference_design
from repro.hwcost.power import estimate_power_mw
from repro.hwcost.resources import ResourceUsage

#: VMs hosted per processor (Sec. V: up to three guest VMs each).
VMS_PER_PROCESSOR = 3

#: I/O count used across the scalability study (as in Sec. V-B).
IO_COUNT = 2


@dataclass(frozen=True)
class ScalingPoint:
    """One eta sample of the Fig. 8 sweep."""

    eta: int
    vm_count: int
    legacy: ResourceUsage
    ioguard: ResourceUsage
    legacy_fmax_mhz: float
    ioguard_fmax_mhz: float

    @property
    def legacy_area(self) -> float:
        """Normalised (device-relative) area of the legacy system."""
        return _normalised_area(self.legacy)

    @property
    def ioguard_area(self) -> float:
        return _normalised_area(self.ioguard)

    @property
    def area_overhead(self) -> float:
        """I/O-GUARD area increase over legacy (Obs 5: < 20 %)."""
        if self.legacy_area == 0:
            return 0.0
        return self.ioguard_area / self.legacy_area - 1.0


def _normalised_area(usage: ResourceUsage) -> float:
    """Average of LUT and register device-fraction."""
    return 0.5 * (usage.luts / DEVICE_LUTS + usage.registers / DEVICE_REGISTERS)


def _mesh_router_count(node_count: int) -> int:
    """Routers of the smallest square mesh hosting ``node_count`` nodes."""
    side = max(2, math.ceil(math.sqrt(node_count)))
    return side * side


def _base_platform(vm_count: int) -> ResourceUsage:
    """Processors + mesh + I/O controllers common to both systems.

    The mesh hosts the processors, the two I/O attachment points and one
    service node (the hypervisor in I/O-GUARD; the I/O arbitration block
    in the legacy system), so both systems sit on the *same* fabric and
    differ only in the service logic -- matching the paper's "similar
    hardware architecture" baseline setup.
    """
    processors = math.ceil(vm_count / VMS_PER_PROCESSOR)
    microblaze = reference_design("microblaze")
    ethernet = reference_design("ethernet")
    spi = reference_design("spi")
    routers = _mesh_router_count(processors + IO_COUNT + 1)
    total = (
        microblaze.scaled(processors)
        + ROUTER.scaled(routers)
        + ethernet
        + spi
    )
    return total


def legacy_system_cost(vm_count: int) -> ResourceUsage:
    """BS|Legacy: platform + the extra arbitration the routers carry.

    Leaving I/O scheduling to the network costs deeper per-router
    arbitration and dedicated I/O-path buffering, modelled as one
    router-equivalent of extra logic per four processors.
    """
    processors = math.ceil(vm_count / VMS_PER_PROCESSOR)
    extra_arbiters = math.ceil(processors / 4)
    total = _base_platform(vm_count) + ROUTER.scaled(extra_arbiters)
    power = estimate_power_mw(total.luts, total.registers, total.ram_kb)
    return ResourceUsage(
        luts=total.luts,
        registers=total.registers,
        dsp=total.dsp,
        ram_kb=total.ram_kb,
        power_mw=power,
    )


def ioguard_system_cost(vm_count: int) -> ResourceUsage:
    """I/O-GUARD: platform + hypervisor (I/Os hang off the hypervisor)."""
    hyper = hypervisor_cost(vm_count, IO_COUNT)
    total = _base_platform(vm_count) + ResourceUsage(
        luts=hyper.luts,
        registers=hyper.registers,
        dsp=hyper.dsp,
        ram_kb=hyper.ram_kb,
    )
    power = estimate_power_mw(total.luts, total.registers, total.ram_kb)
    return ResourceUsage(
        luts=total.luts,
        registers=total.registers,
        dsp=total.dsp,
        ram_kb=total.ram_kb,
        power_mw=power,
    )


def scaling_sweep(eta_range: range = range(0, 6)) -> List[ScalingPoint]:
    """Fig. 8 sweep: one :class:`ScalingPoint` per eta."""
    points: List[ScalingPoint] = []
    for eta in eta_range:
        if eta < 0:
            raise ValueError(f"eta must be >= 0, got {eta}")
        vm_count = 2**eta
        points.append(
            ScalingPoint(
                eta=eta,
                vm_count=vm_count,
                legacy=legacy_system_cost(vm_count),
                ioguard=ioguard_system_cost(vm_count),
                legacy_fmax_mhz=legacy_fmax_mhz(vm_count),
                ioguard_fmax_mhz=hypervisor_fmax_mhz(vm_count),
            )
        )
    return points
