"""Area-dominated power model.

"Power consumption is usually determined by four factors: voltage, clock
frequency, toggle rate and design area.  Because the unified voltage,
clock frequency and simulated toggle rate were assigned to the systems
being compared, the design area dominated the overall power consumption"
(Sec. V-D).  The model is an affine function of logic cells and block
RAM, with coefficients fitted to the Table I anchor rows (Proposed and
BlueIO, which share the 256 KB memory configuration).
"""

from __future__ import annotations

#: Static (leakage + clock-tree) floor for a design of this class, mW.
STATIC_MW = 76.0

#: Dynamic power per logic cell (LUT or register) at 100 MHz, mW.
MW_PER_CELL = 0.0264

#: Dynamic power per KB of active block RAM, mW.
MW_PER_RAM_KB = 0.20


def estimate_power_mw(luts: int, registers: int, ram_kb: int = 0) -> float:
    """Affine area-dominated power estimate at the unified 100 MHz."""
    if luts < 0 or registers < 0 or ram_kb < 0:
        raise ValueError(
            f"negative resources: luts={luts}, registers={registers}, "
            f"ram_kb={ram_kb}"
        )
    return STATIC_MW + MW_PER_CELL * (luts + registers) + MW_PER_RAM_KB * ram_kb
