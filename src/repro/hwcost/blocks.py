"""Compositional hypervisor cost model.

The hypervisor contains, per connected I/O device (Sec. III):

* a virtualization manager: P-channel (memory controller + executor),
  one I/O pool per VM (priority queue + control logic + shadow register
  + L-Sched), and a G-Sched comparing all shadow registers;
* a virtualization driver: a translator pair, controller glue, and
  memory banks.

Block anchors below are calibrated so the paper's evaluated
configuration -- 16 VMs and 2 I/Os -- reproduces the "Proposed" row of
Table I (2777 LUTs, 2974 registers, 0 DSP, 256 KB RAM, 279 mW).
"""

from __future__ import annotations

from typing import Dict

from repro.hwcost.power import estimate_power_mw
from repro.hwcost.resources import ResourceUsage

#: Per-block LUT/register anchors (no DSPs anywhere in the design: the
#: schedulers are pure comparator logic, Table I shows 0 DSP).
HYPERVISOR_BLOCKS: Dict[str, ResourceUsage] = {
    # Memory controller + time-slot-table walker + P-channel executor.
    "pchannel": ResourceUsage(luts=160, registers=140),
    # One I/O pool: priority queue slots (registers), random-access
    # control logic, shadow register, L-Sched comparator chain.
    "iopool": ResourceUsage(luts=42, registers=56),
    # G-Sched: deadline comparator per pool plus grant logic (costed
    # per VM; the tree grows linearly in leaf count).
    "gsched_per_vm": ResourceUsage(luts=12, registers=10),
    # Translator pair + standardized controller glue + response channel.
    "driver": ResourceUsage(luts=364, registers=291),
    # On-chip memory per I/O: pre-defined task banks + driver code.
    "memory_per_io_kb": ResourceUsage(luts=0, registers=0, ram_kb=128),
}


def block_breakdown(vm_count: int, io_count: int = 2) -> Dict[str, ResourceUsage]:
    """Per-block share of one hypervisor instance (all I/Os combined).

    The Table-I-adjacent view: where the LUTs/registers actually go.
    Keys match :data:`HYPERVISOR_BLOCKS`, with pools and G-Sched slices
    already multiplied out by the VM count.
    """
    if vm_count < 1:
        raise ValueError(f"vm_count must be >= 1, got {vm_count}")
    if io_count < 1:
        raise ValueError(f"io_count must be >= 1, got {io_count}")
    return {
        "pchannel": HYPERVISOR_BLOCKS["pchannel"].scaled(io_count),
        "iopools": HYPERVISOR_BLOCKS["iopool"].scaled(vm_count * io_count),
        "gsched": HYPERVISOR_BLOCKS["gsched_per_vm"].scaled(
            vm_count * io_count
        ),
        "driver": HYPERVISOR_BLOCKS["driver"].scaled(io_count),
        "memory": HYPERVISOR_BLOCKS["memory_per_io_kb"].scaled(io_count),
    }


def hypervisor_cost(vm_count: int, io_count: int = 2) -> ResourceUsage:
    """Resource usage of an I/O-GUARD hypervisor instance.

    One virtualization manager + driver pair per I/O, each manager
    holding ``vm_count`` I/O pools and a G-Sched sized to match
    (Sec. V-B: "2 groups of virtualization managers and virtualization
    drivers, where each virtualization manager contained 16 I/O pools").
    """
    if vm_count < 1:
        raise ValueError(f"vm_count must be >= 1, got {vm_count}")
    if io_count < 1:
        raise ValueError(f"io_count must be >= 1, got {io_count}")
    per_io = (
        HYPERVISOR_BLOCKS["pchannel"]
        + HYPERVISOR_BLOCKS["iopool"].scaled(vm_count)
        + HYPERVISOR_BLOCKS["gsched_per_vm"].scaled(vm_count)
        + HYPERVISOR_BLOCKS["driver"]
        + HYPERVISOR_BLOCKS["memory_per_io_kb"]
    )
    total = per_io.scaled(io_count)
    power = estimate_power_mw(total.luts, total.registers, total.ram_kb)
    return ResourceUsage(
        luts=total.luts,
        registers=total.registers,
        dsp=0,
        ram_kb=total.ram_kb,
        power_mw=power,
    )
