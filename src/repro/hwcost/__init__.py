"""FPGA resource/power/frequency cost models (Table I, Fig. 8).

The paper implements the hypervisor in BlueSpec and reports synthesis
results on a Xilinx VC709.  Without the FPGA toolchain we model hardware
cost *compositionally*: the hypervisor is a sum of micro-architecture
blocks (I/O pools, schedulers, channels, translators) with per-block
LUT/register anchors; reference designs (MicroBlaze, RISC-V, standard
controllers, BlueIO) carry the constants the paper reports.  Power
follows the area-dominated model the paper itself invokes ("the design
area dominated the overall power consumption"), and maximum frequency
follows critical-path depth (logarithmic comparator trees for the
hypervisor vs. radix-bound router arbitration for the legacy NoC).
"""

from repro.hwcost.resources import ResourceUsage
from repro.hwcost.blocks import (
    HYPERVISOR_BLOCKS,
    hypervisor_cost,
)
from repro.hwcost.models import (
    REFERENCE_DESIGNS,
    reference_design,
    table1_rows,
)
from repro.hwcost.power import estimate_power_mw
from repro.hwcost.fmax import hypervisor_fmax_mhz, legacy_fmax_mhz
from repro.hwcost.scaling import (
    ScalingPoint,
    scaling_sweep,
)

__all__ = [
    "HYPERVISOR_BLOCKS",
    "REFERENCE_DESIGNS",
    "ResourceUsage",
    "ScalingPoint",
    "estimate_power_mw",
    "hypervisor_cost",
    "hypervisor_fmax_mhz",
    "legacy_fmax_mhz",
    "reference_design",
    "scaling_sweep",
    "table1_rows",
]
