"""Inline suppression comments.

Grammar (one comment, one or more rules, justification mandatory)::

    x = seen[id(obj)]  # iolint: disable=IOL001 -- debug map, never ordering
    # iolint: disable=IOL003 -- seeded local Random for fixture data
    value = make_fixture()

A suppression on its own line applies to the next statement line; a
trailing suppression applies to its own line.  ``disable-file=`` scopes
the rules to the whole module.  A suppression without a ``--
justification`` is itself a finding (:data:`META_RULE_ID`): silent
opt-outs are exactly the rot this analyzer exists to stop.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lint.findings import Finding, Severity

#: Meta rule covering malformed suppressions and unparseable files.
META_RULE_ID = "IOL000"

_SUPPRESS_RE = re.compile(
    r"#\s*iolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Z0-9, ]+?)"
    r"\s*(?:--\s*(?P<why>.*\S))?\s*$"
)
_RULE_ID_RE = re.compile(r"^IOL\d{3}$")


def _known_rule_ids() -> Set[str]:
    """Registered rule ids; imported lazily to keep module load light."""
    from repro.lint.program_rules import program_rule_ids
    from repro.lint.rules import rule_ids

    return set(rule_ids()) | set(program_rule_ids()) | {META_RULE_ID}


@dataclass
class SuppressionMap:
    """Which rules are suppressed where, plus malformed-comment findings."""

    #: line number -> rule ids suppressed on that line
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rules suppressed for the whole file
    file_wide: Set[str] = field(default_factory=set)
    #: justification text keyed by (line, rule)
    justifications: Dict[Tuple[int, str], str] = field(default_factory=dict)
    #: malformed suppression comments, reported as META_RULE_ID findings
    malformed: List[Finding] = field(default_factory=list)

    def lookup(self, line: int, rule_id: str) -> Tuple[bool, str]:
        """(suppressed?, justification) for a finding at ``line``."""
        if rule_id in self.file_wide:
            return True, self.justifications.get((0, rule_id), "")
        if rule_id in self.by_line.get(line, set()):
            return True, self.justifications.get((line, rule_id), "")
        return False, ""


def collect_suppressions(path: str, source: str) -> SuppressionMap:
    """Parse every ``# iolint:`` comment in ``source``."""
    result = SuppressionMap()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine reports the parse failure separately; no comments
        # can be trusted from a file that does not tokenize.
        return result

    # Lines holding only comments/whitespace: a suppression there
    # governs the next code line instead of its own.
    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(tok.start[0])

    for tok in tokens:
        if tok.type != tokenize.COMMENT or "iolint:" not in tok.string:
            continue
        line_no = tok.start[0]
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            result.malformed.append(
                _malformed(path, line_no, tok.string.strip(), "unparseable directive")
            )
            continue
        rules = [r.strip() for r in match.group("rules").split(",") if r.strip()]
        bad = [r for r in rules if not _RULE_ID_RE.match(r) or r not in _known_rule_ids()]
        why = (match.group("why") or "").strip()
        if bad:
            result.malformed.append(
                _malformed(
                    path, line_no, tok.string.strip(),
                    f"unknown rule id(s) {', '.join(bad)}",
                )
            )
            continue
        if not why:
            result.malformed.append(
                _malformed(
                    path, line_no, tok.string.strip(),
                    "missing justification (append `-- <reason>`)",
                )
            )
            continue
        if match.group("kind") == "disable-file":
            for rule in rules:
                result.file_wide.add(rule)
                result.justifications[(0, rule)] = why
            continue
        target = line_no if line_no in code_lines else _next_code_line(
            line_no, code_lines
        )
        bucket = result.by_line.setdefault(target, set())
        for rule in rules:
            bucket.add(rule)
            result.justifications[(target, rule)] = why
    return result


def _next_code_line(after: int, code_lines: Set[int]) -> int:
    following = [line for line in sorted(code_lines) if line > after]
    return following[0] if following else after


def _malformed(path: str, line: int, text: str, reason: str) -> Finding:
    return Finding(
        rule_id=META_RULE_ID,
        severity=Severity.ERROR,
        path=path,
        line=line,
        col=1,
        message=f"malformed iolint suppression: {reason}",
        fix_hint=(
            "write `# iolint: disable=IOLxxx -- justification`; the "
            "justification is mandatory"
        ),
        line_text=text,
    )


__all__ = ["META_RULE_ID", "SuppressionMap", "collect_suppressions"]
