"""iolint: determinism & real-time-invariant static analyzer.

The repository's value is *reproducible* real-time guarantees --
byte-identical traces and exact Theorem 1-4 admission results.  This
package turns that determinism contract into a checked property: an
two-phase analyzer with project-specific rules: file-local
(IOL001-IOL006, one module at a time) and whole-program (IOL007-IOL010,
over a project-wide symbol table and call graph), inline justified
suppressions, a baseline file for tracked debt, a content-hash record
cache with a deterministic ``--jobs`` parallel mode, and CLI output
formats for humans, machines, GitHub annotations and SARIF.

Run it as ``python -m repro.lint [paths...]`` or import
:func:`lint_paths` / :func:`lint_source` / :func:`lint_sources`
directly.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import (
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.findings import Finding, Severity
from repro.lint.graph import CallGraph, ModuleSummary, summarize_module
from repro.lint.program_rules import (
    Program,
    ProgramRule,
    all_program_rules,
    program_rule_ids,
)
from repro.lint.rules import Rule, all_rules, rule_ids
from repro.lint.suppressions import META_RULE_ID

__all__ = [
    "Baseline",
    "CallGraph",
    "Finding",
    "LintConfig",
    "LintResult",
    "META_RULE_ID",
    "ModuleSummary",
    "Program",
    "ProgramRule",
    "Rule",
    "Severity",
    "all_program_rules",
    "all_rules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_config",
    "program_rule_ids",
    "rule_ids",
    "summarize_module",
]
