"""iolint: determinism & real-time-invariant static analyzer.

The repository's value is *reproducible* real-time guarantees --
byte-identical traces and exact Theorem 1-4 admission results.  This
package turns that determinism contract into a checked property: an
AST-based analyzer with project-specific rules (IOL001-IOL006), inline
justified suppressions, a baseline file for tracked debt, and CLI
output formats for humans, machines, and GitHub annotations.

Run it as ``python -m repro.lint [paths...]`` or import
:func:`lint_paths` / :func:`lint_source` directly.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, all_rules, rule_ids
from repro.lint.suppressions import META_RULE_ID

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "META_RULE_ID",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_config",
    "rule_ids",
]
