"""``python -m repro.lint`` -- the iolint command line.

Exit codes: 0 clean (or everything baselined/suppressed), 1 active
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import load_config
from repro.lint.engine import DEFAULT_CACHE_DIR, lint_paths
from repro.lint.formatters import FORMATTERS, format_profile, format_stats
from repro.lint.program_rules import all_program_rules
from repro.lint.rules import all_rules

DEFAULT_BASELINE = "iolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "iolint: determinism & real-time-invariant static analyzer "
            "for the I/O-GUARD reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATTERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted debt (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report and fail on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover all current findings, then exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="append per-rule finding counts and rule timing to the report",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append a phase breakdown (parse / graph build / rule passes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel phase-1 workers (0 = one per CPU; output is "
        "byte-identical to serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"phase-1 record cache, keyed on content+config+analyzer "
        f"hashes (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the phase-1 record cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and exit",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root for relative paths and pyproject config",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="include suppressed findings in text output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id} [{rule.severity.value}] {rule.summary}")
        lines.append(f"    fix: {rule.fix_hint}")
    for program_rule in all_program_rules():
        lines.append(
            f"{program_rule.rule_id} [{program_rule.severity.value}] "
            f"(whole-program) {program_rule.summary}"
        )
        lines.append(f"    fix: {program_rule.fix_hint}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root)
    config = load_config(root)

    baseline_path = root / args.baseline
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"iolint: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    cache_dir: Optional[str] = None
    if not args.no_cache:
        cache_path = Path(args.cache_dir)
        if not cache_path.is_absolute():
            cache_path = root / cache_path
        cache_dir = str(cache_path)

    paths: List[str] = list(args.paths)
    result = lint_paths(
        paths,
        config=config,
        baseline=baseline,
        jobs=args.jobs,
        cache_dir=cache_dir,
    )

    if args.write_baseline:
        fresh = Baseline.from_findings(result.findings)
        fresh.save(baseline_path)
        print(
            f"iolint: wrote {len(fresh)} finding(s) to {baseline_path}",
        )
        return 0

    if args.format == "text":
        print(FORMATTERS["text"](result, verbose=args.verbose))
    else:
        print(FORMATTERS[args.format](result))
    if args.stats:
        print(format_stats(result))
    if args.profile:
        print(format_profile(result))
    return result.exit_code


__all__ = ["build_parser", "main", "DEFAULT_BASELINE"]
