"""Phase one of iolint v2: project-wide symbol table and call graph.

The file-local rules (IOL001-IOL006) see one module at a time; the
whole-program rules (IOL007-IOL010) need to know *who calls whom across
the project* -- entropy reachable from a digest scope three modules
away, a worker function imported into the experiment driver, an
``engine=`` string that never meets the registry.  This module builds
that view in two steps:

1. **Extraction** (:func:`summarize_module`): one pass over a parsed
   module produces a :class:`ModuleSummary` -- imports, definitions,
   per-function call sites, entropy sites, global reads/writes and the
   ``engine=`` observations the rules consume.  Summaries are pure
   picklable data, which is what makes the engine's content-hash cache
   and ``--jobs`` fan-out possible: a cached or worker-computed summary
   is indistinguishable from a locally computed one.

2. **Linking** (:meth:`CallGraph.build`): the summaries are joined into
   a :class:`CallGraph` that resolves call sites to fully-qualified
   project functions -- following ``import``/``from`` aliases and
   re-export chains, binding ``self.method()`` through the enclosing
   class and its project base classes, and binding ``obj.method()``
   when ``obj``'s class is known from a constructor assignment or
   annotation (the scheduler/engine classes the determinism rules care
   about).

Resolution is deliberately conservative: a call the linker cannot
attribute stays unresolved and is *counted* (:meth:`CallGraph.stats`),
so the test suite can assert the graph resolves >= 95% of intra-project
calls instead of trusting it blindly.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.provenance import Hazard, analyze_function

#: How a call site names its callee, before linking.
#:
#: ``("name", f)``            -- bare name call ``f(...)``
#: ``("dotted", "a.b.f")``    -- attribute chain rooted at a name
#: ``("self", m)``            -- ``self.m(...)`` / ``cls.m(...)``
#: ``("var", "Cls", m)``      -- method on a variable of locally known
#:                               class ``Cls`` (constructor/annotation)
#: ``("lambda", "")``         -- inline lambda
#: ``("opaque", text)``       -- anything else (subscripts, call results)
CalleeRef = Tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    lineno: int
    col: int
    ref: CalleeRef
    text: str


@dataclass(frozen=True)
class EntropySite:
    """One ambient-entropy call inside a function body (IOL007 input)."""

    lineno: int
    col: int
    description: str


@dataclass(frozen=True)
class EngineCompare:
    """A comparison of an engine value against a string literal."""

    lineno: int
    col: int
    literal: str
    #: ``"param"`` -- the raw ``engine`` parameter; ``"resolved"`` -- the
    #: result of ``resolve_engine(...)``; ``"other"`` -- an engine-named
    #: attribute or variable.
    kind: str


@dataclass(frozen=True)
class RunnerSubmit:
    """A worker function handed to a parallel-runner ``map``/``starmap``."""

    lineno: int
    col: int
    method: str
    receiver: str
    fn_ref: CalleeRef
    fn_text: str


@dataclass
class FunctionSummary:
    """Everything the program rules need to know about one function."""

    qualname: str  #: dotted local path, e.g. ``Cls.method`` or ``outer.inner``
    name: str
    lineno: int
    end_lineno: int
    class_name: Optional[str] = None
    parent_function: Optional[str] = None  #: enclosing function qualname
    params: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    entropy_sites: List[EntropySite] = field(default_factory=list)
    #: Names read but not bound locally (module globals or closure cells).
    reads_globals: Tuple[str, ...] = ()
    #: Of those, names bound in an enclosing *function* scope.
    free_reads: Tuple[str, ...] = ()
    #: Module-level names this function rebinds or mutates in place.
    writes_globals: Tuple[str, ...] = ()
    engine_compares: List[EngineCompare] = field(default_factory=list)
    #: ``engine=<string literal>`` keyword arguments passed to calls.
    engine_kwarg_literals: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Whether the ``engine`` parameter is passed on to some call.
    engine_forwarded: bool = False
    #: Same observations for the synthesis ``solver`` registry (IOL010
    #: covers both dispatch surfaces).
    solver_compares: List[EngineCompare] = field(default_factory=list)
    solver_kwarg_literals: List[Tuple[int, int, str]] = field(default_factory=list)
    runner_submits: List[RunnerSubmit] = field(default_factory=list)
    #: IOL008 lattice results, precomputed at extraction so they cache
    #: with the summary (only populated for top-level functions in
    #: overflow scope; the lattice descends into nested defs itself).
    overflow_hazards: List[Hazard] = field(default_factory=list)
    overflow_guarded: bool = False

    @property
    def is_nested(self) -> bool:
        return self.parent_function is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassSummary:
    """One class definition: bases (as written) and its method table."""

    name: str
    lineno: int
    bases: Tuple[str, ...] = ()
    #: method name -> local function qualname
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Pure-data digest of one module; the unit of caching and linking."""

    module: str
    rel_path: str
    #: ``import a.b as c`` -> {"c": "a.b"}; ``import a.b`` -> {"a": "a"}
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from m import x as y`` -> {"y": ("m", "x")} (module resolved
    #: absolute, including relative-import expansion)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level def name -> "func" | "class"
    defs: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: module-level names bound to mutable containers
    mutable_globals: Tuple[str, ...] = ()
    #: module-level names whose value is a static literal (str/int or
    #: tuple/list of those) -- feeds the IOL010 ENGINES registry lookup
    constants: Dict[str, object] = field(default_factory=dict)
    #: module-level aliases of local functions, e.g.
    #: ``cached = register_cache("k", lru_cache()(f))`` -> {"cached": "f"}
    function_aliases: Dict[str, str] = field(default_factory=dict)
    imports_numpy: bool = False


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative posix path."""
    path = rel_path
    if path.startswith("src/"):
        path = path[len("src/") :]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


# -- extraction helpers ------------------------------------------------------


def _dotted_text(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


_ENTROPY_MODULES = {"random", "secrets"}
_ENTROPY_ATTRS: Dict[str, Set[str]] = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "clock",
    },
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "datetime": {"now", "utcnow", "today"},
}

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
}

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "appendleft",
    "extendleft",
}


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in _MUTABLE_FACTORIES
    return False


def _literal_value(node: ast.AST) -> Optional[object]:
    """Static value of a str/int literal or a tuple/list of those."""
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError, TypeError):
        return None
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, (tuple, list)) and all(
        isinstance(item, (str, int)) for item in value
    ):
        return tuple(value)
    return None


def _arg_names(args: ast.arguments) -> Tuple[str, ...]:
    collected = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            collected.append(extra.arg)
    return tuple(collected)


def _innermost_function_name(node: ast.AST) -> Optional[str]:
    """Deepest ``Name`` argument inside nested calls, e.g. the ``f`` in
    ``register_cache("key", lru_cache(maxsize=8)(f))``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        for arg in node.args:
            found = _innermost_function_name(arg)
            if found is not None:
                return found
    return None


class _FunctionExtractor(ast.NodeVisitor):
    """Collects one function's call sites, reads, writes and rule inputs.

    Does not descend into nested function/class definitions -- those are
    summarized separately (the module walker drives the recursion and
    supplies the enclosing-scope name sets).
    """

    def __init__(
        self,
        summary: FunctionSummary,
        module_aliases: Dict[str, str],
        from_imports: Dict[str, Tuple[str, str]],
        enclosing_locals: Set[str],
        config: LintConfig,
    ) -> None:
        self.summary = summary
        self.module_aliases = module_aliases
        self.from_imports = from_imports
        self.enclosing_locals = enclosing_locals
        self.config = config
        self.local_names: Set[str] = set(summary.params)
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.global_decls: Set[str] = set()
        #: local variable -> dotted class text from ``x = Cls(...)``,
        #: ``x: Cls`` or ``x: Cls = ...``
        self.var_types: Dict[str, str] = {}
        self._root = True

    # -- scope plumbing ------------------------------------------------------

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if self._root:
                self._root = False
                super().generic_visit(node)
            # nested definitions are separate summaries; record the
            # binding so reads of the name count as local
            else:
                self.local_names.add(node.name)
            return
        super().generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # lambda bodies stay part of this function's read set, but their
        # parameters are local to the lambda
        for param in _arg_names(node.args):
            self.local_names.add(param)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.global_decls.update(node.names)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.reads.add(node.id)
        else:
            if node.id in self.global_decls:
                self.writes.add(node.id)
            self.local_names.add(node.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_var_types(node.targets, node.value)
        self._record_subscript_writes(node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            annotated = _dotted_text(node.annotation) or ""
            if annotated and annotated[0].isalpha():
                self.var_types[node.target.id] = annotated
        self._record_subscript_writes([node.target])
        self.generic_visit(node)

    def _record_var_types(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        ctor = value
        if isinstance(ctor, ast.IfExp):  # x = Cls(...) if cond else None
            ctor = ctor.body
        if not isinstance(ctor, ast.Call):
            return
        dotted = _dotted_text(ctor.func)
        if dotted is None:
            return
        last = dotted.rsplit(".", 1)[-1]
        if not (last[:1].isupper()):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.var_types[target.id] = dotted

    def _record_subscript_writes(self, targets: Sequence[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name not in self.local_names and name not in self.summary.params:
                    self.writes.add(name)

    def visit_For(self, node: ast.For) -> None:
        for sub in ast.walk(node.target):
            if isinstance(sub, ast.Name):
                self.local_names.add(sub.id)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        for sub in ast.walk(node.target):
            if isinstance(sub, ast.Name):
                self.local_names.add(sub.id)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._record_engine_compare(node)
        self.generic_visit(node)

    # -- call sites ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        ref, text = self._callee_ref(node.func)
        self.summary.calls.append(
            CallSite(lineno=node.lineno, col=node.col_offset, ref=ref, text=text)
        )
        self._record_entropy(node)
        self._record_mutation(node)
        self._record_engine_kwargs(node)
        self._record_runner_submit(node, ref)
        self.generic_visit(node)

    def _callee_ref(self, func: ast.expr) -> Tuple[CalleeRef, str]:
        if isinstance(func, ast.Name):
            return ("name", func.id), func.id
        if isinstance(func, ast.Lambda):
            return ("lambda", ""), "<lambda>"
        dotted = _dotted_text(func)
        if dotted is not None:
            root, _, rest = dotted.partition(".")
            if root in ("self", "cls") and rest and "." not in rest:
                return ("self", rest), dotted
            if root in self.var_types and rest and "." not in rest:
                return ("var", self.var_types[root], rest), dotted
            return ("dotted", dotted), dotted
        if isinstance(func, ast.Attribute):
            return ("opaque", func.attr), f"<expr>.{func.attr}"
        return ("opaque", ""), "<expr>"

    # -- rule-specific observations ------------------------------------------

    def _record_entropy(self, node: ast.Call) -> None:
        dotted = _dotted_text(node.func)
        if dotted is not None and "." in dotted:
            parts = dotted.split(".")
            root_alias, attr = parts[0], parts[-1]
            module = self.module_aliases.get(root_alias)
            if module is None and root_alias in self.from_imports:
                from_module, original = self.from_imports[root_alias]
                if from_module == "datetime" and original in {"datetime", "date"}:
                    module = "datetime"
            if module is not None:
                module_root = module.split(".")[0]
                if module_root in _ENTROPY_MODULES:
                    self._add_entropy(node, f"{module_root}.{attr}")
                    return
                if module_root == "numpy" and parts[1:2] == ["random"]:
                    self._add_entropy(node, "numpy.random")
                    return
                banned = _ENTROPY_ATTRS.get(module_root)
                if banned and attr in banned:
                    self._add_entropy(node, f"{module_root}.{attr}")
                    return
        elif isinstance(node.func, ast.Name):
            origin = self.from_imports.get(node.func.id)
            if origin is not None:
                from_module, original = origin
                root = from_module.split(".")[0]
                if root in _ENTROPY_MODULES:
                    self._add_entropy(node, f"{root}.{original}")
                elif root in _ENTROPY_ATTRS and original in _ENTROPY_ATTRS[root]:
                    self._add_entropy(node, f"{root}.{original}")

    def _add_entropy(self, node: ast.Call, description: str) -> None:
        self.summary.entropy_sites.append(
            EntropySite(
                lineno=node.lineno, col=node.col_offset, description=description
            )
        )

    def _record_mutation(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
        ):
            name = func.value.id
            if name not in self.local_names and name not in self.summary.params:
                self.writes.add(name)

    def _record_engine_compare(self, node: ast.Compare) -> None:
        self._record_registry_compare(
            node, "engine", "resolve_engine", self.summary.engine_compares
        )
        self._record_registry_compare(
            node, "solver", "resolve_solver", self.summary.solver_compares
        )

    def _record_registry_compare(
        self,
        node: ast.Compare,
        param: str,
        resolver: str,
        sink: List[EngineCompare],
    ) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        sides = [node.left, *node.comparators]
        literals = [
            s.value
            for s in sides
            if isinstance(s, ast.Constant) and isinstance(s.value, str)
        ]
        if not literals:
            return
        kind: Optional[str] = None
        for side in sides:
            if isinstance(side, ast.Name):
                if side.id == param and param in self.summary.params:
                    kind = "param"
                    break
                if param in side.id.lower():
                    kind = kind or "other"
            elif isinstance(side, ast.Call):
                callee = side.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else getattr(callee, "attr", "")
                )
                if callee_name == resolver:
                    kind = "resolved"
                    break
            elif isinstance(side, ast.Attribute) and param in side.attr.lower():
                kind = kind or "other"
        if kind is None:
            return
        for literal in literals:
            sink.append(
                EngineCompare(
                    lineno=node.lineno,
                    col=node.col_offset,
                    literal=literal,
                    kind=kind,
                )
            )

    def _record_engine_kwargs(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                if kw.arg == "engine":
                    self.summary.engine_kwarg_literals.append(
                        (node.lineno, node.col_offset, kw.value.value)
                    )
                elif kw.arg == "solver":
                    self.summary.solver_kwarg_literals.append(
                        (node.lineno, node.col_offset, kw.value.value)
                    )
        if "engine" in self.summary.params:
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == "engine":
                    self.summary.engine_forwarded = True
            for kw in node.keywords:
                if isinstance(kw.value, ast.Name) and kw.value.id == "engine":
                    self.summary.engine_forwarded = True

    def _record_runner_submit(self, node: ast.Call, ref: CalleeRef) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in self.config.runner_submit_methods:
            return
        receiver = _dotted_text(func.value)
        if receiver is None:
            return
        root = receiver.split(".")[0]
        is_runner = any(
            marker.lower() in receiver.lower()
            for marker in ("runner",)
        )
        var_type = self.var_types.get(root, "")
        if any(
            marker in var_type for marker in self.config.runner_class_markers
        ):
            is_runner = True
        if not is_runner or not node.args:
            return
        fn_arg = node.args[0]
        if isinstance(fn_arg, ast.Lambda):
            fn_ref: CalleeRef = ("lambda", "")
            fn_text = "<lambda>"
        elif isinstance(fn_arg, ast.Name):
            fn_ref = ("name", fn_arg.id)
            fn_text = fn_arg.id
        else:
            dotted = _dotted_text(fn_arg)
            if dotted is not None:
                fn_ref = ("dotted", dotted)
                fn_text = dotted
            else:
                fn_ref = ("opaque", "")
                fn_text = "<expr>"
        self.summary.runner_submits.append(
            RunnerSubmit(
                lineno=node.lineno,
                col=node.col_offset,
                method=func.attr,
                receiver=receiver,
                fn_ref=fn_ref,
                fn_text=fn_text,
            )
        )

    # -- finalization --------------------------------------------------------

    def finish(self) -> None:
        unbound = self.reads - self.local_names - set(self.summary.params)
        self.summary.reads_globals = tuple(sorted(unbound))
        self.summary.free_reads = tuple(
            sorted(unbound & self.enclosing_locals)
        )
        self.summary.writes_globals = tuple(sorted(self.writes))


def _resolve_relative(module: str, rel_path: str, node: ast.ImportFrom) -> str:
    """Absolute module for a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    is_package = rel_path.endswith("/__init__.py")
    # level 1 from inside a package refers to the package itself
    drop = node.level - 1 if is_package else node.level
    if drop >= len(parts):
        base: List[str] = []
    else:
        base = parts[: len(parts) - drop]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def summarize_module(
    rel_path: str, tree: ast.Module, config: LintConfig
) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed module."""
    summary = ModuleSummary(module=module_name_for(rel_path), rel_path=rel_path)
    _collect_imports(summary, rel_path, tree)
    _collect_toplevel(summary, tree)
    _walk_definitions(
        summary,
        tree.body,
        config,
        qual_prefix="",
        class_name=None,
        parent_function=None,
        enclosing_locals=set(),
    )
    return summary


def _collect_imports(
    summary: ModuleSummary, rel_path: str, tree: ast.Module
) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "numpy":
                    summary.imports_numpy = True
                if alias.asname:
                    summary.module_aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    summary.module_aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = _resolve_relative(summary.module, rel_path, node)
            if not module:
                continue
            if module.split(".")[0] == "numpy":
                summary.imports_numpy = True
            for alias in node.names:
                if alias.name == "*":
                    continue
                summary.from_imports[alias.asname or alias.name] = (
                    module,
                    alias.name,
                )


def _collect_toplevel(summary: ModuleSummary, tree: ast.Module) -> None:
    mutable: List[str] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.defs[stmt.name] = "func"
        elif isinstance(stmt, ast.ClassDef):
            summary.defs[stmt.name] = "class"
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if _is_mutable_value(value):
                mutable.extend(names)
            literal = _literal_value(value)
            if literal is not None:
                for name in names:
                    summary.constants[name] = literal
            aliased = _alias_target(value)
            if aliased is not None:
                for name in names:
                    summary.function_aliases[name] = aliased
    summary.mutable_globals = tuple(sorted(set(mutable)))


def _alias_target(value: ast.expr) -> Optional[str]:
    """Function name aliased by a wrapping assignment, if recognizable."""
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Call):
        return _innermost_function_name(value)
    return None


def _walk_definitions(
    summary: ModuleSummary,
    body: Sequence[ast.stmt],
    config: LintConfig,
    qual_prefix: str,
    class_name: Optional[str],
    parent_function: Optional[str],
    enclosing_locals: Set[str],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{qual_prefix}{stmt.name}"
            fn = FunctionSummary(
                qualname=qualname,
                name=stmt.name,
                lineno=stmt.lineno,
                end_lineno=getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno,
                class_name=class_name,
                parent_function=parent_function,
                params=_arg_names(stmt.args),
            )
            extractor = _FunctionExtractor(
                fn,
                summary.module_aliases,
                summary.from_imports,
                enclosing_locals,
                config,
            )
            extractor.visit(stmt)
            extractor.finish()
            if parent_function is None and config.in_overflow_scope(
                summary.rel_path
            ):
                prov = analyze_function(
                    stmt,
                    config.overflow_value_markers,
                    config.overflow_guard_callees,
                    config.overflow_guard_markers,
                )
                fn.overflow_hazards = prov.hazards
                fn.overflow_guarded = prov.guarded
            summary.functions.append(fn)
            if class_name is not None and parent_function is None:
                summary.classes[class_name].methods.setdefault(
                    stmt.name, qualname
                )
            _walk_definitions(
                summary,
                stmt.body,
                config,
                qual_prefix=f"{qualname}.",
                class_name=None,
                parent_function=qualname,
                enclosing_locals=enclosing_locals
                | extractor.local_names
                | set(fn.params),
            )
        elif isinstance(stmt, ast.ClassDef):
            bases = tuple(
                b for b in (_dotted_text(base) for base in stmt.bases) if b
            )
            summary.classes[stmt.name] = ClassSummary(
                name=stmt.name, lineno=stmt.lineno, bases=bases
            )
            _walk_definitions(
                summary,
                stmt.body,
                config,
                qual_prefix=f"{qual_prefix}{stmt.name}.",
                class_name=stmt.name,
                parent_function=parent_function,
                enclosing_locals=enclosing_locals,
            )
        else:
            # definitions nested under if/try at module or class level
            for child in ast.iter_child_nodes(stmt):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    _walk_definitions(
                        summary,
                        [child],
                        config,
                        qual_prefix=qual_prefix,
                        class_name=class_name,
                        parent_function=parent_function,
                        enclosing_locals=enclosing_locals,
                    )


# -- linking -----------------------------------------------------------------


@dataclass
class GraphStats:
    """Resolution accounting for the self-check tests."""

    total_calls: int = 0
    project_candidates: int = 0
    resolved: int = 0

    @property
    def resolution_rate(self) -> float:
        if not self.project_candidates:
            return 1.0
        return self.resolved / self.project_candidates


class CallGraph:
    """Linked whole-program view: functions, edges, reachability."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.modules: Dict[str, ModuleSummary] = {}
        #: global qualname -> (module, FunctionSummary)
        self.functions: Dict[str, Tuple[str, FunctionSummary]] = {}
        #: global qualname of caller -> sorted resolved callee qualnames
        self.edges: Dict[str, Tuple[str, ...]] = {}
        self.stats = GraphStats()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls, summaries: Sequence[ModuleSummary], config: LintConfig
    ) -> "CallGraph":
        graph = cls(config)
        for summary in summaries:
            graph.modules[summary.module] = summary
        for summary in summaries:
            for fn in summary.functions:
                graph.functions[f"{summary.module}.{fn.qualname}"] = (
                    summary.module,
                    fn,
                )
        for summary in summaries:
            for fn in summary.functions:
                graph._link_function(summary, fn)
        return graph

    def _link_function(self, summary: ModuleSummary, fn: FunctionSummary) -> None:
        caller = f"{summary.module}.{fn.qualname}"
        targets: Set[str] = set()
        for call in fn.calls:
            self.stats.total_calls += 1
            resolved, candidate = self.resolve_call(summary, fn, call.ref)
            if candidate:
                self.stats.project_candidates += 1
            if resolved is not None:
                self.stats.resolved += 1
                targets.add(resolved)
        self.edges[caller] = tuple(sorted(targets))

    # -- symbol resolution ---------------------------------------------------

    def resolve_call(
        self,
        summary: ModuleSummary,
        fn: FunctionSummary,
        ref: CalleeRef,
    ) -> Tuple[Optional[str], bool]:
        """``(resolved qualname or None, is project candidate)``."""
        kind = ref[0]
        if kind == "name":
            return self._resolve_name_call(summary, fn, ref[1])
        if kind == "dotted":
            return self._resolve_dotted_call(summary, ref[1])
        if kind == "self":
            if fn.class_name is None:
                return None, False
            target = self.resolve_method(
                summary.module, fn.class_name, ref[1]
            )
            return target, True
        if kind == "var":
            return self._resolve_var_call(summary, ref[1], ref[2])
        return None, False

    def _resolve_name_call(
        self, summary: ModuleSummary, fn: FunctionSummary, name: str
    ) -> Tuple[Optional[str], bool]:
        # sibling definitions in the same class or enclosing function
        if fn.qualname.count(".") and name != fn.name:
            prefix = fn.qualname.rsplit(".", 1)[0]
            sibling = f"{summary.module}.{prefix}.{name}"
            if sibling in self.functions:
                return sibling, True
        resolved = self.resolve_symbol(summary.module, name)
        if resolved is None:
            return None, self._binds_into_project(summary, name)
        kind, qualname = resolved
        if kind == "func":
            return qualname, True
        if kind == "class":
            init = self.resolve_method_of(qualname, "__init__")
            return init or qualname, True
        return None, self._binds_into_project(summary, name)

    def _resolve_dotted_call(
        self, summary: ModuleSummary, dotted: str
    ) -> Tuple[Optional[str], bool]:
        root, _, rest = dotted.partition(".")
        base_module: Optional[str] = None
        if root in summary.module_aliases:
            base_module = summary.module_aliases[root]
        elif root in summary.from_imports:
            from_module, original = summary.from_imports[root]
            resolved = self.resolve_symbol_entry(from_module, original)
            if resolved is not None and resolved[0] == "module":
                base_module = resolved[1]
            elif resolved is not None and resolved[0] == "class" and rest:
                # ClassName.method(...) as an unbound call
                parts = rest.split(".")
                if len(parts) == 1:
                    return (
                        self.resolve_method_of(resolved[1], parts[0]),
                        True,
                    )
                return None, True
            elif resolved is not None:
                return None, True
        if base_module is None:
            return None, False
        full = f"{base_module}.{rest}" if rest else base_module
        if not self._is_project_module_root(full):
            return None, False
        # longest known-module prefix; remainder is the symbol path
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                remainder = parts[cut:]
                return self._resolve_symbol_path(prefix, remainder), True
        return None, True

    def _resolve_var_call(
        self, summary: ModuleSummary, class_text: str, method: str
    ) -> Tuple[Optional[str], bool]:
        class_qual = self._resolve_class_text(summary, class_text)
        if class_qual is None:
            return None, False
        return self.resolve_method_of(class_qual, method), True

    def _resolve_class_text(
        self, summary: ModuleSummary, class_text: str
    ) -> Optional[str]:
        """Fully-qualified project class for a dotted class expression."""
        root, _, rest = class_text.partition(".")
        if not rest:
            resolved = self.resolve_symbol(summary.module, root)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if root in summary.module_aliases:
            candidate = f"{summary.module_aliases[root]}.{rest}"
            module, _, cls = candidate.rpartition(".")
            if module in self.modules and cls in self.modules[module].classes:
                return candidate
        return None

    def _resolve_symbol_path(
        self, module: str, path: List[str]
    ) -> Optional[str]:
        if not path:
            return None
        head, tail = path[0], path[1:]
        resolved = self.resolve_symbol_entry(module, head)
        if resolved is None:
            return None
        kind, qualname = resolved
        if kind == "func":
            return qualname if not tail else None
        if kind == "class":
            if len(tail) == 1:
                return self.resolve_method_of(qualname, tail[0])
            return None if tail else qualname
        if kind == "module":
            return self._resolve_symbol_path(qualname, tail)
        return None

    def resolve_symbol(
        self, module: str, name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve to ``("func"|"class", qualname)`` following re-exports."""
        resolved = self.resolve_symbol_entry(module, name)
        if resolved is not None and resolved[0] == "module":
            return None
        return resolved

    def resolve_symbol_entry(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str]]:
        """``("func"|"class"|"module", qualname)`` for ``module.name``."""
        if _seen is None:
            _seen = set()
        key = (module, name)
        if key in _seen:
            return None
        _seen.add(key)
        summary = self.modules.get(module)
        if summary is None:
            return None
        kind = summary.defs.get(name)
        if kind == "func":
            return ("func", f"{module}.{name}")
        if kind == "class":
            return ("class", f"{module}.{name}")
        if name in summary.function_aliases:
            target = summary.function_aliases[name]
            if summary.defs.get(target) == "func":
                return ("func", f"{module}.{target}")
        if name in summary.from_imports:
            from_module, original = summary.from_imports[name]
            resolved = self.resolve_symbol_entry(from_module, original, _seen)
            if resolved is not None:
                return resolved
            if f"{from_module}.{original}" in self.modules:
                return ("module", f"{from_module}.{original}")
            return None
        if name in summary.module_aliases:
            return ("module", summary.module_aliases[name])
        if f"{module}.{name}" in self.modules:
            return ("module", f"{module}.{name}")
        return None

    def resolve_method(
        self, module: str, class_name: str, method: str
    ) -> Optional[str]:
        return self.resolve_method_of(f"{module}.{class_name}", method)

    def resolve_method_of(
        self, class_qualname: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve a method through the class and its project bases."""
        if _seen is None:
            _seen = set()
        if class_qualname in _seen:
            return None
        _seen.add(class_qualname)
        module, _, class_name = class_qualname.rpartition(".")
        summary = self.modules.get(module)
        if summary is None:
            return None
        cls = summary.classes.get(class_name)
        if cls is None:
            return None
        local = cls.methods.get(method)
        if local is not None:
            return f"{module}.{local}"
        for base_text in cls.bases:
            base_qual = self._resolve_class_text(summary, base_text)
            if base_qual is not None:
                found = self.resolve_method_of(base_qual, method, _seen)
                if found is not None:
                    return found
        return None

    def _binds_into_project(self, summary: ModuleSummary, name: str) -> bool:
        """Does ``name`` bind to something defined inside the project?"""
        if name in summary.defs:
            return True
        if name in summary.function_aliases:
            return True
        if name in summary.from_imports:
            from_module = summary.from_imports[name][0]
            return self._is_project_module_root(from_module)
        return False

    def _is_project_module_root(self, dotted: str) -> bool:
        root = dotted.split(".")[0]
        return any(
            module == root or module.startswith(root + ".")
            for module in self.modules
        )

    # -- reachability --------------------------------------------------------

    def reachable_from(
        self, seeds: Sequence[str]
    ) -> Dict[str, Optional[str]]:
        """BFS over call edges; ``{reached: predecessor}`` (seeds map to None).

        Adjacency is iterated in sorted order, so the predecessor tree --
        and therefore every taint-chain message built from it -- is
        deterministic.
        """
        parents: Dict[str, Optional[str]] = {}
        queue: deque[str] = deque()
        for seed in sorted(set(seeds)):
            if seed in self.functions and seed not in parents:
                parents[seed] = None
                queue.append(seed)
        while queue:
            current = queue.popleft()
            for target in self.edges.get(current, ()):
                if target not in parents and target in self.functions:
                    parents[target] = current
                    queue.append(target)
        return parents

    def chain_to(
        self, parents: Dict[str, Optional[str]], target: str
    ) -> List[str]:
        """Seed-to-target path through the BFS predecessor tree."""
        chain: List[str] = []
        current: Optional[str] = target
        while current is not None:
            chain.append(current)
            current = parents.get(current)
        return list(reversed(chain))


__all__ = [
    "CallGraph",
    "CallSite",
    "ClassSummary",
    "EngineCompare",
    "EntropySite",
    "FunctionSummary",
    "GraphStats",
    "ModuleSummary",
    "RunnerSubmit",
    "module_name_for",
    "summarize_module",
]
