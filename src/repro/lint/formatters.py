"""Output formatters: human text, machine JSON, GitHub annotations, SARIF."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintResult
from repro.lint.findings import Finding, Severity
from repro.lint.program_rules import all_program_rules
from repro.lint.rules import all_rules


def format_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report; suppressed findings only with ``verbose``."""
    lines: List[str] = []
    for finding in result.findings:
        if finding.suppressed and not verbose:
            continue
        tag = finding.severity.value
        if finding.suppressed:
            tag = "suppressed"
        elif finding.baselined:
            tag = "baselined"
        line = (
            f"{finding.location()}: {finding.rule_id} [{tag}] {finding.message}"
        )
        if finding.fix_hint and not finding.suppressed:
            line += f" (fix: {finding.fix_hint})"
        if finding.suppressed and finding.justification:
            line += f" (justified: {finding.justification})"
        lines.append(line)
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _summary_line(result: LintResult) -> str:
    active = len(result.active)
    noun = "finding" if active == 1 else "findings"
    return (
        f"iolint: {result.files_checked} files checked, {active} {noun} "
        f"({len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed)"
    )


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable key order for byte-identity)."""
    payload = {
        "tool": "iolint",
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "stats": result.stats(),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_github(result: LintResult) -> str:
    """GitHub Actions workflow-command annotations.

    One ``::error``/``::warning`` line per active or baselined finding;
    baselined findings downgrade to ``notice`` so they are visible
    without failing annotation budgets.
    """
    lines: List[str] = []
    for finding in result.findings:
        if finding.suppressed:
            continue
        if finding.baselined:
            level = "notice"
        elif finding.severity is Severity.ERROR:
            level = "error"
        else:
            level = "warning"
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule_id}::"
            f"{_escape(finding.message)}"
        )
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _escape(message: str) -> str:
    """Escape GitHub workflow-command message data."""
    return (
        message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_stats(result: LintResult) -> str:
    """Per-rule finding counts and rule-pass timing."""
    stats = result.stats()
    lines = ["rule    active  baselined  suppressed     seconds"]
    for rule_id, row in stats.items():
        seconds = result.rule_timings.get(rule_id, 0.0)
        lines.append(
            f"{rule_id:<8}{row['active']:>6}{row['baselined']:>11}"
            f"{row['suppressed']:>12}{seconds:>12.3f}"
        )
    # rules that ran clean still cost time; show them below the table
    for rule_id in sorted(result.rule_timings):
        if rule_id not in stats:
            lines.append(
                f"{rule_id:<8}{0:>6}{0:>11}{0:>12}"
                f"{result.rule_timings[rule_id]:>12.3f}"
            )
    totals: Dict[str, int] = {"active": 0, "baselined": 0, "suppressed": 0}
    for row in stats.values():
        for key in totals:
            totals[key] += row[key]
    lines.append(
        f"{'total':<8}{totals['active']:>6}{totals['baselined']:>11}"
        f"{totals['suppressed']:>12}"
        f"{sum(result.rule_timings.values()):>12.3f}"
    )
    return "\n".join(lines)


def format_profile(result: LintResult) -> str:
    """Phase breakdown for ``--profile``: where analyzer time goes."""
    order = (
        ("parse", "parse"),
        ("file_rules", "file-local rules"),
        ("graph_extract", "summary extraction"),
        ("graph_build", "call-graph build"),
        ("program_rules", "whole-program rules"),
        ("phase1", "phase 1 wall clock"),
    )
    lines = ["phase                     seconds"]
    for key, label in order:
        if key in result.timings:
            lines.append(f"{label:<24}{result.timings[key]:>9.3f}")
    lines.append(
        f"{'cache':<24}{result.cache_hits:>4} hit"
        f" / {result.cache_misses} miss"
    )
    return "\n".join(lines)


_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _sarif_result(finding: Finding) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "note" if finding.baselined else _SARIF_LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
        "partialFingerprints": {"iolintFingerprint/v1": finding.fingerprint()},
    }
    if finding.suppressed:
        entry["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.justification or "",
            }
        ]
    return entry


def format_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 log (sorted keys + fixed indent = byte-stable)."""
    rule_entries = []
    for rule in (*all_rules(), *all_program_rules()):
        rule_entries.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.summary},
                "help": {"text": rule.fix_hint},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[rule.severity]
                },
            }
        )
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "iolint",
                        "informationUri": "docs/ARCHITECTURE.md",
                        "rules": sorted(
                            rule_entries, key=lambda r: str(r["id"])
                        ),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": [
                    _sarif_result(f) for f in result.findings
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
    "sarif": format_sarif,
}

__all__ = [
    "FORMATTERS",
    "format_text",
    "format_json",
    "format_github",
    "format_sarif",
    "format_stats",
    "format_profile",
]
