"""Output formatters: human text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintResult
from repro.lint.findings import Severity


def format_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report; suppressed findings only with ``verbose``."""
    lines: List[str] = []
    for finding in result.findings:
        if finding.suppressed and not verbose:
            continue
        tag = finding.severity.value
        if finding.suppressed:
            tag = "suppressed"
        elif finding.baselined:
            tag = "baselined"
        line = (
            f"{finding.location()}: {finding.rule_id} [{tag}] {finding.message}"
        )
        if finding.fix_hint and not finding.suppressed:
            line += f" (fix: {finding.fix_hint})"
        if finding.suppressed and finding.justification:
            line += f" (justified: {finding.justification})"
        lines.append(line)
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _summary_line(result: LintResult) -> str:
    active = len(result.active)
    noun = "finding" if active == 1 else "findings"
    return (
        f"iolint: {result.files_checked} files checked, {active} {noun} "
        f"({len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed)"
    )


def format_json(result: LintResult) -> str:
    """Machine-readable report (stable key order for byte-identity)."""
    payload = {
        "tool": "iolint",
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "stats": result.stats(),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_github(result: LintResult) -> str:
    """GitHub Actions workflow-command annotations.

    One ``::error``/``::warning`` line per active or baselined finding;
    baselined findings downgrade to ``notice`` so they are visible
    without failing annotation budgets.
    """
    lines: List[str] = []
    for finding in result.findings:
        if finding.suppressed:
            continue
        if finding.baselined:
            level = "notice"
        elif finding.severity is Severity.ERROR:
            level = "error"
        else:
            level = "warning"
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule_id}::"
            f"{_escape(finding.message)}"
        )
    lines.append(_summary_line(result))
    return "\n".join(lines)


def _escape(message: str) -> str:
    """Escape GitHub workflow-command message data."""
    return (
        message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_stats(result: LintResult) -> str:
    """Per-rule finding counts, for CHANGES.md bookkeeping."""
    stats = result.stats()
    lines = ["rule    active  baselined  suppressed"]
    for rule_id, row in stats.items():
        lines.append(
            f"{rule_id:<8}{row['active']:>6}{row['baselined']:>11}"
            f"{row['suppressed']:>12}"
        )
    totals: Dict[str, int] = {"active": 0, "baselined": 0, "suppressed": 0}
    for row in stats.values():
        for key in totals:
            totals[key] += row[key]
    lines.append(
        f"{'total':<8}{totals['active']:>6}{totals['baselined']:>11}"
        f"{totals['suppressed']:>12}"
    )
    return "\n".join(lines)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}

__all__ = [
    "FORMATTERS",
    "format_text",
    "format_json",
    "format_github",
    "format_stats",
]
