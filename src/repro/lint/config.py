"""iolint configuration.

The defaults encode this repository's determinism contract (see
``docs/ARCHITECTURE.md``); a ``[tool.iolint]`` table in
``pyproject.toml`` can override them where ``tomllib`` is available
(Python >= 3.11 -- older interpreters silently use the defaults, which
keeps the analyzer dependency-free on 3.9).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional, Tuple


@dataclass(frozen=True)
class LintConfig:
    """Tunable scope knobs for the rule set."""

    #: Path suffixes (posix, relative) exempt from IOL003: the only
    #: modules allowed to touch wall clocks and entropy sources.
    rng_allowlist: Tuple[str, ...] = (
        "repro/sim/rng.py",
        "repro/sim/clock.py",
    )

    #: Basename keywords that put a module in IOL005 "digest scope":
    #: modules producing digests, traces or serialized artifacts, where
    #: ``json.dumps`` must pin key order.  A module importing ``hashlib``
    #: is in scope regardless of its name.
    digest_path_keywords: Tuple[str, ...] = (
        "trace",
        "export",
        "plan",
        "serial",
        "digest",
    )

    #: Path prefixes (posix, relative) where IOL004 treats *any* float
    #: equality as slot math gone wrong.  Outside these, only float
    #: values flowing into slot-named calls are flagged.
    slot_scope_prefixes: Tuple[str, ...] = (
        "src/repro/core/",
        "src/repro/sim/",
    )

    #: Substring marking a callee as a slot-count consumer for IOL004.
    slot_call_marker: str = "slot"

    #: Callees excluded from the IOL004 call check -- ``as_slot_count``
    #: and ``slots_ceil`` ARE the sanctioned integerization boundaries
    #: (their whole job is turning float time into integer slots).
    slot_call_exempt: Tuple[str, ...] = ("as_slot_count", "slots_ceil")

    #: Receiver-name substrings marking a ``.record(...)`` call as a
    #: trace-recorder sink for IOL004: the first argument is an event
    #: time and must be an integer slot, not a float.
    trace_record_markers: Tuple[str, ...] = ("trace", "recorder")

    #: Class-name substrings marking IOL006 "scheduler/pool" classes
    #: whose class attributes must not be shared mutables.
    scheduler_class_markers: Tuple[str, ...] = (
        "Scheduler",
        "Sched",
        "Pool",
        "Queue",
        "Hypervisor",
        "Server",
    )

    #: -- whole-program (v2) knobs ------------------------------------------

    #: Function-name substrings that make a function an IOL007 taint
    #: root even outside a digest-scope module: anything that digests,
    #: exports or canonicalizes artifacts must be entropy-free all the
    #: way down its call tree.
    taint_root_markers: Tuple[str, ...] = (
        "digest",
        "export",
        "serialize",
        "canonical",
    )

    #: Path prefixes (posix, relative) where IOL008 audits numpy int64
    #: arithmetic.  Only the exact-analysis kernels carry the
    #: overflow-soundness obligation.
    overflow_scope_prefixes: Tuple[str, ...] = ("src/repro/analysis/",)

    #: Identifier substrings that mark a value as period/horizon/LCM
    #: typed for the IOL008 provenance lattice.
    overflow_value_markers: Tuple[str, ...] = (
        "period",
        "horizon",
        "lcm",
        "hyper",
        "laxity",
    )

    #: Callee-name substrings that count as an explicit overflow guard:
    #: a function calling any of these has accepted the cap obligation.
    overflow_guard_callees: Tuple[str, ...] = ("lcm_capped", "_capped")

    #: Identifier substrings (case-insensitive) whose mere mention marks
    #: a function as cap-guarded (``GRID_LCM_CAP``, an ``lcm_cap``
    #: parameter, ...).
    overflow_guard_markers: Tuple[str, ...] = ("cap",)

    #: Class-name substrings identifying parallel runners for IOL009.
    runner_class_markers: Tuple[str, ...] = ("ExperimentRunner", "Runner")

    #: Method names on a runner that submit worker functions.
    runner_submit_methods: Tuple[str, ...] = ("map", "starmap", "submit")

    #: Module-level names workers may read even though they are mutable
    #: containers (per-process caches and the like, re-created in each
    #: worker process rather than shared).
    runner_shared_whitelist: Tuple[str, ...] = ()

    #: Where IOL010 finds the engine registry: module and constant name.
    engine_registry_module: str = "repro.analysis.engine"
    engine_registry_name: str = "ENGINES"

    #: Where IOL010 finds the synthesis solver registry (same contract:
    #: ``solver=`` dispatch must resolve through it).
    solver_registry_module: str = "repro.synth.solvers"
    solver_registry_name: str = "SOLVERS"

    #: Relative-path fragments excluded from analysis entirely.  The
    #: fixture corpus contains deliberate violations and must never be
    #: linted as production code.
    exclude: Tuple[str, ...] = (
        "tests/lint/fixtures",
        "__pycache__",
        ".git",
        ".egg-info",
        ".iolint-cache",
        "build/",
        "dist/",
    )

    #: Root against which relative paths are computed.
    root: str = "."

    def is_excluded(self, rel_path: str) -> bool:
        return any(fragment in rel_path for fragment in self.exclude)

    def in_rng_allowlist(self, rel_path: str) -> bool:
        return any(rel_path.endswith(suffix) for suffix in self.rng_allowlist)

    def in_digest_scope(self, rel_path: str) -> bool:
        basename = rel_path.rsplit("/", 1)[-1]
        return any(word in basename for word in self.digest_path_keywords)

    def in_slot_scope(self, rel_path: str) -> bool:
        return any(rel_path.startswith(p) for p in self.slot_scope_prefixes)

    def in_overflow_scope(self, rel_path: str) -> bool:
        return any(rel_path.startswith(p) for p in self.overflow_scope_prefixes)


def _coerce(value: object) -> object:
    """TOML arrays arrive as lists; the config stores tuples."""
    if isinstance(value, list):
        return tuple(value)
    return value


def load_config(root: Path, pyproject: Optional[Path] = None) -> LintConfig:
    """Config for ``root``, honouring ``[tool.iolint]`` when readable."""
    config = LintConfig(root=str(root))
    candidate = pyproject if pyproject is not None else root / "pyproject.toml"
    if not candidate.is_file():
        return config
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
        return config
    try:
        with open(candidate, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):  # pragma: no cover - defensive
        return config
    table = data.get("tool", {}).get("iolint", {})
    known = {f.name for f in fields(LintConfig)}
    overrides = {
        key: _coerce(value)
        for key, value in table.items()
        if key in known and key != "root"
    }
    return replace(config, **overrides) if overrides else config


__all__ = ["LintConfig", "load_config"]
