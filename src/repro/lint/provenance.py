"""Value-provenance lattice for the int64 overflow-safety rule (IOL008).

The exact-analysis kernels in ``repro.analysis`` do their arithmetic in
numpy ``int64``.  Unlike Python ints, ``int64`` wraps silently: a
product of a hyper-period and a tile count, or a cumulative sum of
demand over a long horizon, can cross ``2**63`` and come back negative
-- and a negative demand makes an unschedulable task set look
schedulable.  The repository's contract is that any such product is
either *bounded by construction* (an explicit cap such as
``lcm_capped``/``GRID_LCM_CAP`` was checked first) or must not exist.

This module implements the lightweight per-function lattice that rule
IOL008 evaluates:

* **Taint** -- a value is period/horizon/LCM-typed if its name contains
  a configured marker (``period``, ``horizon``, ``lcm``, ``hyper``,
  ``laxity``), or it was computed from tainted values.  Taint
  propagates through assignments, arithmetic, unary ops, subscripts and
  shape-preserving numpy calls (``arange``, ``asarray``, ``sort``,
  ``concatenate``...).  Statements are interpreted in order, with a
  second pass to pick up loop-carried bindings.

* **Hazards** -- a multiplication whose operands are *both* tainted
  (magnitude can square), or a cumulative sum over a tainted array
  (magnitude scales with length x horizon).

* **Guards** -- a function that calls a capped helper
  (``lcm_capped``), mentions a cap identifier (``GRID_LCM_CAP``, an
  ``lcm_cap`` parameter), or raises ``OverflowError`` itself has
  visibly accepted the bounding obligation, and its hazards are
  forgiven.  The check is deliberately syntactic: the rule's job is to
  force the cap to be *written down where the product happens*, not to
  prove the bound.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

#: numpy helpers whose result carries the taint of their arguments.
_PASSTHROUGH_CALLS = {
    "arange",
    "asarray",
    "array",
    "astype",
    "abs",
    "absolute",
    "concatenate",
    "copy",
    "diff",
    "flatten",
    "maximum",
    "minimum",
    "repeat",
    "reshape",
    "ravel",
    "sort",
    "tile",
    "unique",
    "where",
    "int64",
    "max",
    "min",
    "sum",
    "lcm",
    "gcd",
}

#: Receiver methods treated the same way (``values.astype(...)``).
_PASSTHROUGH_METHODS = {
    "astype",
    "copy",
    "max",
    "min",
    "reshape",
    "ravel",
    "sum",
    "repeat",
    "sort",
}

_CUMSUM_NAMES = {"cumsum", "cumprod"}


@dataclass(frozen=True)
class Hazard:
    """One unguarded-overflow candidate inside a function."""

    lineno: int
    col: int
    kind: str  #: ``"product"`` or ``"cumsum"``
    detail: str


@dataclass
class FunctionProvenance:
    """Lattice result for one function."""

    tainted: Set[str] = field(default_factory=set)
    hazards: List[Hazard] = field(default_factory=list)
    guarded: bool = False


def _describe(node: ast.expr) -> str:
    """Short deterministic rendering of an operand for messages."""
    if isinstance(node, ast.Name):
        return node.id
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    if len(text) > 40:
        text = text[:37] + "..."
    return text


class _TaintInterpreter:
    """Flow-ordered statement interpreter computing taint and hazards."""

    def __init__(self, markers: Sequence[str]) -> None:
        self.markers = tuple(m.lower() for m in markers)
        self.tainted: Set[str] = set()
        self.hazards: List[Hazard] = []
        self._recording = True

    # -- name/expression taint ----------------------------------------------

    def name_is_marked(self, name: str) -> bool:
        lowered = name.lower()
        return any(marker in lowered for marker in self.markers)

    def is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted or self.name_is_marked(node.id)
        if isinstance(node, ast.Attribute):
            # task.period, self.hyperperiod, ...
            return self.name_is_marked(node.attr) or self.is_tainted(node.value)
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self.is_tainted(el) for el in node.elts)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return self.is_tainted(node.elt)
        return False

    def _call_callee_name(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    def _call_taint(self, node: ast.Call) -> bool:
        name = self._call_callee_name(node)
        if name in _PASSTHROUGH_CALLS or name in _CUMSUM_NAMES:
            if any(self.is_tainted(arg) for arg in node.args):
                return True
        if (
            isinstance(node.func, ast.Attribute)
            and name in (_PASSTHROUGH_METHODS | _CUMSUM_NAMES)
            and self.is_tainted(node.func.value)
        ):
            return True
        # a callee whose *name* is marked returns a marked value
        # (``lcm_all(periods)``, ``theorem4_horizon(...)``)
        return self.name_is_marked(name)

    # -- statement interpretation -------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        # two passes: the second sees loop-carried and later bindings
        self._recording = False
        self._exec_block(body)
        self._recording = True
        self._exec_block(body)

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested defs are analyzed with the current taint environment
            self._exec_block(stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            self._exec_block(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            taint = self.is_tainted(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
                self._bind(stmt.target, self.is_tainted(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                if self.is_tainted(stmt.value) or self.is_tainted(stmt.target):
                    self.tainted.add(stmt.target.id)
                if isinstance(stmt.op, ast.Mult):
                    self._check_product_operands(
                        stmt, stmt.target, stmt.value
                    )
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter)
            self._bind(stmt.target, self.is_tainted(stmt.iter))
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self.is_tainted(item.context_expr),
                    )
            self._exec_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
            return
        # raise/assert/pass/del/import -- scan any embedded expressions
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)

    def _bind(self, target: ast.expr, taint: bool) -> None:
        if isinstance(target, ast.Name):
            if taint or self.name_is_marked(target.id):
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        # subscript/attribute stores do not rebind a name

    # -- hazard detection ----------------------------------------------------

    def _scan_expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult):
                self._check_product_operands(sub, sub.left, sub.right)
            elif isinstance(sub, ast.Call):
                self._check_cumsum(sub)

    def _check_product_operands(
        self, site: ast.AST, left: ast.expr, right: ast.expr
    ) -> None:
        if not self._recording:
            return
        if self.is_tainted(left) and self.is_tainted(right):
            self.hazards.append(
                Hazard(
                    lineno=getattr(site, "lineno", 0),
                    col=getattr(site, "col_offset", 0),
                    kind="product",
                    detail=(
                        f"product of tainted values "
                        f"'{_describe(left)}' and '{_describe(right)}'"
                    ),
                )
            )

    def _check_cumsum(self, node: ast.Call) -> None:
        if not self._recording:
            return
        name = self._call_callee_name(node)
        if name not in _CUMSUM_NAMES:
            return
        operand: ast.expr
        if isinstance(node.func, ast.Attribute) and not node.args:
            operand = node.func.value
            if isinstance(operand, ast.Name) and operand.id in ("np", "numpy"):
                return
        elif node.args:
            operand = node.args[0]
        else:
            return
        if self.is_tainted(operand):
            self.hazards.append(
                Hazard(
                    lineno=node.lineno,
                    col=node.col_offset,
                    kind="cumsum",
                    detail=f"cumulative sum over tainted '{_describe(operand)}'",
                )
            )


def _is_guarded(
    func: ast.AST,
    guard_callees: Sequence[str],
    guard_markers: Sequence[str],
) -> bool:
    lowered_markers = tuple(m.lower() for m in guard_markers)
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else getattr(callee, "attr", "")
            )
            if any(fragment in name for fragment in guard_callees):
                return True
        if isinstance(node, ast.Name):
            if any(m in node.id.lower() for m in lowered_markers):
                return True
        if isinstance(node, ast.arg):
            if any(m in node.arg.lower() for m in lowered_markers):
                return True
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            exc_name = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                exc_name = exc.func.id
            elif isinstance(exc, ast.Name):
                exc_name = exc.id
            if exc_name == "OverflowError":
                return True
    return False


def analyze_function(
    func: ast.AST,
    value_markers: Sequence[str],
    guard_callees: Sequence[str] = (),
    guard_markers: Sequence[str] = (),
) -> FunctionProvenance:
    """Run the lattice over one ``FunctionDef``.

    Parameters seed the taint set via the name markers; the body is then
    interpreted in statement order (twice, for loop-carried bindings).
    ``guarded`` is computed over the whole function including nested
    defs, so a cap checked anywhere in the function covers all of its
    hazards.
    """
    interpreter = _TaintInterpreter(value_markers)
    body: Sequence[ast.stmt]
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for param in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
            if interpreter.name_is_marked(param.arg):
                interpreter.tainted.add(param.arg)
        body = func.body
    elif isinstance(func, ast.Module):
        body = func.body
    else:  # pragma: no cover - callers pass functions or modules
        body = []
    interpreter.run(body)
    result = FunctionProvenance(
        tainted=interpreter.tainted,
        hazards=sorted(
            interpreter.hazards, key=lambda h: (h.lineno, h.col, h.kind)
        ),
        guarded=_is_guarded(func, guard_callees, guard_markers),
    )
    return result


__all__ = ["FunctionProvenance", "Hazard", "analyze_function"]
