"""Whole-program rules IOL007-IOL010: phase two of the v2 analyzer.

These rules consume the linked :class:`~repro.lint.graph.CallGraph`
instead of a single module's AST, so they can see violations that are
invisible file-locally: entropy three calls below an export entry
point, an unguarded int64 product in a kernel only ever invoked with
astronomical Theorem-4 horizons, a worker function defined in one
module and submitted to the parallel runner from another.

Each rule follows the same discipline as the file-local set: one
invariant, deterministic finding order, and messages that carry the
*evidence* (the call chain, the tainted operands, the captured names)
so a reader can judge the finding without re-running the analyzer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.graph import CallGraph, FunctionSummary, ModuleSummary, RunnerSubmit


class Program:
    """Everything a whole-program rule sees: config, graph, sources."""

    def __init__(
        self,
        config: LintConfig,
        graph: CallGraph,
        sources: Dict[str, str],
    ) -> None:
        self.config = config
        self.graph = graph
        #: rel_path -> split source lines (for finding line text)
        self._lines: Dict[str, List[str]] = {
            rel_path: text.splitlines() for rel_path, text in sources.items()
        }

    def line_text(self, rel_path: str, line: int) -> str:
        lines = self._lines.get(rel_path, [])
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def modules(self) -> List[ModuleSummary]:
        """Module summaries in deterministic (path) order."""
        return sorted(
            self.graph.modules.values(), key=lambda s: s.rel_path
        )


class ProgramRule:
    """Base class for inter-procedural rules."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    fix_hint: str = ""

    def check_program(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        program: Program,
        rel_path: str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=rel_path,
            line=line,
            col=col + 1,
            message=message,
            fix_hint=self.fix_hint,
            line_text=program.line_text(rel_path, line),
        )


def _short(qualname: str) -> str:
    """Trim the shared package prefix out of chain displays."""
    return qualname[6:] if qualname.startswith("repro.") else qualname


def _chain_text(chain: Sequence[str]) -> str:
    shown = [_short(q) for q in chain]
    if len(shown) > 4:
        shown = [shown[0], "...", shown[-2], shown[-1]]
    return " -> ".join(shown)


class EntropyTaintRule(ProgramRule):
    """IOL007: no ambient entropy reachable from digest/trace/export scope.

    IOL003 polices entropy *call sites* file-locally; this rule closes
    the gap it cannot see: a digest function calling a helper in another
    module that calls ``time.perf_counter()``.  Roots are every function
    defined in a digest-scope module (same keyword set as IOL005) plus
    any function whose name carries a taint-root marker; the call graph
    is then walked breadth-first and every reachable ambient-entropy
    call outside the rng/clock allowlist is flagged, with the shortest
    root-to-sink chain as evidence.
    """

    rule_id = "IOL007"
    severity = Severity.ERROR
    summary = "ambient entropy reachable from digest/trace/export scope"
    fix_hint = (
        "thread times through repro.sim.clock / randomness through "
        "repro.sim.rng, or suppress with a justification if the value is "
        "host-side-only and never reaches an artifact"
    )

    def _roots(self, program: Program) -> List[str]:
        roots: List[str] = []
        markers = tuple(m.lower() for m in program.config.taint_root_markers)
        for summary in program.modules():
            if summary.rel_path.startswith("tests/"):
                continue
            in_scope = program.config.in_digest_scope(summary.rel_path)
            for fn in summary.functions:
                named_root = any(m in fn.name.lower() for m in markers)
                if in_scope or named_root:
                    roots.append(f"{summary.module}.{fn.qualname}")
        return sorted(roots)

    def check_program(self, program: Program) -> Iterator[Finding]:
        graph = program.graph
        parents = graph.reachable_from(self._roots(program))
        reached = sorted(parents)
        for qualname in reached:
            module_name, fn = graph.functions[qualname]
            summary = graph.modules[module_name]
            if program.config.in_rng_allowlist(summary.rel_path):
                continue
            chain = graph.chain_to(parents, qualname)
            for site in sorted(
                fn.entropy_sites, key=lambda s: (s.lineno, s.col)
            ):
                yield self.finding(
                    program,
                    summary.rel_path,
                    site.lineno,
                    site.col,
                    (
                        f"ambient entropy {site.description}() is reachable "
                        f"from digest/trace/export scope: "
                        f"{_chain_text(chain)}"
                    ),
                )


class Int64OverflowRule(ProgramRule):
    """IOL008: tainted int64 products/cumsums need a visible cap check.

    Consumes the provenance lattice precomputed per function (see
    :mod:`repro.lint.provenance`): a product of two period/horizon/LCM
    typed values, or a cumulative sum over one, inside a numpy kernel in
    ``repro.analysis`` is flagged unless the function visibly checks a
    cap (calls ``lcm_capped``, mentions a ``*CAP*`` identifier, or
    raises ``OverflowError`` itself).
    """

    rule_id = "IOL008"
    severity = Severity.ERROR
    summary = "unguarded int64 product/cumsum of period/horizon-typed values"
    fix_hint = (
        "bound the operands first (lcm_capped, GRID_LCM_CAP, "
        "INT64_SAFE_HORIZON) and raise OverflowError past the cap; numpy "
        "int64 wraps silently and a negative demand reads as schedulable"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for summary in program.modules():
            if not program.config.in_overflow_scope(summary.rel_path):
                continue
            if not summary.imports_numpy:
                continue
            for fn in summary.functions:
                if fn.parent_function is not None or fn.overflow_guarded:
                    continue
                for hazard in fn.overflow_hazards:
                    yield self.finding(
                        program,
                        summary.rel_path,
                        hazard.lineno,
                        hazard.col,
                        (
                            f"unguarded int64 {hazard.kind} in "
                            f"'{fn.qualname}': {hazard.detail}; no cap "
                            f"check in scope"
                        ),
                    )


class RunnerClosureRule(ProgramRule):
    """IOL009: parallel-runner workers must not capture mutable state.

    Worker functions handed to ``ExperimentRunner.map``/``starmap`` run
    in separate processes; anything they capture is pickled or silently
    re-imported per process.  A worker that reads a mutable module
    global (outside the shared-read whitelist), writes one, or closes
    over enclosing locals will see *different* state serial vs parallel
    -- exactly the divergence the runner's determinism contract forbids.
    Lambdas are rejected outright: they do not pickle under the spawn
    start method.
    """

    rule_id = "IOL009"
    severity = Severity.ERROR
    summary = "runner worker captures mutable or unpicklable state"
    fix_hint = (
        "make the worker a module-level function taking all inputs as "
        "arguments; share read-only tables via the whitelist "
        "(runner_shared_whitelist) and per-process caches via lru_cache"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for summary in program.modules():
            for fn in summary.functions:
                for submit in sorted(
                    fn.runner_submits, key=lambda s: (s.lineno, s.col)
                ):
                    for finding in self._check_submit(
                        program, summary, fn, submit
                    ):
                        yield finding

    def _check_submit(
        self,
        program: Program,
        summary: ModuleSummary,
        fn: FunctionSummary,
        submit: RunnerSubmit,
    ) -> Iterator[Finding]:
        graph = program.graph
        if submit.fn_ref[0] == "lambda":
            yield self.finding(
                program,
                summary.rel_path,
                submit.lineno,
                submit.col,
                (
                    f"lambda submitted to runner.{submit.method}(); "
                    f"lambdas do not pickle and capture their defining "
                    f"frame -- use a module-level worker function"
                ),
            )
            return
        worker = self._resolve_worker(graph, summary, fn, submit)
        if worker is None:
            return
        worker_module, worker_fn = worker
        worker_summary = graph.modules[worker_module]
        where = f"{_short(worker_module)}.{worker_fn.qualname}"
        if worker_fn.parent_function is not None and worker_fn.free_reads:
            captured = ", ".join(worker_fn.free_reads)
            yield self.finding(
                program,
                summary.rel_path,
                submit.lineno,
                submit.col,
                (
                    f"worker '{where}' is a nested function closing over "
                    f"enclosing locals ({captured}); closures do not "
                    f"pickle -- pass these as arguments"
                ),
            )
        if worker_fn.writes_globals:
            written = ", ".join(worker_fn.writes_globals)
            yield self.finding(
                program,
                summary.rel_path,
                submit.lineno,
                submit.col,
                (
                    f"worker '{where}' mutates module state ({written}); "
                    f"writes from worker processes are lost and "
                    f"order-dependent"
                ),
            )
        mutable_reads = tuple(
            name
            for name in worker_fn.reads_globals
            if name in worker_summary.mutable_globals
            and name not in program.config.runner_shared_whitelist
        )
        if mutable_reads:
            read = ", ".join(mutable_reads)
            yield self.finding(
                program,
                summary.rel_path,
                submit.lineno,
                submit.col,
                (
                    f"worker '{where}' reads mutable module globals "
                    f"({read}) not on the shared-read whitelist; worker "
                    f"processes see a fresh copy, not the parent's state"
                ),
            )

    def _resolve_worker(
        self,
        graph: CallGraph,
        summary: ModuleSummary,
        fn: FunctionSummary,
        submit: RunnerSubmit,
    ) -> Optional[Tuple[str, FunctionSummary]]:
        ref = submit.fn_ref
        if ref[0] == "name":
            # a def nested inside the submitting function shadows
            # module-level symbols
            nested = f"{summary.module}.{fn.qualname}.{ref[1]}"
            if nested in graph.functions:
                return graph.functions[nested]
            resolved = graph.resolve_symbol(summary.module, ref[1])
            if resolved is not None and resolved[0] == "func":
                return graph.functions.get(resolved[1])
            return None
        if ref[0] == "dotted":
            target, _ = graph._resolve_dotted_call(summary, ref[1])
            if target is not None:
                return graph.functions.get(target)
        return None


class EngineParityRule(ProgramRule):
    """IOL010: ``engine=``/``solver=`` dispatch goes through its registry.

    The three analysis engines are interchangeable by contract, and so
    are the synthesis solver backends; that only stays true if every
    entry point resolves the ``engine``/``solver`` argument through
    ``resolve_engine``/``ENGINES`` (resp. ``resolve_solver``/``SOLVERS``)
    rather than comparing the raw string.  Raw comparison silently
    mis-dispatches when the default is env-overridden
    (``REPRO_ANALYSIS_ENGINE``, ``REPRO_SYNTH_SOLVER``), and a literal
    outside the registry would never match anything.
    """

    rule_id = "IOL010"
    severity = Severity.ERROR
    summary = "engine/solver dispatch bypasses its registry"
    fix_hint = (
        "call resolve_engine(engine) / resolve_solver(solver) before "
        "comparing, and only pass literals that appear in "
        "repro.analysis.engine.ENGINES / repro.synth.solvers.SOLVERS"
    )

    def _registry(
        self, program: Program, module_name: str, constant: str
    ) -> Optional[Tuple[str, ...]]:
        module = program.graph.modules.get(module_name)
        if module is None:
            return None
        value = module.constants.get(constant)
        if isinstance(value, tuple) and all(
            isinstance(item, str) for item in value
        ):
            return value
        return None

    def check_program(self, program: Program) -> Iterator[Finding]:
        engines = self._registry(
            program,
            program.config.engine_registry_module,
            program.config.engine_registry_name,
        )
        solvers = self._registry(
            program,
            program.config.solver_registry_module,
            program.config.solver_registry_name,
        )
        for summary in program.modules():
            for fn in summary.functions:
                yield from self._check_surface(
                    program,
                    summary,
                    fn,
                    fn.engine_compares,
                    fn.engine_kwarg_literals,
                    engines,
                    param="engine",
                    resolver="resolve_engine",
                    registry_name="ENGINES",
                )
                yield from self._check_surface(
                    program,
                    summary,
                    fn,
                    fn.solver_compares,
                    fn.solver_kwarg_literals,
                    solvers,
                    param="solver",
                    resolver="resolve_solver",
                    registry_name="SOLVERS",
                )

    def _check_surface(
        self,
        program: Program,
        summary: ModuleSummary,
        fn: FunctionSummary,
        compares,
        kwarg_literals,
        registry: Optional[Tuple[str, ...]],
        *,
        param: str,
        resolver: str,
        registry_name: str,
    ) -> Iterator[Finding]:
        for cmp in sorted(compares, key=lambda c: (c.lineno, c.col)):
            if cmp.kind == "param":
                yield self.finding(
                    program,
                    summary.rel_path,
                    cmp.lineno,
                    cmp.col,
                    (
                        f"'{fn.qualname}' compares the raw {param} "
                        f"parameter against '{cmp.literal}'; resolve it "
                        f"via {resolver}() first (env/default "
                        f"overrides never match raw comparisons)"
                    ),
                )
            elif registry is not None and cmp.literal not in registry:
                article = "an" if param[0] in "aeiou" else "a"
                yield self.finding(
                    program,
                    summary.rel_path,
                    cmp.lineno,
                    cmp.col,
                    (
                        f"'{fn.qualname}' compares {article} {param} value "
                        f"against '{cmp.literal}', which is not in "
                        f"{registry_name} {registry}"
                    ),
                )
        if registry is not None:
            for lineno, col, literal in sorted(kwarg_literals):
                if literal not in registry:
                    yield self.finding(
                        program,
                        summary.rel_path,
                        lineno,
                        col,
                        (
                            f"{param}='{literal}' passed in "
                            f"'{fn.qualname}' is not in {registry_name} "
                            f"{registry}"
                        ),
                    )


_PROGRAM_RULES: Tuple[ProgramRule, ...] = (
    EntropyTaintRule(),
    Int64OverflowRule(),
    RunnerClosureRule(),
    EngineParityRule(),
)


def all_program_rules() -> Tuple[ProgramRule, ...]:
    return _PROGRAM_RULES


def program_rule_ids() -> Tuple[str, ...]:
    return tuple(rule.rule_id for rule in _PROGRAM_RULES)


__all__ = [
    "EngineParityRule",
    "EntropyTaintRule",
    "Int64OverflowRule",
    "Program",
    "ProgramRule",
    "RunnerClosureRule",
    "all_program_rules",
    "program_rule_ids",
]
