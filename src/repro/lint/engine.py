"""Analysis driver: walk files, run rules, apply suppressions + baseline."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.rules import ModuleContext, Rule, all_rules
from repro.lint.suppressions import META_RULE_ID, collect_suppressions


@dataclass
class LintResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-rule counts: ``{rule: {active, suppressed, baselined}}``."""
        table: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            row = table.setdefault(
                finding.rule_id, {"active": 0, "suppressed": 0, "baselined": 0}
            )
            if finding.suppressed:
                row["suppressed"] += 1
            elif finding.baselined:
                row["baselined"] += 1
            else:
                row["active"] += 1
        return dict(sorted(table.items()))


def iter_python_files(
    paths: Sequence[str], config: LintConfig
) -> Iterable[Path]:
    """Every non-excluded ``.py`` file under ``paths``, sorted."""
    root = Path(config.root)
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            collected.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            collected.append(path)
    unique = sorted(set(collected))
    for path in unique:
        if not config.is_excluded(_rel_path(path, root)):
            yield path


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory module; the unit building block of the engine.

    Returns all findings with suppression state resolved (baseline is a
    file-set concern and applied by :func:`lint_paths`).
    """
    cfg = config if config is not None else LintConfig()
    active_rules = rules if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=META_RULE_ID,
                severity=Severity.ERROR,
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                fix_hint="fix the syntax error; unparseable files are unanalyzable",
            )
        ]

    suppressions = collect_suppressions(rel_path, source)
    ctx = ModuleContext.build(rel_path, source, tree, cfg)

    findings: List[Finding] = list(suppressions.malformed)
    for rule in active_rules:
        for finding in rule.check(ctx):
            hit, why = suppressions.lookup(finding.line, finding.rule_id)
            if hit:
                finding.suppressed = True
                finding.justification = why
            findings.append(finding)

    _assign_occurrences(findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def _assign_occurrences(findings: List[Finding]) -> None:
    """Number repeated (rule, line-text) pairs so fingerprints stay unique."""
    counters: Dict[tuple, int] = {}
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule_id)):
        key = (finding.rule_id, finding.line_text)
        finding.occurrence = counters.get(key, 0)
        counters[key] = finding.occurrence + 1


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint every Python file under ``paths``; the importable API."""
    cfg = config if config is not None else LintConfig()
    root = Path(cfg.root)
    result = LintResult()
    for path in iter_python_files(paths, cfg):
        rel = _rel_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(
                    rule_id=META_RULE_ID,
                    severity=Severity.ERROR,
                    path=rel,
                    line=1,
                    col=1,
                    message=f"cannot read file: {exc}",
                )
            )
            result.files_checked += 1
            continue
        file_findings = lint_source(source, rel, cfg, rules)
        if baseline is not None:
            for finding in file_findings:
                if not finding.suppressed and baseline.contains(finding):
                    finding.baselined = True
        result.findings.extend(file_findings)
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


__all__ = ["LintResult", "iter_python_files", "lint_source", "lint_paths"]
