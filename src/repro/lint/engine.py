"""Analysis driver: two-phase whole-program engine.

Phase one is *per-file* and embarrassingly parallel: parse, run the
file-local rules (IOL001-IOL006), collect suppressions, and extract the
:class:`~repro.lint.graph.ModuleSummary` the whole-program rules need.
Each file's phase-one output is a picklable :class:`FileRecord`, which
buys two things for free:

* **Caching** -- records are stored under a key derived from the file
  content hash, the config digest and the engine schema version, so an
  unchanged file is never re-analyzed (``--jobs``/CI reuse the same
  ``.iolint-cache`` directory).
* **Parallelism** -- ``--jobs N`` fans phase one out over a process
  pool.  Results are reassembled in submission order and all later
  sorting is by (path, line, col, rule), so parallel output is
  byte-identical to serial output.

Phase two is *whole-program* and serial: link the summaries into a
:class:`~repro.lint.graph.CallGraph` and run IOL007-IOL010 over it.
Program findings are routed back through each file's stored suppression
map, merged with the file-local findings, renumbered for fingerprint
stability and baselined exactly like v1 findings.
"""

# iolint: disable-file=IOL003 -- analyzer self-profiling; wall-clock feeds
# the --stats/--profile display only, never findings or artifacts

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.graph import CallGraph, ModuleSummary, summarize_module
from repro.lint.program_rules import Program, ProgramRule, all_program_rules
from repro.lint.rules import ModuleContext, Rule, all_rules
from repro.lint.suppressions import (
    META_RULE_ID,
    SuppressionMap,
    collect_suppressions,
)

#: Bump when FileRecord layout or rule semantics change; invalidates
#: every cached record.
CACHE_SCHEMA = 2

DEFAULT_CACHE_DIR = ".iolint-cache"


@dataclass
class LintResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Phase wall-clock seconds: parse / file_rules / graph_build /
    #: program_rules (``--profile``).
    timings: Dict[str, float] = field(default_factory=dict)
    #: Per-rule wall-clock seconds (``--stats``); cached files
    #: contribute no rule time.
    rule_timings: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: The linked phase-two graph (for self-checks and tooling).
    graph: Optional[CallGraph] = None

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-rule counts: ``{rule: {active, suppressed, baselined}}``."""
        table: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            row = table.setdefault(
                finding.rule_id, {"active": 0, "suppressed": 0, "baselined": 0}
            )
            if finding.suppressed:
                row["suppressed"] += 1
            elif finding.baselined:
                row["baselined"] += 1
            else:
                row["active"] += 1
        return dict(sorted(table.items()))


@dataclass
class FileRecord:
    """Phase-one output for one file; the unit of caching and fan-out."""

    rel_path: str
    findings: List[Finding] = field(default_factory=list)
    summary: Optional[ModuleSummary] = None
    suppressions: Optional[SuppressionMap] = None
    parse_seconds: float = 0.0
    rules_seconds: float = 0.0
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    source: str = ""
    from_cache: bool = False


def iter_python_files(
    paths: Sequence[str], config: LintConfig
) -> Iterable[Path]:
    """Every non-excluded ``.py`` file under ``paths``, sorted."""
    root = Path(config.root)
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            collected.extend(path.rglob("*.py"))
        elif path.suffix == ".py":
            collected.append(path)
    unique = sorted(set(collected))
    for path in unique:
        if not config.is_excluded(_rel_path(path, root)):
            yield path


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory module with the file-local rules (v1 surface).

    Returns all findings with suppression state resolved (baseline and
    the whole-program rules are file-set concerns -- see
    :func:`lint_paths` / :func:`lint_sources`).
    """
    cfg = config if config is not None else LintConfig()
    record = _analyze_source(source, rel_path, cfg, rules)
    findings = list(record.findings)
    _assign_occurrences(findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def _analyze_source(
    source: str,
    rel_path: str,
    config: LintConfig,
    rules: Optional[Sequence[Rule]] = None,
) -> FileRecord:
    """Phase one for one in-memory module."""
    record = FileRecord(rel_path=rel_path, source=source)
    active_rules = rules if rules is not None else all_rules()

    started = time.perf_counter()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        record.findings.append(
            Finding(
                rule_id=META_RULE_ID,
                severity=Severity.ERROR,
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                fix_hint="fix the syntax error; unparseable files are unanalyzable",
            )
        )
        record.parse_seconds = time.perf_counter() - started
        return record
    record.parse_seconds = time.perf_counter() - started

    suppressions = collect_suppressions(rel_path, source)
    record.suppressions = suppressions
    ctx = ModuleContext.build(rel_path, source, tree, config)

    record.findings.extend(suppressions.malformed)
    rules_started = time.perf_counter()
    for rule in active_rules:
        rule_started = time.perf_counter()
        for finding in rule.check(ctx):
            hit, why = suppressions.lookup(finding.line, finding.rule_id)
            if hit:
                finding.suppressed = True
                finding.justification = why
            record.findings.append(finding)
        elapsed = time.perf_counter() - rule_started
        record.rule_seconds[rule.rule_id] = (
            record.rule_seconds.get(rule.rule_id, 0.0) + elapsed
        )
    record.rules_seconds = time.perf_counter() - rules_started

    graph_started = time.perf_counter()
    record.summary = summarize_module(rel_path, tree, config)
    record.rule_seconds["graph-extract"] = time.perf_counter() - graph_started
    return record


def _assign_occurrences(findings: List[Finding]) -> None:
    """Number repeated (rule, line-text) pairs so fingerprints stay unique."""
    counters: Dict[Tuple[str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule_id)):
        key = (finding.rule_id, finding.line_text)
        finding.occurrence = counters.get(key, 0)
        counters[key] = finding.occurrence + 1


# -- phase-one cache ---------------------------------------------------------


def _package_digest() -> str:
    """Content hash of the analyzer itself.

    Folding this into the cache key means editing any rule invalidates
    every cached record automatically -- no stale findings after a
    rules change, no manual schema bumps during development.
    """
    global _PACKAGE_DIGEST
    if _PACKAGE_DIGEST is None:
        digest = hashlib.sha256()
        for path in sorted(Path(__file__).parent.glob("*.py")):
            digest.update(path.name.encode("utf-8"))
            try:
                digest.update(path.read_bytes())
            except OSError:  # pragma: no cover - defensive
                pass
        _PACKAGE_DIGEST = digest.hexdigest()[:16]
    return _PACKAGE_DIGEST


_PACKAGE_DIGEST: Optional[str] = None


def _config_digest(config: LintConfig) -> str:
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def _cache_key(rel_path: str, source: str, config: LintConfig) -> str:
    payload = "\x00".join(
        (
            str(CACHE_SCHEMA),
            _package_digest(),
            _config_digest(config),
            rel_path,
            hashlib.sha256(source.encode("utf-8")).hexdigest(),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_load(cache_dir: str, key: str) -> Optional[FileRecord]:
    path = Path(cache_dir) / f"{key}.pkl"
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(record, FileRecord):
        return None
    return record


def _cache_store(cache_dir: str, key: str, record: FileRecord) -> None:
    directory = Path(cache_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, directory / f"{key}.pkl")
    except OSError:  # pragma: no cover - cache is best-effort
        pass


def _phase1_worker(
    payload: Tuple[str, str, LintConfig, Optional[str]],
) -> FileRecord:
    """Read, (maybe) cache-hit, analyze one file.  Process-pool safe."""
    abs_path, rel_path, config, cache_dir = payload
    try:
        source = Path(abs_path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        record = FileRecord(rel_path=rel_path)
        record.findings.append(
            Finding(
                rule_id=META_RULE_ID,
                severity=Severity.ERROR,
                path=rel_path,
                line=1,
                col=1,
                message=f"cannot read file: {exc}",
            )
        )
        return record

    key = ""
    if cache_dir is not None:
        key = _cache_key(rel_path, source, config)
        cached = _cache_load(cache_dir, key)
        if cached is not None:
            cached.source = source
            cached.from_cache = True
            cached.parse_seconds = 0.0
            cached.rules_seconds = 0.0
            cached.rule_seconds = {}
            return cached

    record = _analyze_source(source, rel_path, config)
    if cache_dir is not None:
        _cache_store(cache_dir, key, record)
    return record


# -- phase two ---------------------------------------------------------------


def _run_program_phase(
    records: Sequence[FileRecord],
    config: LintConfig,
    program_rules: Sequence[ProgramRule],
    result: LintResult,
) -> Dict[str, List[Finding]]:
    """Link the graph, run IOL007-IOL010, route through suppressions."""
    graph_started = time.perf_counter()
    summaries = [r.summary for r in records if r.summary is not None]
    graph = CallGraph.build(summaries, config)
    sources = {r.rel_path: r.source for r in records}
    program = Program(config, graph, sources)
    result.graph = graph
    result.timings["graph_build"] = time.perf_counter() - graph_started

    by_path: Dict[str, FileRecord] = {r.rel_path: r for r in records}
    extra: Dict[str, List[Finding]] = {}
    phase_started = time.perf_counter()
    for rule in program_rules:
        rule_started = time.perf_counter()
        for finding in rule.check_program(program):
            record = by_path.get(finding.path)
            if record is None:
                continue
            if record.suppressions is not None:
                hit, why = record.suppressions.lookup(
                    finding.line, finding.rule_id
                )
                if hit:
                    finding.suppressed = True
                    finding.justification = why
            extra.setdefault(finding.path, []).append(finding)
        result.rule_timings[rule.rule_id] = (
            result.rule_timings.get(rule.rule_id, 0.0)
            + time.perf_counter()
            - rule_started
        )
    result.timings["program_rules"] = time.perf_counter() - phase_started
    return extra


def _finalize(
    records: Sequence[FileRecord],
    extra: Dict[str, List[Finding]],
    baseline: Optional[Baseline],
    result: LintResult,
) -> None:
    """Merge, renumber, baseline and sort -- identical serial or parallel."""
    for record in records:
        merged = list(record.findings) + extra.get(record.rel_path, [])
        _assign_occurrences(merged)
        if baseline is not None:
            for finding in merged:
                if not finding.suppressed and baseline.contains(finding):
                    finding.baselined = True
        result.findings.extend(merged)
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))


def resolve_jobs(jobs: Optional[int]) -> int:
    """``0`` means one worker per CPU; ``None``/negative means serial."""
    if jobs is None or jobs < 0:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
    *,
    program_rules: Optional[Sequence[ProgramRule]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> LintResult:
    """Lint every Python file under ``paths``; the importable API.

    ``rules``/``program_rules`` default to the full shipped rule set;
    passing an explicit ``rules`` sequence forces serial, uncached
    analysis (custom rule objects are not assumed picklable).
    ``cache_dir`` enables the phase-one record cache; ``jobs`` > 1 fans
    phase one out over a process pool.  Output is byte-identical across
    all of these modes.
    """
    cfg = config if config is not None else LintConfig()
    root = Path(cfg.root)
    result = LintResult()
    worker_count = resolve_jobs(jobs)
    if rules is not None:
        worker_count = 1
        cache_dir = None

    files = list(iter_python_files(paths, cfg))
    payloads = [
        (str(path), _rel_path(path, root), cfg, cache_dir) for path in files
    ]

    phase1_started = time.perf_counter()
    records: List[FileRecord]
    if worker_count > 1 and len(payloads) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            # executor.map preserves submission order: determinism does
            # not depend on worker completion order
            records = list(pool.map(_phase1_worker, payloads, chunksize=8))
    elif rules is not None:
        records = []
        for abs_path, rel, _cfg, _cache in payloads:
            try:
                source = Path(abs_path).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                record = FileRecord(rel_path=rel)
                record.findings.append(
                    Finding(
                        rule_id=META_RULE_ID,
                        severity=Severity.ERROR,
                        path=rel,
                        line=1,
                        col=1,
                        message=f"cannot read file: {exc}",
                    )
                )
                records.append(record)
                continue
            records.append(_analyze_source(source, rel, cfg, rules))
    else:
        records = [_phase1_worker(payload) for payload in payloads]

    result.timings["phase1"] = time.perf_counter() - phase1_started
    for record in records:
        if record.from_cache:
            result.cache_hits += 1
        else:
            result.cache_misses += 1
        result.timings["parse"] = (
            result.timings.get("parse", 0.0) + record.parse_seconds
        )
        result.timings["file_rules"] = (
            result.timings.get("file_rules", 0.0) + record.rules_seconds
        )
        for rule_id, seconds in record.rule_seconds.items():
            if rule_id == "graph-extract":
                result.timings["graph_extract"] = (
                    result.timings.get("graph_extract", 0.0) + seconds
                )
            else:
                result.rule_timings[rule_id] = (
                    result.rule_timings.get(rule_id, 0.0) + seconds
                )

    active_program_rules = (
        program_rules if program_rules is not None else all_program_rules()
    )
    extra = _run_program_phase(records, cfg, active_program_rules, result)
    _finalize(records, extra, baseline, result)
    return result


def lint_sources(
    files: Dict[str, str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    program_rules: Optional[Sequence[ProgramRule]] = None,
) -> List[Finding]:
    """Run the full two-phase analysis over an in-memory project.

    ``files`` maps repo-relative posix paths to source text.  This is
    the test-facing entry point for the whole-program rules: fixtures
    can assemble a multi-module project without touching disk.
    """
    cfg = config if config is not None else LintConfig()
    result = LintResult()
    records = [
        _analyze_source(source, rel_path, cfg, rules)
        for rel_path, source in sorted(files.items())
    ]
    active_program_rules = (
        program_rules if program_rules is not None else all_program_rules()
    )
    extra = _run_program_phase(records, cfg, active_program_rules, result)
    _finalize(records, extra, None, result)
    return result.findings


__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "FileRecord",
    "LintResult",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "resolve_jobs",
]
