"""The iolint rule set: the determinism contract, mechanically enforced.

Each rule encodes one invariant the simulator and analysis layers rely
on for byte-identical traces and exact Theorem 1-4 admission results.
The rules are deliberately project-shaped: they know which modules own
entropy, which produce digests, and which classes are schedulers.  See
``docs/ARCHITECTURE.md`` ("Determinism contract") for the invariant
behind each rule and the PR-2 bug it would have caught.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    rel_path: str
    source: str
    tree: ast.Module
    config: LintConfig
    lines: List[str] = field(default_factory=list)
    #: ``import x as y`` -> {"y": "x"}
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from m import a as b`` -> {"b": ("m", "a")}
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    imports_hashlib: bool = False

    @classmethod
    def build(
        cls, rel_path: str, source: str, tree: ast.Module, config: LintConfig
    ) -> "ModuleContext":
        ctx = cls(
            rel_path=rel_path,
            source=source,
            tree=tree,
            config=config,
            lines=source.splitlines(),
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.module_aliases[alias.asname or alias.name] = alias.name
                    if alias.name.split(".")[0] == "hashlib":
                        ctx.imports_hashlib = True
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    ctx.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
                if node.module.split(".")[0] == "hashlib":
                    ctx.imports_hashlib = True
        return ctx

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class: one rule id, one invariant, one ``check`` pass."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    fix_hint: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.rel_path,
            line=line,
            col=col,
            message=message,
            fix_hint=self.fix_hint,
            line_text=ctx.line_text(line),
        )


# -- shared AST helpers ------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    """Rightmost simple name of the callee (``a.b.f(...)`` -> ``f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _find_id_calls(node: ast.AST) -> List[ast.Call]:
    """Every ``id(...)`` builtin call inside ``node``."""
    return [
        sub
        for sub in ast.walk(node)
        if isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Name)
        and sub.func.id == "id"
        and len(sub.args) == 1
    ]


#: Call subtrees that launder values back to integers; float contents
#: below these are fine.
_INTEGERIZERS = {"as_slot_count", "int", "round", "len", "floor", "ceil"}


def _is_floatish(node: ast.AST) -> bool:
    """Does this expression plausibly produce a float?

    Walks the expression but does not descend into calls of known
    integerizing functions (``as_slot_count``, ``int``, ...): those are
    the sanctioned boundaries.
    """
    if isinstance(node, ast.Call):
        name = _callee_name(node)
        if name in _INTEGERIZERS:
            return False
        return any(_is_floatish(arg) for arg in node.args)
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.IfExp):
        return _is_floatish(node.body) or _is_floatish(node.orelse)
    return False


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
}


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = _callee_name(node)
        return name in _MUTABLE_FACTORIES
    return False


# -- IOL001 ------------------------------------------------------------------


class IdentityKeyRule(Rule):
    """``id()`` as a dict/set key, membership probe, or ordering tie-break.

    CPython recycles object ids after garbage collection and lays objects
    out nondeterministically, so id-keyed tables alias under churn and
    id tie-breaks depend on memory layout.  PR 2 shipped (and had to fix)
    exactly this bug in the priority queue's liveness table.
    """

    rule_id = "IOL001"
    severity = Severity.ERROR
    summary = "id() used as a key, membership probe, or ordering tie-break"
    fix_hint = (
        "key by a monotonic handle (insertion sequence, task_id) instead "
        "of id(); ids are recycled after GC and depend on memory layout"
    )

    _PROBE_METHODS = {
        "get",
        "pop",
        "setdefault",
        "add",
        "discard",
        "remove",
        "__contains__",
    }
    _HEAP_FUNCS = {"heappush", "heappushpop", "heapreplace"}
    _ORDER_FUNCS = {"sorted", "min", "max", "sort"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()

        def flag(id_call: ast.Call, what: str) -> Optional[Finding]:
            marker = (id_call.lineno, id_call.col_offset)
            if marker in seen:
                return None
            seen.add(marker)
            return self.finding(ctx, id_call, f"id() used as {what}")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                for id_call in _find_id_calls(node.slice):
                    found = flag(id_call, "a subscript key")
                    if found:
                        yield found
            elif isinstance(node, ast.Compare):
                if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                    for id_call in _find_id_calls(node.left):
                        found = flag(id_call, "a membership probe")
                        if found:
                            yield found
            elif isinstance(node, ast.Call):
                callee = _callee_name(node)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._PROBE_METHODS
                ):
                    for arg in node.args:
                        for id_call in _find_id_calls(arg):
                            found = flag(
                                id_call, f"a key in .{node.func.attr}()"
                            )
                            if found:
                                yield found
                if callee in self._ORDER_FUNCS:
                    for kw in node.keywords:
                        if kw.arg == "key":
                            for id_call in _find_id_calls(kw.value):
                                found = flag(id_call, "an ordering tie-break")
                                if found:
                                    yield found
                if callee in self._HEAP_FUNCS:
                    for arg in node.args:
                        if isinstance(arg, ast.Tuple):
                            for id_call in _find_id_calls(arg):
                                found = flag(
                                    id_call, "an ordering tie-break in a heap entry"
                                )
                                if found:
                                    yield found


# -- IOL002 ------------------------------------------------------------------


class UnorderedIterationRule(Rule):
    """Iteration over an unordered ``set`` where order can leak out.

    Set iteration order depends on element hashes; with string elements
    it changes run to run under hash randomization.  Any loop whose body
    feeds scheduling decisions, traces, or serialized output must walk a
    ``sorted(...)`` view or an ordered container.  (Dicts are
    insertion-ordered in Python 3.7+ and therefore allowed -- but a dict
    *built from a set* inherits the poison, which the local inference
    catches at the set itself.)

    The inference is *flow-sensitive*: statements are interpreted in
    source order, so ``names = sorted(names)`` launders a set into a
    list (no finding downstream), while a name that is a set on only
    one ``if``/``else`` path is treated as may-be-a-set afterwards
    (branch states merge by union).  Loop bodies are interpreted twice
    so loop-carried set bindings are seen on the first reported pass.
    """

    rule_id = "IOL002"
    severity = Severity.ERROR
    summary = "iteration over an unordered set"
    fix_hint = (
        "iterate sorted(the_set) (with an explicit key for non-comparable "
        "elements) or keep an ordered container alongside the set"
    )

    _SET_ANNOTATIONS = {"set", "Set", "FrozenSet", "frozenset", "MutableSet", "AbstractSet"}

    def _is_set_expr(self, node: ast.AST, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _callee_name(node) in {"set", "frozenset"}
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: a | b, a - b, ... is a set if either side is
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        base = (
            annotation.value
            if isinstance(annotation, ast.Subscript)
            else annotation
        )
        dotted = _dotted_name(base) or ""
        return dotted.split(".")[-1] in self._SET_ANNOTATIONS

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree.body, frozenset())

    def _check_scope(
        self,
        ctx: ModuleContext,
        body: List[ast.stmt],
        inherited: "frozenset[str]",
    ) -> Iterator[Finding]:
        now: Set[str] = set(inherited)
        ever: Set[str] = set(inherited)
        findings: List[Finding] = []
        nested: List[ast.stmt] = []
        self._exec_block(ctx, body, now, ever, nested, findings, report=True)
        yield from findings
        # Recurse into nested scopes; a closure can run at any time, so
        # it inherits every name that was set-typed at *some* point in
        # this scope (``ever``), minus its own parameters.
        for node in nested:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = {
                    arg.arg
                    for arg in (
                        node.args.args
                        + node.args.posonlyargs
                        + node.args.kwonlyargs
                        + [a for a in (node.args.vararg, node.args.kwarg) if a]
                    )
                }
                yield from self._check_scope(
                    ctx, node.body, frozenset(ever - params)
                )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_scope(ctx, node.body, frozenset(ever))

    # -- flow-sensitive statement interpretation -----------------------------

    def _bind(
        self, target: ast.expr, is_set: bool, now: Set[str], ever: Set[str]
    ) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                now.add(target.id)
                ever.add(target.id)
            else:
                now.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # unpacking yields elements, not the container
            for element in target.elts:
                self._bind(element, False, now, ever)

    def _expr_sites(self, node: ast.expr) -> Iterator[ast.AST]:
        """Iteration sites inside one expression (lambda bodies skipped)."""
        queue: List[ast.AST] = [node]
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            if isinstance(current, ast.Lambda):
                continue
            if isinstance(
                current,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for gen in current.generators:
                    yield gen.iter
            elif isinstance(current, ast.Call) and _callee_name(current) in {
                "list",
                "tuple",
                "enumerate",
            }:
                if current.args:
                    yield current.args[0]
            queue.extend(ast.iter_child_nodes(current))

    def _check_expr(
        self,
        ctx: ModuleContext,
        node: Optional[ast.expr],
        now: Set[str],
        findings: List[Finding],
        report: bool,
    ) -> None:
        if node is None or not report:
            return
        for site in self._expr_sites(node):
            if self._is_set_expr(site, now):
                findings.append(
                    self.finding(
                        ctx,
                        site,
                        "iterating an unordered set; order leaks into "
                        "downstream decisions",
                    )
                )

    def _exec_block(
        self,
        ctx: ModuleContext,
        body: List[ast.stmt],
        now: Set[str],
        ever: Set[str],
        nested: List[ast.stmt],
        findings: List[Finding],
        report: bool,
    ) -> None:
        for stmt in body:
            self._exec_stmt(ctx, stmt, now, ever, nested, findings, report)

    def _exec_stmt(
        self,
        ctx: ModuleContext,
        stmt: ast.stmt,
        now: Set[str],
        ever: Set[str],
        nested: List[ast.stmt],
        findings: List[Finding],
        report: bool,
    ) -> None:
        check = self._check_expr
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if report:
                nested.append(stmt)
            now.discard(stmt.name)
            return
        if isinstance(stmt, ast.Assign):
            check(ctx, stmt.value, now, findings, report)
            is_set = self._is_set_expr(stmt.value, now)
            for target in stmt.targets:
                self._bind(target, is_set, now, ever)
            return
        if isinstance(stmt, ast.AnnAssign):
            check(ctx, stmt.value, now, findings, report)
            if isinstance(stmt.target, ast.Name):
                is_set = self._is_set_annotation(stmt.annotation) or (
                    stmt.value is not None
                    and self._is_set_expr(stmt.value, now)
                )
                self._bind(stmt.target, is_set, now, ever)
            return
        if isinstance(stmt, ast.AugAssign):
            check(ctx, stmt.value, now, findings, report)
            if isinstance(stmt.target, ast.Name):
                if isinstance(
                    stmt.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
                ):
                    # s |= other keeps (or becomes) a set
                    if stmt.target.id in now or self._is_set_expr(
                        stmt.value, now
                    ):
                        now.add(stmt.target.id)
                        ever.add(stmt.target.id)
                else:
                    now.discard(stmt.target.id)
            return
        if isinstance(stmt, ast.If):
            check(ctx, stmt.test, now, findings, report)
            then_state = set(now)
            else_state = set(now)
            self._exec_block(
                ctx, stmt.body, then_state, ever, nested, findings, report
            )
            self._exec_block(
                ctx, stmt.orelse, else_state, ever, nested, findings, report
            )
            now.clear()
            now.update(then_state | else_state)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            check(ctx, stmt.iter, now, findings, report)
            if report and self._is_set_expr(stmt.iter, now):
                findings.append(
                    self.finding(
                        ctx,
                        stmt.iter,
                        "iterating an unordered set; order leaks into "
                        "downstream decisions",
                    )
                )
            pre = set(now)
            self._bind(stmt.target, False, now, ever)
            # silent pre-pass so loop-carried set bindings are visible
            # when the body is reported
            carried = set(now)
            self._exec_block(
                ctx, stmt.body, carried, ever, nested, findings, report=False
            )
            now.update(carried)
            self._exec_block(
                ctx, stmt.body, now, ever, nested, findings, report
            )
            now.update(pre)  # zero-iteration path
            else_state = set(now)
            self._exec_block(
                ctx, stmt.orelse, else_state, ever, nested, findings, report
            )
            now.update(else_state)
            return
        if isinstance(stmt, ast.While):
            check(ctx, stmt.test, now, findings, report)
            pre = set(now)
            carried = set(now)
            self._exec_block(
                ctx, stmt.body, carried, ever, nested, findings, report=False
            )
            now.update(carried)
            self._exec_block(
                ctx, stmt.body, now, ever, nested, findings, report
            )
            now.update(pre)
            else_state = set(now)
            self._exec_block(
                ctx, stmt.orelse, else_state, ever, nested, findings, report
            )
            now.update(else_state)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                check(ctx, item.context_expr, now, findings, report)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, False, now, ever)
            self._exec_block(
                ctx, stmt.body, now, ever, nested, findings, report
            )
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(
                ctx, stmt.body, now, ever, nested, findings, report
            )
            for handler in stmt.handlers:
                handler_state = set(now)
                self._exec_block(
                    ctx,
                    handler.body,
                    handler_state,
                    ever,
                    nested,
                    findings,
                    report,
                )
                now.update(handler_state)
            self._exec_block(
                ctx, stmt.orelse, now, ever, nested, findings, report
            )
            self._exec_block(
                ctx, stmt.finalbody, now, ever, nested, findings, report
            )
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    now.discard(target.id)
            return
        # simple statements: check any embedded expressions
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                check(ctx, child, now, findings, report)


# -- IOL003 ------------------------------------------------------------------


class AmbientEntropyRule(Rule):
    """Wall clocks and entropy outside the sanctioned rng/clock modules.

    Every stochastic or temporal input must flow from the seeded
    ``repro.sim.rng`` streams or the simulated ``repro.sim.clock`` timer,
    or replays stop being bit-identical.
    """

    rule_id = "IOL003"
    severity = Severity.ERROR
    summary = "ambient randomness or wall-clock access outside rng/clock"
    fix_hint = (
        "draw from a seeded repro.sim.rng.RandomSource stream or read "
        "the simulated repro.sim.clock.GlobalTimer instead"
    )

    _BANNED_MODULES = {"random", "secrets"}
    _BANNED_ATTRS: Dict[str, Set[str]] = {
        "time": {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "clock",
        },
        "os": {"urandom", "getrandom"},
        "uuid": {"uuid1", "uuid4"},
        "datetime": {"now", "utcnow", "today"},
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.config.in_rng_allowlist(ctx.rel_path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED_MODULES:
                        yield self.finding(
                            ctx, node, f"import of nondeterministic module {root!r}"
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in self._BANNED_MODULES:
                    yield self.finding(
                        ctx, node, f"import from nondeterministic module {root!r}"
                    )
                elif root in self._BANNED_ATTRS:
                    banned = self._BANNED_ATTRS[root]
                    for alias in node.names:
                        if alias.name in banned:
                            yield self.finding(
                                ctx,
                                node,
                                f"import of {root}.{alias.name} "
                                "(wall clock / entropy source)",
                            )
            elif isinstance(node, ast.Attribute):
                found = self._check_attribute(ctx, node)
                if found:
                    yield found

    def _check_attribute(
        self, ctx: ModuleContext, node: ast.Attribute
    ) -> Optional[Finding]:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        root_alias, rest = parts[0], parts[1:]
        module = ctx.module_aliases.get(root_alias)
        if module is None and root_alias in ctx.from_imports:
            from_module, original = ctx.from_imports[root_alias]
            # `from datetime import datetime/date` then datetime.now()
            if from_module == "datetime" and original in {"datetime", "date"}:
                module = "datetime"
        if module is None:
            return None
        module_root = module.split(".")[0]
        if module_root == "numpy" and rest and rest[0] == "random":
            return self.finding(
                ctx,
                node,
                "numpy.random global state is nondeterministic across "
                "runs; derive a Generator from the experiment seed",
            )
        banned = self._BANNED_ATTRS.get(module_root)
        if banned and rest and rest[-1] in banned:
            return self.finding(
                ctx, node, f"call into {module_root}.{rest[-1]} (wall clock / entropy)"
            )
        return None


# -- IOL004 ------------------------------------------------------------------


class FloatSlotRule(Rule):
    """Float values flowing into integer slot-count positions.

    The hypervisor schedules in whole slots; a float that sneaks into a
    slot count truncates deadlines or supply windows silently, and
    ``float ==`` comparisons on slot math are representation-dependent.
    ``as_slot_count`` is the sanctioned boundary.

    Trace recorders are a slot sink too: ``<trace-ish>.record(t, ...)``
    stamps ``t`` as an event time, and the recorder boundary rejects
    fractional values at run time -- this rule catches the same mistake
    statically, before a sweep burns an hour to die on one event.
    """

    rule_id = "IOL004"
    severity = Severity.ERROR
    summary = "float literal/arithmetic in a slot-count position"
    fix_hint = (
        "route the value through as_slot_count(...) at the boundary; "
        "compare slot quantities as integers, never with float =="
    )

    @staticmethod
    def _receiver_name(call: ast.Call) -> Optional[str]:
        """Simple name of the object a method is called on, if any."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id
        if isinstance(receiver, ast.Attribute):
            return receiver.attr
        return None

    def _is_trace_record(self, ctx: ModuleContext, call: ast.Call) -> bool:
        if not (
            isinstance(call.func, ast.Attribute) and call.func.attr == "record"
        ):
            return False
        receiver = self._receiver_name(call)
        if receiver is None:
            return False
        lowered = receiver.lower()
        return any(
            marker in lowered for marker in ctx.config.trace_record_markers
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        slot_scope = ctx.config.in_slot_scope(ctx.rel_path)
        marker = ctx.config.slot_call_marker
        exempt = set(ctx.config.slot_call_exempt)
        for node in ast.walk(ctx.tree):
            if slot_scope and isinstance(node, ast.Compare):
                if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    sides = [node.left, *node.comparators]
                    if any(_is_floatish(side) for side in sides):
                        yield self.finding(
                            ctx,
                            node,
                            "float equality on slot math; exact comparison "
                            "of floats is representation-dependent",
                        )
            elif isinstance(node, ast.Call):
                callee = _callee_name(node)
                if (
                    callee
                    and marker in callee.lower()
                    and callee not in exempt
                ):
                    args = list(node.args) + [kw.value for kw in node.keywords]
                    for arg in args:
                        if _is_floatish(arg):
                            yield self.finding(
                                ctx,
                                node,
                                f"float value passed to slot consumer "
                                f"{callee}(); wrap it in as_slot_count(...)",
                            )
                            break
                elif self._is_trace_record(ctx, node):
                    time_args = list(node.args[:1]) + [
                        kw.value
                        for kw in node.keywords
                        if kw.arg in ("time", "slot")
                    ]
                    for arg in time_args:
                        if _is_floatish(arg):
                            yield self.finding(
                                ctx,
                                node,
                                "float event time passed to a trace "
                                "recorder's record(); event times are "
                                "integer slot indices",
                            )
                            break


# -- IOL005 ------------------------------------------------------------------


class UnsortedJsonRule(Rule):
    """``json.dumps`` without ``sort_keys=True`` in digest/trace modules.

    Digests and trace files are compared byte-for-byte across runs and
    machines; JSON key order must therefore be pinned, not inherited
    from dict construction order.
    """

    rule_id = "IOL005"
    severity = Severity.ERROR
    summary = "json.dumps without sort_keys=True in a digest/trace module"
    fix_hint = "pass sort_keys=True so serialized key order is pinned"

    _FUNCS = {"dumps", "dump"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not (
            ctx.config.in_digest_scope(ctx.rel_path) or ctx.imports_hashlib
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_json_dump(ctx, node):
                continue
            sort_kw = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            if sort_kw is None:
                yield self.finding(
                    ctx,
                    node,
                    "json serialization without sort_keys=True in a "
                    "digest/trace-producing module",
                )
            elif not (
                isinstance(sort_kw.value, ast.Constant)
                and sort_kw.value.value is True
            ):
                yield self.finding(
                    ctx,
                    node,
                    "sort_keys must be the literal True in digest/trace "
                    "modules so key order is statically pinned",
                )

    def _is_json_dump(self, ctx: ModuleContext, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self._FUNCS:
            dotted = _dotted_name(func)
            if dotted:
                root = dotted.split(".")[0]
                return ctx.module_aliases.get(root) == "json"
            return False
        if isinstance(func, ast.Name) and func.id in self._FUNCS:
            origin = ctx.from_imports.get(func.id)
            return origin is not None and origin[0] == "json"
        return False


# -- IOL006 ------------------------------------------------------------------


class SharedMutableRule(Rule):
    """Mutable defaults and shared mutable class attributes.

    A mutable default argument is one object shared by every call; a
    mutable class attribute on a scheduler/pool class is one object
    shared by every instance.  Both couple logically independent runs
    through hidden state and break replay isolation.
    """

    rule_id = "IOL006"
    severity = Severity.ERROR
    summary = "mutable default argument / shared mutable class attribute"
    fix_hint = (
        "default to None and allocate inside the function, or build the "
        "container in __init__ so each instance owns its state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_value(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {node.name}(); "
                            "one object is shared by every call",
                        )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        markers = ctx.config.scheduler_class_markers
        if not any(marker in node.name for marker in markers):
            return
        if self._is_dataclass(node):
            # dataclasses reject mutable defaults themselves
            return
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if all(name.startswith("__") and name.endswith("__") for name in names):
                continue  # __slots__ and friends are effectively const
            yield self.finding(
                ctx,
                value,
                f"shared mutable class attribute "
                f"{', '.join(names) or '<target>'} on scheduler/pool class "
                f"{node.name}; every instance aliases one object",
            )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted_name(target) or ""
            if name.split(".")[-1] == "dataclass":
                return True
        return False


# -- registry ----------------------------------------------------------------

_RULES: Tuple[Rule, ...] = (
    IdentityKeyRule(),
    UnorderedIterationRule(),
    AmbientEntropyRule(),
    FloatSlotRule(),
    UnsortedJsonRule(),
    SharedMutableRule(),
)


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in rule-id order."""
    return _RULES


def rule_ids() -> List[str]:
    return [rule.rule_id for rule in _RULES]


__all__ = [
    "ModuleContext",
    "Rule",
    "IdentityKeyRule",
    "UnorderedIterationRule",
    "AmbientEntropyRule",
    "FloatSlotRule",
    "UnsortedJsonRule",
    "SharedMutableRule",
    "all_rules",
    "rule_ids",
]
