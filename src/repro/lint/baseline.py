"""Baseline file: pre-existing findings tracked as explicit debt.

The baseline is a sorted JSON document mapping finding fingerprints to a
human-readable locator.  Findings whose fingerprint appears in the
baseline are reported but do not fail the run; new findings always do.
Fingerprints hash the offending *line text* rather than line numbers,
so edits elsewhere in a file do not invalidate entries (see
:meth:`repro.lint.findings.Finding.fingerprint`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.lint.findings import Finding

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """In-memory view of the baseline file."""

    entries: Dict[str, str] = field(default_factory=dict)

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline covering every non-suppressed finding given."""
        entries = {
            f.fingerprint(): f"{f.path}: {f.rule_id} {f.line_text}".strip()
            for f in findings
            if not f.suppressed
        }
        return cls(entries=entries)

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        target = Path(path)
        if not target.is_file():
            return cls()
        payload = json.loads(target.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(
                f"baseline {target} is not an iolint baseline document"
            )
        entries = payload["findings"]
        if not isinstance(entries, dict):
            raise ValueError(f"baseline {target}: 'findings' must be an object")
        return cls(entries=dict(entries))

    def save(self, path: PathLike) -> Path:
        """Write the baseline with sorted keys (byte-stable across runs)."""
        target = Path(path)
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "iolint",
            "findings": dict(sorted(self.entries.items())),
        }
        target.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target


__all__ = ["Baseline"]
