"""Finding and severity primitives for the iolint analyzer.

A :class:`Finding` is one rule violation at one source location.  The
engine decorates findings with their disposition -- *active* findings
fail the build, *suppressed* findings carry an inline justification,
*baselined* findings are pre-existing debt tracked in the baseline file.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the build when active."""

    ERROR = "error"
    WARNING = "warning"


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""
    #: Source text of the offending line (stripped); feeds the
    #: line-drift-tolerant baseline fingerprint.
    line_text: str = ""
    #: Disambiguates repeated identical findings on identical lines.
    occurrence: int = 0
    suppressed: bool = False
    justification: Optional[str] = None
    baselined: bool = False

    @property
    def active(self) -> bool:
        """True when this finding should fail the run."""
        return not self.suppressed and not self.baselined

    def fingerprint(self) -> str:
        """Stable identity for baselining, tolerant of line drift.

        Hashes the path, rule, the *text* of the offending line and an
        occurrence counter -- not the line number -- so unrelated edits
        above a baselined finding do not invalidate the baseline.
        """
        payload = "::".join(
            (self.path, self.rule_id, self.line_text, str(self.occurrence))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by ``--format=json``)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
            "justification": self.justification,
            "baselined": self.baselined,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"
