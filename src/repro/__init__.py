"""I/O-GUARD reproduction: real-time I/O virtualization, in Python.

A simulation + schedulability-analysis reproduction of *"I/O-GUARD:
Hardware/Software Co-Design for I/O Virtualization with Guaranteed
Real-time Performance"* (DAC 2021).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (event heap, generator processes,
    resources, global timer, seeded RNG, tracing).
``repro.tasks``
    I/O task models, random generators, the automotive case-study
    catalog, synthetic load padding, JSON serialization.
``repro.analysis``
    Sec. IV: supply/demand bound functions, Theorems 1-4, server
    dimensioning, response-time bounds, sensitivity analysis, a
    brute-force EDF oracle.
``repro.core``
    The hypervisor: time slot table, random-access priority queues,
    per-VM I/O pools, the two-layer preemptive-EDF scheduler, the
    virtualization manager/driver pair, admission control, mode changes.
``repro.noc``
    Mesh NoC: XY routing, event-driven network, calibrated contention
    model, static worst-case latency analysis.
``repro.hw``
    I/O controllers (SPI/I2C/UART/Ethernet/FlexRay/CAN/GPIO), devices,
    memory banks, processors hosting guest VMs.
``repro.virt``
    Software level: footprint model (Fig. 6), stack timing models,
    structural RTOS model (Fig. 3), software VMM for the RT-Xen baseline.
``repro.baselines``
    Full systems behind one interface: BS|Legacy, BS|RT-XEN, BS|BV and
    I/O-GUARD-x.
``repro.hwcost``
    FPGA resource/power/Fmax models (Table I, Fig. 8).
``repro.metrics``
    Success ratios, throughput, latency statistics.
``repro.exp``
    Experiment drivers regenerating every figure and table, plus the
    isolation and predictability extensions and CSV/JSON export.

Quick start: see ``examples/quickstart.py`` and the README.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
