"""Random cause-effect-chain workload generation.

Combines the repo's standard utilization recipe (UUniFast, from
:mod:`repro.sim.rng`) with the WATERS automotive benchmark's period
distribution: periods are drawn from a small set of characteristic
values with the empirical share each has in production engine-control
software (Kramer, Ziegenbein & Hamann, WATERS 2015), instead of
log-uniformly.  Chains follow the paper's motivating shape: the first
hop receives on an Ethernet controller, the last hop transmits on a
FlexRay controller, and the hops in between are VM compute/I/O tasks,
assigned round-robin across VMs so chains cross the virtualization
boundary.

All tasks are generated as R-channel (``RUNTIME``) tasks: chain
instrumentation reconstructs end-to-end latencies from pool-enqueue and
completion trace events, which only the R-channel path emits.  Chains
over hand-built task sets may still include P-channel hops -- the
analysis handles them via the table-placement bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.chains.model import CauseEffectChain, validate_chains
from repro.sim.rng import RandomSource
from repro.tasks.generators import target_wcet
from repro.tasks.task import Criticality, IOTask, TaskKind
from repro.tasks.taskset import TaskSet

#: WATERS 2015 characteristic periods, in milliseconds ...
WATERS_PERIODS_MS: Tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 1000)
#: ... and the share (percent) of runnables at each period.
WATERS_PERIOD_SHARES: Tuple[float, ...] = (3, 2, 2, 25, 25, 3, 20, 1, 4)


@dataclass(frozen=True)
class ChainWorkloadConfig:
    """Knobs for one generated chain workload.

    Attributes
    ----------
    chain_count:
        Number of independent cause-effect chains.
    hops_min, hops_max:
        Uniform range for the per-chain hop count.
    total_utilization:
        Aggregate utilization split over *all* hops via UUniFast.
    vm_count:
        Hops are assigned to VMs round-robin over this many VMs.
    periods:
        Candidate periods in slots; defaults to the WATERS values at
        ``slots_per_ms`` slots per millisecond, with the 1/2 ms classes
        dropped (they would force every such hop to saturate its slot).
    period_weights:
        Draw weights matching ``periods``.
    slots_per_ms:
        Scale applied to :data:`WATERS_PERIODS_MS` for the default
        period set.
    first_device, last_device:
        Devices of the chain's entry and exit hops.
    compute_devices:
        Devices for interior hops, assigned round-robin.
    max_hop_utilization:
        UUniFast redraw threshold (a hop above it cannot be realized
        with ``C <= T``).
    """

    chain_count: int = 4
    hops_min: int = 2
    hops_max: int = 4
    total_utilization: float = 0.5
    vm_count: int = 2
    periods: Tuple[int, ...] = ()
    period_weights: Tuple[float, ...] = ()
    slots_per_ms: int = 10
    first_device: str = "ethernet0"
    last_device: str = "flexray0"
    compute_devices: Tuple[str, ...] = ("io0",)
    max_hop_utilization: float = 1.0

    def resolved_periods(self) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """The (periods, weights) pair after defaulting and validation."""
        periods = self.periods
        weights = self.period_weights
        if not periods:
            periods = tuple(
                ms * self.slots_per_ms for ms in WATERS_PERIODS_MS[2:]
            )
            weights = WATERS_PERIOD_SHARES[2:]
        if not weights:
            weights = tuple(1.0 for _ in periods)
        if len(weights) != len(periods):
            raise ValueError(
                f"{len(self.period_weights)} period weights for "
                f"{len(periods)} periods"
            )
        if any(period < 2 for period in periods):
            raise ValueError(f"periods must be >= 2 slots, got {periods}")
        return periods, tuple(float(w) for w in weights)

    def validate(self) -> None:
        if self.chain_count < 1:
            raise ValueError(f"chain_count must be >= 1, got {self.chain_count}")
        if not 1 <= self.hops_min <= self.hops_max:
            raise ValueError(
                f"need 1 <= hops_min <= hops_max, got "
                f"[{self.hops_min}, {self.hops_max}]"
            )
        if self.total_utilization <= 0:
            raise ValueError(
                f"total_utilization must be positive, got "
                f"{self.total_utilization}"
            )
        if self.vm_count < 1:
            raise ValueError(f"vm_count must be >= 1, got {self.vm_count}")
        self.resolved_periods()


@dataclass(frozen=True)
class ChainWorkload:
    """A generated task set plus the chains drawn over it."""

    taskset: TaskSet
    chains: Tuple[CauseEffectChain, ...]

    @property
    def utilization(self) -> float:
        return self.taskset.utilization

    def summary(self) -> str:
        hops = sum(len(chain) for chain in self.chains)
        return (
            f"{len(self.chains)} chains, {hops} hops, "
            f"U={self.taskset.utilization:.3f}, "
            f"{len(self.taskset.vm_ids())} VMs"
        )


def _hop_device(config: ChainWorkloadConfig, hop: int, hops: int) -> str:
    if hop == 0:
        return config.first_device
    if hop == hops - 1:
        return config.last_device
    interior = hop - 1
    return config.compute_devices[interior % len(config.compute_devices)]


def _draw_utilizations(
    rng: RandomSource, n: int, total: float, cap: float
) -> List[float]:
    if total > n * cap:
        raise ValueError(
            f"cannot pack utilization {total} into {n} hops capped at {cap}"
        )
    for _attempt in range(100):
        utilizations = rng.uunifast(n, total)
        if all(u <= cap for u in utilizations):
            return utilizations
    raise ValueError(
        f"could not draw {n} hop utilizations <= {cap} summing to {total}"
    )


def generate_chain_workload(
    seed: int,
    config: ChainWorkloadConfig = ChainWorkloadConfig(),
    *,
    name: str = "chains",
) -> ChainWorkload:
    """Draw one chain workload; bit-identical for a fixed ``(seed, config)``.

    All randomness flows from a single :class:`RandomSource` derived
    from ``seed``, so workloads replay identically across processes and
    ``--jobs`` settings (the determinism contract).
    """
    config.validate()
    periods, weights = config.resolved_periods()
    rng = RandomSource(seed, f"{name}.workload")
    hop_counts = [
        rng.randint(config.hops_min, config.hops_max)
        for _ in range(config.chain_count)
    ]
    total_hops = sum(hop_counts)
    utilizations = _draw_utilizations(
        rng, total_hops, config.total_utilization, config.max_hop_utilization
    )
    taskset = TaskSet(name=name)
    chains: List[CauseEffectChain] = []
    cursor = 0
    for chain_index, hops in enumerate(hop_counts):
        hop_names: List[str] = []
        for hop in range(hops):
            period = rng.choice_weighted(periods, weights)
            utilization = utilizations[cursor]
            wcet = target_wcet(utilization, period)
            task = IOTask(
                name=f"{name}.c{chain_index}h{hop}",
                period=period,
                wcet=wcet,
                deadline=period,
                vm_id=cursor % config.vm_count,
                kind=TaskKind.RUNTIME,
                criticality=Criticality.FUNCTION,
                device=_hop_device(config, hop, hops),
                payload_bytes=rng.choice([16, 32, 64, 128, 256]),
            )
            taskset.add(task)
            hop_names.append(task.name)
            cursor += 1
        chains.append(
            CauseEffectChain(
                name=f"{name}.chain{chain_index}", task_names=tuple(hop_names)
            )
        )
    workload = ChainWorkload(taskset=taskset, chains=tuple(chains))
    validate_chains(workload.chains, workload.taskset)
    return workload
