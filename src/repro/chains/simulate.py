"""Simulated end-to-end chain latencies.

Runs a built :class:`repro.api.System` on the hypervisor model with a
chain-scoped trace recorder attached, then hands the trace to
:mod:`repro.obs.chains` to reconstruct every observable chain instance
and reaction.  The report pairs naturally with
:func:`repro.chains.analysis.analyze_chain_set`: the differential
property suite asserts ``observed <= bound`` for every instance of
every randomly generated system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.chains.model import CauseEffectChain, validate_chains
from repro.obs.chains import (
    CHAIN_TRACE_CATEGORIES,
    ChainInstance,
    ChainReaction,
    derive_chain_instances,
    derive_chain_reactions,
)
from repro.sim.trace import TraceRecorder


@dataclass
class ChainSimulationReport:
    """Observed end-to-end behaviour of every chain over one run."""

    horizon: int
    completed: int
    deadline_misses: int
    instances: Dict[str, Tuple[ChainInstance, ...]] = field(
        default_factory=dict
    )
    reactions: Dict[str, Tuple[ChainReaction, ...]] = field(
        default_factory=dict
    )

    def __bool__(self) -> bool:
        return self.deadline_misses == 0

    def max_data_age(self, chain_name: str) -> Optional[int]:
        """Largest observed data age; None without a full instance."""
        observed = self.instances.get(chain_name, ())
        if not observed:
            return None
        return max(instance.data_age for instance in observed)

    def max_reaction(self, chain_name: str) -> Optional[int]:
        """Largest observed reaction; None without a full sample."""
        observed = self.reactions.get(chain_name, ())
        if not observed:
            return None
        return max(sample.reaction for sample in observed)

    def instance_count(self) -> int:
        return sum(len(entries) for entries in self.instances.values())

    def summary(self) -> str:
        return (
            f"simulated {self.horizon} slots: {self.completed} jobs, "
            f"{self.deadline_misses} misses, "
            f"{self.instance_count()} chain instances over "
            f"{len(self.instances)} chains"
        )


def simulate_chains(
    system: "object",
    chains: Tuple[CauseEffectChain, ...],
    horizon: int,
) -> ChainSimulationReport:
    """Simulate ``system`` and measure every chain's end-to-end latency.

    ``system`` is a :class:`repro.api.System`; the import is deferred
    because :mod:`repro.api` re-exports this module's report type.
    """
    from repro.api import System, simulate

    if not isinstance(system, System):
        raise TypeError(f"expected a repro.api.System, got {type(system)!r}")
    all_tasks = system.tasks
    validate_chains(chains, all_tasks)
    recorder = TraceRecorder(categories=list(CHAIN_TRACE_CATEGORIES))
    run = simulate(system, horizon, trace=recorder)
    instances: Dict[str, Tuple[ChainInstance, ...]] = {}
    reactions: Dict[str, Tuple[ChainReaction, ...]] = {}
    for chain in chains:
        instances[chain.name] = tuple(
            derive_chain_instances(recorder, chain)
        )
        reactions[chain.name] = tuple(
            derive_chain_reactions(recorder, chain)
        )
    return ChainSimulationReport(
        horizon=horizon,
        completed=run.completed,
        deadline_misses=run.deadline_misses,
        instances=instances,
        reactions=reactions,
    )
