"""End-to-end latency bounds for cause-effect chains.

Composes the per-hop response-time bounds (Sec. IV's Theorem 1-4
machinery: Eq. 8 server supply against EDF demand for R-channel hops,
table placement for P-channel hops) into the two standard end-to-end
metrics for implicit (register) communication, where each job reads its
input at release and publishes its output at completion:

* **maximum data age**: ``sum_i R_i + sum_{i<n} T_i``.  Walking
  backward from an output job released at ``r_n``, the freshest
  predecessor value was published by a hop-``i`` job released at most
  ``T_i + R_i`` before the hop-``i+1`` release (periodic releases put a
  job in every window of length ``T_i``, and it publishes within
  ``R_i``); the output itself completes within ``R_n``.
* **maximum reaction time**: ``sum_i (T_i + R_i)``.  An input arriving
  just after a first-hop release waits up to ``T_1`` for the next
  sample, then propagates forward paying at most ``T_i`` to be picked
  up plus ``R_i`` to complete per hop.

The two differ by exactly ``T_n`` (reaction adds the sampling delay of
the *first* hop; data age drops the period of the *last*), which the
tests assert as an invariant.  Both bounds are sound but pessimistic --
the differential suite in ``tests/properties`` checks the sound
direction against every simulated chain instance.

P-channel hops use the table-placement bound ``R = D`` (their slots all
land inside the deadline window by construction); R-channel hops use
:func:`repro.analysis.response_time.response_time_bound` against the
hop VM's *entire* run-time population -- a superset of the demand the
hop actually competes with on any one device, hence sound under the
per-device simulation model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.engine import resolve_engine
from repro.analysis.response_time import (
    pchannel_response_bound,
    response_time_bound,
)
from repro.chains.model import CauseEffectChain
from repro.core.gsched import ServerSpec
from repro.tasks.task import TaskKind
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class HopBound:
    """Per-hop ingredients of the end-to-end bounds."""

    task_name: str
    period: int
    deadline: int
    #: Sound response-time bound in slots; None when the hop's WCRT
    #: iteration diverged past its deadline (hop unschedulable).
    response_bound: Optional[int]
    #: "runtime" (R-channel, server bound) or "predefined" (P-channel,
    #: table-placement bound).
    channel: str


@dataclass(frozen=True)
class ChainBound:
    """Analytical end-to-end verdict for one chain."""

    chain_name: str
    hops: Tuple[HopBound, ...]

    @property
    def bounded(self) -> bool:
        """True when every hop has a finite response-time bound."""
        return all(hop.response_bound is not None for hop in self.hops)

    @property
    def data_age_bound(self) -> Optional[int]:
        """``sum_i R_i + sum_{i<n} T_i``; None when any hop diverged."""
        if not self.bounded:
            return None
        responses = sum(hop.response_bound or 0 for hop in self.hops)
        periods = sum(hop.period for hop in self.hops[:-1])
        return responses + periods

    @property
    def reaction_time_bound(self) -> Optional[int]:
        """``sum_i (T_i + R_i)``; None when any hop diverged."""
        if not self.bounded:
            return None
        return sum(
            hop.period + (hop.response_bound or 0) for hop in self.hops
        )

    def summary(self) -> str:
        age = self.data_age_bound
        reaction = self.reaction_time_bound
        return (
            f"{self.chain_name}: {len(self.hops)} hops, "
            f"data age <= {age if age is not None else 'unbounded'}, "
            f"reaction <= {reaction if reaction is not None else 'unbounded'}"
        )


def analyze_chain(
    chain: CauseEffectChain,
    tasks: TaskSet,
    servers: Mapping[int, ServerSpec],
    *,
    engine: Optional[str] = None,
) -> ChainBound:
    """Bound one chain's end-to-end latencies over the two-layer schedule.

    ``tasks`` must contain every hop plus the rest of each hop VM's
    run-time population (the competing EDF demand); ``servers`` maps
    each hop VM to its ``(Pi, Theta)`` reservation.
    """
    resolved = resolve_engine(engine)
    populations: Dict[int, TaskSet] = tasks.runtime().by_vm()
    hops = []
    for task in chain.resolve(tasks):
        if task.kind == TaskKind.PREDEFINED:
            bound = pchannel_response_bound(task)
            channel = "predefined"
        else:
            if task.vm_id not in servers:
                raise KeyError(
                    f"chain {chain.name!r} hop {task.name!r} runs on VM "
                    f"{task.vm_id}, which has no server; "
                    f"configured: {sorted(servers)}"
                )
            spec = servers[task.vm_id]
            bound = response_time_bound(
                spec.pi,
                spec.theta,
                populations[task.vm_id],
                task.name,
                engine=resolved,
            )
            channel = "runtime"
        hops.append(
            HopBound(
                task_name=task.name,
                period=task.period,
                deadline=task.deadline,
                response_bound=bound.wcrt,
                channel=channel,
            )
        )
    return ChainBound(chain_name=chain.name, hops=tuple(hops))


def analyze_chain_set(
    chains: Tuple[CauseEffectChain, ...],
    tasks: TaskSet,
    servers: Mapping[int, ServerSpec],
    *,
    engine: Optional[str] = None,
) -> Dict[str, ChainBound]:
    """Per-chain bounds for a whole workload, keyed by chain name."""
    return {
        chain.name: analyze_chain(chain, tasks, servers, engine=engine)
        for chain in chains
    }
