"""Cause-effect chains: model, generation, analysis and simulation.

The automotive systems I/O-GUARD targets care about *end-to-end*
latency -- sensor in, compute, actuator out -- not isolated request
response times.  This package models such cause-effect chains over the
repo's task/device vocabulary and bounds (analytically) and measures
(from simulation traces) their maximum data age and maximum reaction
time.  See :mod:`repro.chains.model` for the communication semantics.
"""

from repro.chains.analysis import (
    ChainBound,
    HopBound,
    analyze_chain,
    analyze_chain_set,
)
from repro.chains.generators import (
    WATERS_PERIOD_SHARES,
    WATERS_PERIODS_MS,
    ChainWorkload,
    ChainWorkloadConfig,
    generate_chain_workload,
)
from repro.chains.model import CauseEffectChain, validate_chains
from repro.chains.simulate import ChainSimulationReport, simulate_chains

__all__ = [
    "CauseEffectChain",
    "validate_chains",
    "ChainWorkload",
    "ChainWorkloadConfig",
    "generate_chain_workload",
    "WATERS_PERIODS_MS",
    "WATERS_PERIOD_SHARES",
    "HopBound",
    "ChainBound",
    "analyze_chain",
    "analyze_chain_set",
    "ChainSimulationReport",
    "simulate_chains",
]
