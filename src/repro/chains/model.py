"""Cause-effect chains over I/O tasks.

The automotive workloads I/O-GUARD targets are not isolated requests
but *chains*: a sensor frame arrives on one device, is processed by one
or more VM tasks, and leaves on another device (e.g. Ethernet-in ->
VM compute -> FlexRay-out).  A :class:`CauseEffectChain` is an ordered
sequence of task names -- the *hops* -- resolved against a
:class:`~repro.tasks.taskset.TaskSet`.  Communication follows the
register semantics standard in the automotive end-to-end literature
(implicit communication): every job reads its input at release and
publishes its output at completion; a hop always sees the *latest*
published value of its predecessor.

Two end-to-end metrics matter under these semantics:

* **maximum data age** -- how stale the data behind an output can be:
  the output's completion time minus the release of the first-hop job
  whose sample it (transitively) consumed;
* **maximum reaction time** -- how long an external input arriving just
  after a first-hop release can take to be reflected in an output.

:mod:`repro.chains.analysis` bounds both from the per-hop response-time
bounds; :mod:`repro.obs.chains` measures both from simulation traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class CauseEffectChain:
    """An ordered sequence of task hops, identified by task name.

    The chain itself is pure structure; parameters (periods, devices,
    VMs) live on the tasks it resolves to.  Hops may cross VMs and
    devices freely -- that is the point.
    """

    name: str
    task_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.task_names:
            raise ValueError(f"chain {self.name!r} has no hops")
        if len(set(self.task_names)) != len(self.task_names):
            raise ValueError(
                f"chain {self.name!r} repeats a task; hops must be distinct "
                f"tasks: {self.task_names}"
            )

    def __len__(self) -> int:
        return len(self.task_names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.task_names)

    def resolve(self, tasks: TaskSet) -> List[IOTask]:
        """The hop tasks, in chain order; raises on an unknown hop."""
        resolved = []
        for task_name in self.task_names:
            if task_name not in tasks:
                raise KeyError(
                    f"chain {self.name!r} references unknown task "
                    f"{task_name!r} (task set {tasks.name!r})"
                )
            resolved.append(tasks[task_name])
        return resolved

    def devices(self, tasks: TaskSet) -> List[str]:
        """Device of each hop, in chain order (duplicates preserved)."""
        return [task.device for task in self.resolve(tasks)]

    def vm_ids(self, tasks: TaskSet) -> List[int]:
        """VM of each hop, in chain order (duplicates preserved)."""
        return [task.vm_id for task in self.resolve(tasks)]

    def summary(self) -> str:
        return f"{self.name}: {' -> '.join(self.task_names)}"


def validate_chains(
    chains: Tuple[CauseEffectChain, ...], tasks: TaskSet
) -> None:
    """Check every chain resolves and chain names are unique."""
    seen = set()
    for chain in chains:
        if chain.name in seen:
            raise ValueError(f"duplicate chain name {chain.name!r}")
        seen.add(chain.name)
        chain.resolve(tasks)
