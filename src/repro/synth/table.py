"""Slot-table synthesis: computing sigma* from an integer model.

:func:`~repro.core.timeslot.build_pchannel_table` packs pre-defined
tasks greedily and cannot express *relations between jobs* -- a sensor
read that must precede the actuator write consuming it, a bus
transaction that needs a gap after its request phase.  This module
models the P-channel table exactly:

* every job of every strictly-periodic pre-defined task (release
  ``offset + j*T``, window ``[release, release + D)``) must receive
  ``C`` distinct slots inside its window, with windows wrapping across
  the hyper-period boundary (slot indices are taken mod ``H``);
* slots are exclusive (one I/O resource);
* :class:`TableConstraint` imposes precedence with minimum / maximum
  time lags between same-index jobs of two equal-period tasks.

The model is solved to the *lexicographically minimal* feasible
assignment under a canonical decision order (jobs by release then
constraint rank, slots of a job ascending, candidate offsets in the
chosen ``objective`` order) by
:func:`~repro.synth.search.lexmin_backtrack`; the optional CP-SAT
backend (``solver="ortools"``) reproduces the same assignment by
sequential fixing against the identical order and constraint set, so
both backends emit byte-identical tables by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.timeslot import MAX_TABLE_LENGTH, TimeSlotTable
from repro.synth.search import SearchStats, lexmin_backtrack
from repro.synth.solvers import require_solver
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

#: Supported slot-preference orders (mirrors timeslot.PLACEMENTS).
OBJECTIVES = ("spread", "packed")


@dataclass(frozen=True)
class TableConstraint:
    """Precedence with time lag between two pre-defined tasks.

    For every job index ``j``, job ``j`` of ``after`` must start at
    least ``min_lag`` slots after job ``j`` of ``before`` completes
    (``min_lag = 0``: merely afterwards), and -- when ``max_lag`` is set
    -- at most ``max_lag`` slots after.  Both tasks must have the same
    period (same job cadence) and ``before.offset <= after.offset``
    (the decision order releases the predecessor first).
    """

    before: str
    after: str
    min_lag: int = 0
    max_lag: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_lag < 0:
            raise ValueError(f"min_lag must be >= 0, got {self.min_lag}")
        if self.max_lag is not None and self.max_lag < self.min_lag:
            raise ValueError(
                f"max_lag {self.max_lag} < min_lag {self.min_lag} "
                f"for {self.before!r} -> {self.after!r}"
            )
        if self.before == self.after:
            raise ValueError(f"constraint relates {self.before!r} to itself")


@dataclass
class _Job:
    """One job of a pre-defined task, in absolute (unwrapped) slots."""

    task: IOTask
    index: int
    release: int

    @property
    def window_end(self) -> int:
        return self.release + self.task.deadline


@dataclass
class TableSynthesis:
    """Outcome of one slot-table synthesis."""

    feasible: bool
    hyperperiod: int
    solver: str
    table: Optional[TimeSlotTable] = None
    #: task name -> per-job absolute slot lists (sorted by job index).
    placements: Dict[str, List[List[int]]] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)
    reason: str = ""
    #: Device/slot of the blocking job when infeasibility is localized.
    failed_device: Optional[str] = None
    failed_slot: Optional[int] = None

    def pattern(self) -> List[int]:
        """The 0/1 occupancy pattern (empty when infeasible)."""
        return self.table.occupancy_pattern() if self.table is not None else []


class _TableModel:
    """The integer model in its canonical decision order.

    Shared verbatim by both solver backends: :meth:`choices` is the
    single source of truth for domains and constraints, so lex-min
    w.r.t. it defines "the" solution independent of backend.
    """

    def __init__(
        self,
        tasks: List[IOTask],
        constraints: Sequence[TableConstraint],
        hyperperiod: int,
        objective: str,
        forbidden: Set[int],
    ) -> None:
        self.h = hyperperiod
        self.forbidden = forbidden
        rank = _constraint_ranks(tasks, constraints)
        self.jobs: List[_Job] = []
        for task in tasks:
            for index in range(hyperperiod // task.period):
                self.jobs.append(
                    _Job(task, index, task.offset + index * task.period)
                )
        # Canonical order: release, then constraint rank (predecessors
        # first among simultaneous releases), then the stable task key.
        self.jobs.sort(
            key=lambda job: (
                job.release,
                rank[job.task.name],
                job.task.deadline,
                job.task.period,
                job.task.name,
                job.index,
            )
        )
        #: Decision ``level`` -> (job position, slot ordinal k).
        self.decisions: List[Tuple[int, int]] = []
        #: Job position -> decision level of its slot 0.
        self.first_level: Dict[int, int] = {}
        for position, job in enumerate(self.jobs):
            self.first_level[position] = len(self.decisions)
            for k in range(job.task.wcet):
                self.decisions.append((position, k))
        self.position_of: Dict[Tuple[str, int], int] = {
            (job.task.name, job.index): position
            for position, job in enumerate(self.jobs)
        }
        self.candidates = [
            _candidate_offsets(job, objective) for job in self.jobs
        ]
        #: (after name, job index) -> [(before position, min, max)].
        self.predecessors: Dict[int, List[Tuple[int, int, Optional[int]]]] = {}
        for constraint in constraints:
            for position, job in enumerate(self.jobs):
                if job.task.name != constraint.after:
                    continue
                before = self.position_of[(constraint.before, job.index)]
                self.predecessors.setdefault(position, []).append(
                    (before, constraint.min_lag, constraint.max_lag)
                )

    @property
    def depth(self) -> int:
        return len(self.decisions)

    def bounds(
        self, prefix: Tuple[int, ...], level: int
    ) -> Optional[Tuple[int, int]]:
        """``[floor, ceiling)`` for decision ``level`` under ``prefix``.

        ``None`` when a precedence predecessor is not fully decided yet
        -- impossible under the canonical order (validated at model
        build), so it signals an infeasible branch.
        """
        position, k = self.decisions[level]
        job = self.jobs[position]
        floor = prefix[level - 1] + 1 if k > 0 else job.release
        ceiling = job.window_end
        if k == 0:
            for before, min_lag, max_lag in self.predecessors.get(position, ()):
                pred_job = self.jobs[before]
                pred_first = self.first_level[before]
                pred_end = pred_first + pred_job.task.wcet
                if pred_end > level:
                    return None
                pred_last = prefix[pred_end - 1]
                floor = max(floor, pred_last + 1 + min_lag)
                if max_lag is not None:
                    ceiling = min(ceiling, pred_last + 2 + max_lag)
        return floor, ceiling

    def choices(self, prefix: Tuple[int, ...], level: int) -> Iterable[int]:
        bounds = self.bounds(prefix, level)
        if bounds is None:
            return
        floor, ceiling = bounds
        position, k = self.decisions[level]
        job = self.jobs[position]
        used = {value % self.h for value in prefix}
        remaining = job.task.wcet - k
        for value in self.candidates[position]:
            if not floor <= value < ceiling:
                continue
            if job.window_end - value < remaining:
                continue
            absolute = value % self.h
            if absolute in used or absolute in self.forbidden:
                continue
            yield value

    def standalone_blocked(self) -> Optional[_Job]:
        """A job that cannot be placed even on an empty table, if any."""
        for job in self.jobs:
            available = {
                (job.release + offset) % self.h
                for offset in range(job.task.deadline)
            } - self.forbidden
            if len(available) < job.task.wcet:
                return job
        return None


def _constraint_ranks(
    tasks: List[IOTask], constraints: Sequence[TableConstraint]
) -> Dict[str, int]:
    """Longest-chain depth of each task in the precedence DAG.

    Used as a sort tie-break so predecessors are decided before their
    successors when releases coincide.  Cycles raise ``ValueError``.
    """
    names = [task.name for task in tasks]
    edges: Dict[str, List[str]] = {name: [] for name in names}
    indegree = {name: 0 for name in names}
    for constraint in constraints:
        edges[constraint.before].append(constraint.after)
        indegree[constraint.after] += 1
    rank = {name: 0 for name in names}
    queue = sorted(name for name in names if indegree[name] == 0)
    processed = 0
    while queue:
        name = queue.pop(0)
        processed += 1
        for successor in sorted(edges[name]):
            rank[successor] = max(rank[successor], rank[name] + 1)
            indegree[successor] -= 1
            if indegree[successor] == 0:
                queue.append(successor)
    if processed != len(names):
        raise ValueError("precedence constraints form a cycle")
    return rank


def _validate_model(
    tasks: List[IOTask],
    constraints: Sequence[TableConstraint],
    hyperperiod: Optional[int],
) -> int:
    by_name = {task.name: task for task in tasks}
    if len(by_name) != len(tasks):
        raise ValueError("pre-defined task names must be unique")
    for task in tasks:
        if task.deadline < task.wcet:
            raise ValueError(
                f"task {task.name!r} cannot fit C={task.wcet} slots in a "
                f"D={task.deadline} window"
            )
        if not 0 <= task.offset < task.period:
            raise ValueError(
                f"task {task.name!r} offset {task.offset} outside [0, T)"
            )
    lcm = reduce(math.lcm, (task.period for task in tasks), 1)
    h = hyperperiod if hyperperiod is not None else lcm
    if h % lcm != 0:
        raise ValueError(
            f"hyperperiod {h} is not a multiple of the task LCM {lcm}"
        )
    if h > MAX_TABLE_LENGTH:
        raise ValueError(
            f"hyperperiod {h} exceeds the table cap {MAX_TABLE_LENGTH}"
        )
    for constraint in constraints:
        for name in (constraint.before, constraint.after):
            if name not in by_name:
                raise ValueError(f"constraint references unknown task {name!r}")
        before = by_name[constraint.before]
        after = by_name[constraint.after]
        if before.period != after.period:
            raise ValueError(
                f"constraint {constraint.before!r} -> {constraint.after!r} "
                "relates tasks with different periods"
            )
        if before.offset > after.offset:
            raise ValueError(
                f"constraint {constraint.before!r} -> {constraint.after!r} "
                f"needs before.offset ({before.offset}) <= after.offset "
                f"({after.offset}); shift the release offsets"
            )
    return h


def _candidate_offsets(job: _Job, objective: str) -> List[int]:
    """The job's candidate absolute slots, in preference order."""
    window = job.task.deadline
    if objective == "packed":
        return [job.release + offset for offset in range(window)]
    # "spread": cyclic probing from the evenly-spaced ideal points, the
    # same preference build_pchannel_table's spread placement uses; the
    # remaining offsets follow ascending as a deterministic tail.
    stride = window / job.task.wcet
    ordered: List[int] = []
    seen = set()
    for k in range(job.task.wcet):
        ideal = int(k * stride)
        for probe in range(window):
            offset = (ideal + probe) % window
            if offset not in seen:
                seen.add(offset)
                ordered.append(job.release + offset)
                break
    for offset in range(window):
        if offset not in seen:
            ordered.append(job.release + offset)
    return ordered


def synthesize_table(
    predefined: TaskSet,
    *,
    constraints: Sequence[TableConstraint] = (),
    hyperperiod: Optional[int] = None,
    objective: str = "spread",
    solver: Optional[str] = None,
    fixed_free: Sequence[int] = (),
    stats: Optional[SearchStats] = None,
    max_nodes: int = 200_000,
) -> TableSynthesis:
    """Solve the integer table model to a canonical feasible sigma*.

    ``fixed_free`` pins slots (mod ``H``) that must stay free -- the
    hook for co-synthesis where the R-channel needs guaranteed gaps.
    Returns an infeasible :class:`TableSynthesis` (with ``reason``)
    rather than raising when the model admits no assignment; malformed
    models (unknown constraint names, C > D, precedence cycles, bad
    hyper-periods) raise ``ValueError``.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )
    resolved = require_solver(solver)
    stats = stats if stats is not None else SearchStats()
    tasks = sorted(predefined, key=lambda task: (task.period, task.name))
    if not tasks:
        return TableSynthesis(
            feasible=True,
            hyperperiod=1,
            solver=resolved,
            table=TimeSlotTable.empty(1),
            stats=stats,
        )
    h = _validate_model(tasks, constraints, hyperperiod)
    model = _TableModel(
        tasks, constraints, h, objective, {slot % h for slot in fixed_free}
    )

    if resolved == "ortools":  # pragma: no cover - needs ortools installed
        assignment = _lexmin_cpsat(model, stats=stats, max_nodes=max_nodes)
    else:
        assignment = lexmin_backtrack(
            model.depth, model.choices, stats=stats, max_nodes=max_nodes
        )

    if assignment is None:
        blocked = model.standalone_blocked()
        reason = (
            "no slot assignment satisfies the model "
            "(windows + precedence over-constrained)"
            if blocked is None
            else (
                f"no feasible slots for task {blocked.task.name!r} "
                f"(device {blocked.task.device!r}) job {blocked.index} "
                f"releasing at slot {blocked.release}"
            )
        )
        return TableSynthesis(
            feasible=False,
            hyperperiod=h,
            solver=resolved,
            stats=stats,
            reason=reason,
            failed_device=None if blocked is None else blocked.task.device,
            failed_slot=None if blocked is None else blocked.release % h,
        )

    placements: Dict[str, List[List[int]]] = {}
    occupied: List[int] = []
    entries: Dict[int, IOTask] = {}
    for (position, _k), value in zip(model.decisions, assignment):
        job = model.jobs[position]
        slots = placements.setdefault(job.task.name, [])
        while len(slots) <= job.index:
            slots.append([])
        slots[job.index].append(value)
        occupied.append(value % h)
        entries[value % h] = job.task
    table = TimeSlotTable(h, occupied, entries)
    return TableSynthesis(
        feasible=True,
        hyperperiod=h,
        solver=resolved,
        table=table,
        placements=placements,
        stats=stats,
    )


def _lexmin_cpsat(  # pragma: no cover - needs ortools installed
    model: _TableModel,
    *,
    stats: SearchStats,
    max_nodes: int,
) -> Optional[Tuple[int, ...]]:
    """Sequential-fixing CP-SAT solve of the identical lex-min model.

    Walks the same canonical decision order; at each level it asks
    CP-SAT whether *some* completion exists with the prefix plus the
    candidate value fixed, committing the first feasible candidate.
    Because the candidate order and the constraint set match the
    pure-python backtracker exactly, the committed assignment is the
    same lexicographically minimal one, byte for byte.
    """
    prefix: List[int] = []
    for level in range(model.depth):
        committed = None
        for value in model.choices(tuple(prefix), level):
            stats.nodes_expanded += 1
            if stats.nodes_expanded > max_nodes:
                return None
            if _cpsat_completable(model, prefix + [value]):
                committed = value
                break
            stats.backtracks += 1
        if committed is None:
            return None
        prefix.append(committed)
    return tuple(prefix)


def _cpsat_completable(  # pragma: no cover - needs ortools installed
    model: _TableModel, prefix: List[int]
) -> bool:
    """Whether the fixed prefix extends to a full feasible assignment."""
    from ortools.sat.python import cp_model as cp

    if len(prefix) == model.depth:
        return True
    problem = cp.CpModel()
    variables = []
    for level in range(model.depth):
        position, _k = model.decisions[level]
        job = model.jobs[position]
        if level < len(prefix):
            variables.append(problem.NewConstant(prefix[level]))
        else:
            variables.append(
                problem.NewIntVar(
                    job.release, job.window_end - 1, f"d{level}"
                )
            )
    # Ascending slots within each job.
    for position, job in enumerate(model.jobs):
        start = model.first_level[position]
        for k in range(1, job.task.wcet):
            problem.Add(variables[start + k] > variables[start + k - 1])
    # Slot exclusivity mod H (including caller-forbidden slots).
    mods = []
    for level, variable in enumerate(variables):
        mod = problem.NewIntVar(0, model.h - 1, f"m{level}")
        problem.AddModuloEquality(mod, variable, model.h)
        for slot in sorted(model.forbidden):
            problem.Add(mod != slot)
        mods.append(mod)
    problem.AddAllDifferent(mods)
    # Precedence lags between same-index jobs.
    for position in sorted(model.predecessors):
        job = model.jobs[position]
        first = variables[model.first_level[position]]
        for before, min_lag, max_lag in model.predecessors[position]:
            pred_job = model.jobs[before]
            pred_last = variables[
                model.first_level[before] + pred_job.task.wcet - 1
            ]
            problem.Add(first >= pred_last + 1 + min_lag)
            if max_lag is not None:
                problem.Add(first <= pred_last + 1 + max_lag)
    solver = cp.CpSolver()
    solver.parameters.max_time_in_seconds = 30.0
    solver.parameters.num_search_workers = 1
    solver.parameters.random_seed = 0
    status = solver.Solve(problem)
    return status in (cp.OPTIMAL, cp.FEASIBLE)
