"""Synthesis solver selection: pure-python search vs CP-SAT.

The synthesis subsystem ships two solver backends behind a registry that
mirrors :mod:`repro.analysis.engine`'s ``ENGINES``:

* ``"python"`` -- the deterministic search core in
  :mod:`repro.synth.search` / :mod:`repro.synth.table`: branch-and-bound
  with exact lower bounds and lexicographic tie-breaking.  Always
  available, the default, and the backend CI requires.
* ``"ortools"`` -- the same integer models handed to OR-Tools CP-SAT.
  Optional: the import is gated, and requesting it without the package
  installed raises :class:`SolverUnavailableError` with an actionable
  message instead of an ImportError deep inside a solve.

Both backends are specified to return the *lexicographically minimal*
feasible solution under the same canonical variable order, so their
outputs are byte-identical by construction -- the differential suite
cross-checks this whenever ``ortools`` is importable.  The default
resolves with the precedence *explicit argument* >
:func:`set_default_solver` > ``REPRO_SYNTH_SOLVER`` environment variable
> ``"python"``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Supported solver backends, default-first order.
SOLVERS = ("python", "ortools")

#: Environment knob consulted when no explicit solver is given,
#: mirroring ``REPRO_ANALYSIS_ENGINE`` / ``REPRO_JOBS``.
SOLVER_ENV_VAR = "REPRO_SYNTH_SOLVER"

_default_override: Optional[str] = None


class SolverUnavailableError(RuntimeError):
    """Raised when a requested solver backend cannot be imported."""


def _validate(solver: str) -> str:
    if solver not in SOLVERS:
        raise ValueError(
            f"unknown synthesis solver {solver!r}; expected one of {SOLVERS}"
        )
    return solver


def resolve_solver(solver: Optional[str] = None) -> str:
    """Resolve a solver name: argument > override > env var > python."""
    if solver is not None:
        return _validate(solver)
    if _default_override is not None:
        return _default_override
    raw = os.environ.get(SOLVER_ENV_VAR, "").strip().lower()
    if raw:
        return _validate(raw)
    return "python"


def default_solver() -> str:
    """The solver used when callers pass ``solver=None``."""
    return resolve_solver(None)


def set_default_solver(solver: Optional[str]) -> Optional[str]:
    """Set (or clear, with ``None``) the process-wide solver override.

    Returns the previous override so callers can restore it; prefer the
    :func:`use_solver` context manager for scoped switches.
    """
    global _default_override
    if solver is not None:
        _validate(solver)
    previous = _default_override
    _default_override = solver
    return previous


@contextmanager
def use_solver(solver: str) -> Iterator[str]:
    """Scoped solver override (benchmarks and differential tests)."""
    previous = set_default_solver(solver)
    try:
        yield _validate(solver)
    finally:
        set_default_solver(previous)


def solver_available(solver: Optional[str] = None) -> bool:
    """Whether the resolved backend can actually run in this process."""
    resolved = resolve_solver(solver)
    if resolved == "python":
        return True
    try:  # pragma: no cover - exercised only when ortools is installed
        import ortools.sat.python.cp_model  # noqa: F401
    except ImportError:
        return False
    return True


def require_solver(solver: Optional[str] = None) -> str:
    """Resolve a solver and fail fast when its backend is missing."""
    resolved = resolve_solver(solver)
    if not solver_available(resolved):
        raise SolverUnavailableError(
            f"synthesis solver {resolved!r} requires the 'ortools' package, "
            "which is not installed; use solver='python' (the default, "
            "always available) or install ortools"
        )
    return resolved
