"""Bandwidth-minimal server selection (Πᵢ, Θᵢ per VM).

The paper states Theorems 1-4 *given* the servers; this module computes
them.  The search minimizes the total server bandwidth ``ΣΘᵢ/Πᵢ`` (the
share of the R-channel the design reserves) subject to every theorem
passing:

1. **Candidate periods** per VM: divisors of the table hyper-period
   ``H`` (a server period dividing ``H`` tiles exactly into sigma*, so
   the G-Sched grids stay hyper-period-bounded), clipped to the VM's
   tightest deadline, plus the policy period
   :func:`~repro.analysis.servers.choose_period` would pick -- the
   incumbent seed, so synthesis can never do worse than the policy
   designer.
2. **Minimum budgets** per candidate period via the lock-step batched
   binary search (:func:`~repro.analysis.servers.minimum_budgets_batched`):
   a whole frontier of Theorem-4 probes per numpy pass.  Candidates
   whose utilization floor already meets the incumbent's bandwidth are
   pruned without touching the oracle; harmonic task sets take the
   closed-form fast path (:func:`harmonic_fast_budget`), which inverts
   the linear supply bound at the dbf step points and needs at most two
   oracle lanes to certify exactness.
3. **Assembly** of one candidate per VM by best-first branch-and-bound
   (:func:`~repro.synth.search.best_first_assignment`): assignments are
   enumerated in non-decreasing total bandwidth with exact ``Fraction``
   bounds and verified against Theorem 2 in batched frontiers, so the
   first accepted assignment is bandwidth-minimal over the grid.

Everything is deterministic; ties break lexicographically.  The outcome
carries the chosen servers, full verification results, and the search
provenance consumed by :class:`~repro.synth.report.SynthesisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.batched import gsched_schedulable_batch, lsched_schedulable_batch
from repro.analysis.gsched_test import GSchedResult, gsched_schedulable
from repro.analysis.lsched_test import LSchedResult
from repro.analysis.servers import (
    BudgetSearchStats,
    ServerDesign,
    bandwidth_of,
    choose_period,
    design_servers,
    minimum_budgets_batched,
    utilization_budget_floor,
)
from repro.core.timeslot import TimeSlotTable
from repro.synth.search import SearchStats, best_first_assignment
from repro.tasks.generators import divisors
from repro.tasks.taskset import TaskSet

#: Frontier width for the Theorem-2 assembly rounds.
ASSEMBLY_BATCH_WIDTH = 16

#: Node cap for the assembly search; on exhaustion the seed design wins.
ASSEMBLY_MAX_NODES = 4_096


@dataclass
class ServerSearchOutcome:
    """Everything the server-selection search learned.

    ``servers`` is the chosen design (vm_id -> (pi, theta));
    ``local_results``/``global_result`` its Theorem-4/Theorem-2
    verification; ``seed`` the policy design used as the incumbent;
    ``stats`` the search provenance.  ``improved`` records whether the
    search beat the seed's bandwidth (as opposed to matching it).
    """

    servers: Dict[int, Tuple[int, int]]
    feasible: bool
    local_results: Dict[int, LSchedResult] = field(default_factory=dict)
    global_result: Optional[GSchedResult] = None
    failures: Dict[int, str] = field(default_factory=dict)
    seed: Optional[ServerDesign] = None
    stats: SearchStats = field(default_factory=SearchStats)
    improved: bool = False
    fast_path_vms: int = 0

    @property
    def bandwidth(self) -> float:
        return bandwidth_of(sorted(self.servers.values()))

    def as_pairs(self) -> List[Tuple[int, int]]:
        return [self.servers[vm] for vm in sorted(self.servers)]

    def as_design(self) -> ServerDesign:
        """Back-compat :class:`ServerDesign` view of the outcome."""
        return ServerDesign(
            servers=dict(self.servers),
            local_ok=self.feasible or not self.failures,
            global_result=self.global_result,
            failures=dict(self.failures),
        )


def harmonic_fast_budget(pi: int, tasks: TaskSet) -> Optional[int]:
    """Closed-form sufficient budget for harmonic implicit-deadline sets.

    When every deadline is implicit and the distinct task periods form a
    harmonic chain (each divides the next), the dbf step points within
    one VM hyper-period ``H_vm = max T`` are all multiples of ``min T``,
    and the linear supply bound ``lsbf(t) = t*theta/pi - (2*pi-theta-1)``
    inverts per point to ``theta >= pi*(dbf(t) + 2*pi - 1) / (t + pi)``.
    The maximum of those ceilings over ``t in (0, H_vm]`` -- together
    with the bandwidth condition ``theta/pi >= U``, which extends the
    check past ``H_vm`` because ``dbf(t + H_vm) = dbf(t) + U*H_vm`` --
    is a budget that provably passes Theorem 4.  It upper-bounds the
    exact minimum (the linear bound under-approximates sbf), so the
    caller shrinks its binary-search window to ``[floor, theta_fast]``
    and certifies exactness with at most two oracle lanes.

    Returns ``None`` when the set is not harmonic/implicit (no fast
    path) or the closed form lands above ``pi`` (window unchanged).
    """
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    if len(tasks) == 0:
        return None
    ordered = sorted(tasks, key=lambda task: (task.period, task.name))
    periods: List[int] = []
    for task in ordered:
        if task.deadline != task.period:
            return None
        if not periods or task.period != periods[-1]:
            periods.append(task.period)
    for smaller, larger in zip(periods, periods[1:]):
        if larger % smaller != 0:
            return None
    h_vm = periods[-1]
    base = periods[0]
    if h_vm // base > 4_096:  # degenerate spread; fall back to search
        return None
    floor = utilization_budget_floor(pi, tasks)
    theta_fast = floor
    demand = 0
    for step in range(1, h_vm // base + 1):
        t = step * base
        demand = sum((t // task.period) * task.wcet for task in ordered)
        if demand <= 0:
            continue
        numerator = pi * (demand + 2 * pi - 1)
        theta_point = -(-numerator // (t + pi))
        if theta_point > theta_fast:
            theta_fast = theta_point
    if theta_fast > pi:
        return None
    return theta_fast


def candidate_periods_for(
    table: TimeSlotTable,
    tasks: TaskSet,
    *,
    policy: str = "min_deadline",
    uniform_period: int = 50,
    extra: Sequence[int] = (),
) -> Tuple[int, ...]:
    """The candidate server periods for one VM, sorted ascending.

    Divisors of the table hyper-period (so the synthesized ``Pi`` never
    enlarges any LCM the analysis takes), clipped to the VM's tightest
    deadline (a server period beyond it cannot deliver a full budget
    window before the deadline), always including the policy seed period
    and any ``extra`` candidates the caller pins.
    """
    seed = choose_period(tasks, policy, uniform_period=uniform_period)
    ceiling = min(task.deadline for task in tasks) if len(tasks) else seed
    grid = {
        value
        for value in (divisors(table.total_slots) if table.total_slots > 1 else ())
        if 1 <= value <= ceiling
    }
    grid.add(seed)
    grid.update(value for value in extra if value >= 1)
    return tuple(sorted(grid))


def synthesize_servers(
    table: TimeSlotTable,
    vm_tasksets: Dict[int, TaskSet],
    *,
    policy: str = "min_deadline",
    uniform_period: int = 50,
    fixed: Optional[Dict[int, Tuple[int, int]]] = None,
    pinned_periods: Optional[Dict[int, int]] = None,
    engine: Optional[str] = None,
    stats: Optional[SearchStats] = None,
) -> ServerSearchOutcome:
    """Search a bandwidth-minimal verified server design.

    ``fixed`` pins whole ``(pi, theta)`` pairs (VMs the caller specified
    completely); ``pinned_periods`` pins a VM's period but synthesizes
    its budget (a ``ServerConfig`` with ``theta=None``).  All remaining
    VMs get the full candidate-period grid.  The policy design from
    :func:`~repro.analysis.servers.design_servers` seeds the incumbent:
    the returned design's bandwidth is never worse than the seed's, and
    when the seed itself is infeasible the search may still succeed.
    """
    stats = stats if stats is not None else SearchStats()
    fixed = dict(fixed or {})
    pinned_periods = dict(pinned_periods or {})
    outcome = ServerSearchOutcome(servers={}, feasible=False, stats=stats)
    vm_ids = sorted(vm_tasksets)
    if not vm_ids:
        outcome.feasible = True
        return outcome

    seed = design_servers(
        table,
        {vm: vm_tasksets[vm] for vm in vm_ids if vm not in fixed},
        policy=policy,
        uniform_period=uniform_period,
        global_validation=False,
    )
    outcome.seed = seed

    # -- per-VM candidate budgets (one lock-step batched search) ---------
    lane_specs: List[Tuple[int, int, TaskSet]] = []  # (vm, pi, tasks)
    for vm in vm_ids:
        if vm in fixed:
            continue
        tasks = vm_tasksets[vm]
        if vm in pinned_periods:
            periods = (pinned_periods[vm],)
        else:
            periods = candidate_periods_for(
                table,
                tasks,
                policy=policy,
                uniform_period=uniform_period,
            )
        for pi in periods:
            lane_specs.append((vm, pi, tasks))

    bounds: List[Optional[float]] = []
    caps: List[Optional[int]] = []
    cap_ok: List[bool] = []
    for vm, pi, tasks in lane_specs:
        seed_pair = seed.servers.get(vm)
        # Never prune the seed's own period (the incumbent must stay in
        # the grid) or a caller-pinned period (it is the only lane).
        exempt = vm in pinned_periods or (
            seed_pair is not None and seed_pair[0] == pi
        )
        if seed_pair is not None and not exempt:
            bounds.append(seed_pair[1] / seed_pair[0])
        else:
            bounds.append(None)
        fast = harmonic_fast_budget(pi, tasks) if len(tasks) else None
        if fast is not None:
            caps.append(fast)
            cap_ok.append(True)
            outcome.fast_path_vms += 1
        else:
            caps.append(None)
            cap_ok.append(False)

    budget_stats = BudgetSearchStats()
    budgets = minimum_budgets_batched(
        [(pi, tasks) for _vm, pi, tasks in lane_specs],
        theta_caps=caps,
        cap_feasible=cap_ok,
        bandwidth_bounds=bounds,
        engine=engine,
        stats=budget_stats,
    )
    stats.absorb_budget(budget_stats)

    # -- rank candidates per VM -----------------------------------------
    per_vm: Dict[int, List[Tuple[Fraction, int, int]]] = {vm: [] for vm in vm_ids}
    for (vm, pi, _tasks), theta in zip(lane_specs, budgets):
        if theta is not None:
            per_vm[vm].append((Fraction(theta, pi), pi, theta))
    for vm, pair in sorted(fixed.items()):
        if vm in per_vm:
            per_vm[vm] = [(Fraction(pair[1], pair[0]), pair[0], pair[1])]
    for vm in vm_ids:
        per_vm[vm].sort()
        if not per_vm[vm]:
            tasks = vm_tasksets[vm]
            outcome.failures[vm] = seed.failures.get(
                vm,
                f"no candidate (pi, theta) satisfies Theorem 4 for VM {vm} "
                f"(utilization {tasks.utilization:.3f})",
            )
    if outcome.failures:
        outcome.servers = dict(seed.servers)
        outcome.servers.update(fixed)
        return outcome

    # -- assemble: best-first over total bandwidth, Theorem-2 oracle ----
    groups = [per_vm[vm] for vm in vm_ids]
    objectives = [[candidate[0] for candidate in group] for group in groups]

    def pairs_of(node: Tuple[int, ...]) -> List[Tuple[int, int]]:
        return [
            (group[index][1], group[index][2])
            for group, index in zip(groups, node)
        ]

    def feasible_batch(nodes: Sequence[Tuple[int, ...]]) -> List[bool]:
        verdicts = gsched_schedulable_batch(
            [(table, pairs_of(node)) for node in nodes], engine=engine
        )
        return [bool(verdict.schedulable) for verdict in verdicts]

    chosen = best_first_assignment(
        objectives,
        feasible_batch,
        stats=stats,
        batch_width=ASSEMBLY_BATCH_WIDTH,
        max_nodes=ASSEMBLY_MAX_NODES,
    )

    if chosen is not None:
        outcome.servers = {
            vm: (groups[position][index][1], groups[position][index][2])
            for position, (vm, index) in enumerate(zip(vm_ids, chosen))
        }
    else:
        # Grid exhausted without a Theorem-2 pass: fall back to the seed
        # (+ fixed pairs), which final verification below adjudicates.
        outcome.servers = dict(seed.servers)
        outcome.servers.update(fixed)
        outcome.failures[-1] = (
            "no candidate assignment passed Theorem 2; falling back to the "
            "policy seed design"
        )

    # -- final verification (stored as the report's evidence) -----------
    ordered = [(vm, outcome.servers[vm]) for vm in sorted(outcome.servers)]
    lanes = [
        (pair[0], pair[1], vm_tasksets[vm]) for vm, pair in ordered
    ]
    stats.oracle_calls += len(lanes) + 1
    stats.rounds += 1
    local = lsched_schedulable_batch(lanes, engine=engine)
    outcome.local_results = {vm: result for (vm, _), result in zip(ordered, local)}
    outcome.global_result = gsched_schedulable(
        table, [pair for _vm, pair in ordered], engine=engine
    )
    outcome.feasible = (
        all(result.schedulable for result in local)
        and outcome.global_result.schedulable
    )
    if outcome.feasible:
        outcome.failures.pop(-1, None)
        seed_pairs = sorted(seed.servers.values()) + sorted(fixed.values())
        if seed.servers and len(seed.servers) + len(fixed) == len(vm_ids):
            outcome.improved = outcome.bandwidth < bandwidth_of(seed_pairs)
    return outcome
