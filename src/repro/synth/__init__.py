"""Design synthesis: from workloads to verified (servers, sigma*) designs.

The paper's guarantees are conditional on a design -- per-VM servers
``(Pi_i, Theta_i)`` and the P-channel slot table sigma* -- that the
integrator is assumed to supply.  This package computes them:

* :func:`~repro.synth.servers.synthesize_servers` searches a
  bandwidth-minimal server design (``min sum Theta/Pi`` s.t. Theorems
  1-4) by deterministic branch-and-bound with the batched analysis
  engine as the feasibility oracle;
* :func:`~repro.synth.table.synthesize_table` solves an integer model
  of sigma* (release offsets, precedence/time-lag constraints, wrapping
  jobs) to a canonical lex-min assignment;
* :mod:`~repro.synth.solvers` is the ``SOLVERS`` backend registry
  (pure-python default, optional CP-SAT), mirroring the analysis
  ``ENGINES`` registry;
* :class:`~repro.synth.report.SynthesisReport` is the verdict type the
  :func:`repro.api.synthesize` facade returns.

Everything is deterministic: byte-identical designs across reruns,
solver backends and ``REPRO_JOBS`` settings.
"""

from repro.synth.report import SynthesisReport
from repro.synth.search import SearchStats, best_first_assignment, lexmin_backtrack
from repro.synth.servers import (
    ServerSearchOutcome,
    candidate_periods_for,
    harmonic_fast_budget,
    synthesize_servers,
)
from repro.synth.solvers import (
    SOLVER_ENV_VAR,
    SOLVERS,
    SolverUnavailableError,
    default_solver,
    require_solver,
    resolve_solver,
    set_default_solver,
    solver_available,
    use_solver,
)
from repro.synth.table import (
    OBJECTIVES,
    TableConstraint,
    TableSynthesis,
    synthesize_table,
)

__all__ = [
    "SynthesisReport",
    "SearchStats",
    "best_first_assignment",
    "lexmin_backtrack",
    "ServerSearchOutcome",
    "candidate_periods_for",
    "harmonic_fast_budget",
    "synthesize_servers",
    "SOLVERS",
    "SOLVER_ENV_VAR",
    "SolverUnavailableError",
    "default_solver",
    "require_solver",
    "resolve_solver",
    "set_default_solver",
    "solver_available",
    "use_solver",
    "OBJECTIVES",
    "TableConstraint",
    "TableSynthesis",
    "synthesize_table",
]
