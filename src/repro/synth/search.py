"""The deterministic search core shared by the synthesis passes.

Two drivers, both exhaustively deterministic (no entropy, no ambient
ordering -- candidate orders are explicit, bounds are exact
:class:`fractions.Fraction` arithmetic, ties break lexicographically):

* :func:`best_first_assignment` -- best-first branch-and-bound over one
  choice per group (one server candidate per VM), enumerated in
  non-decreasing objective order so the first feasible assignment popped
  is objective-minimal over the candidate grid.  Feasibility is checked
  by a caller-supplied *batched* oracle: whole frontiers of assignments
  are verified in one :func:`~repro.analysis.batched.gsched_schedulable_batch`
  numpy pass per round.
* :func:`lexmin_backtrack` -- depth-first backtracking returning the
  lexicographically minimal feasible assignment under a caller-supplied
  choice order (the slot-table synthesis model).  Lex-minimality is what
  makes the pure-python and CP-SAT backends byte-identical: both are
  specified against the same canonical order, so "the" answer is unique.

Both drivers account their work in :class:`SearchStats`, which the
:class:`~repro.synth.report.SynthesisReport` carries as provenance and
the ``synth-bench`` gate bounds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.servers import BudgetSearchStats


@dataclass
class SearchStats:
    """Provenance counters for one synthesis search.

    ``oracle_calls`` counts schedulability lanes submitted to the batch
    oracle (Theorem-2 assignment checks plus the Theorem-4 lanes of the
    budget search), ``nodes_expanded`` the search nodes popped or
    visited, ``pruned_nodes`` the candidates eliminated by lower bounds
    before any oracle call, and ``rounds`` the batched oracle passes.
    ``bound_trajectory`` records ``(nodes_expanded, objective)`` at each
    incumbent improvement -- the classic branch-and-bound convergence
    trace.
    """

    nodes_expanded: int = 0
    pruned_nodes: int = 0
    oracle_calls: int = 0
    rounds: int = 0
    incumbent_updates: int = 0
    backtracks: int = 0
    bound_trajectory: List[Tuple[int, float]] = field(default_factory=list)
    budget: BudgetSearchStats = field(default_factory=BudgetSearchStats)

    def record_incumbent(self, objective: float) -> None:
        self.incumbent_updates += 1
        self.bound_trajectory.append((self.nodes_expanded, objective))

    def absorb_budget(self, other: BudgetSearchStats) -> None:
        """Fold a budget-search's accounting into the global counters."""
        self.budget.merge(other)
        self.oracle_calls += other.oracle_calls
        self.pruned_nodes += other.pruned
        self.rounds += other.rounds

    def as_payload(self) -> Dict[str, object]:
        """JSON-ready rendering for reports and the bench file."""
        return {
            "nodes_expanded": self.nodes_expanded,
            "pruned_nodes": self.pruned_nodes,
            "oracle_calls": self.oracle_calls,
            "rounds": self.rounds,
            "incumbent_updates": self.incumbent_updates,
            "backtracks": self.backtracks,
            "bound_trajectory": [
                [nodes, objective] for nodes, objective in self.bound_trajectory
            ],
        }


def best_first_assignment(
    objectives: Sequence[Sequence[Fraction]],
    feasible_batch: Callable[[Sequence[Tuple[int, ...]]], Sequence[bool]],
    *,
    stats: Optional[SearchStats] = None,
    batch_width: int = 16,
    max_nodes: int = 20_000,
) -> Optional[Tuple[int, ...]]:
    """Objective-minimal feasible assignment over a candidate grid.

    ``objectives[g][i]`` is the (exact, non-negative) cost of picking
    candidate ``i`` for group ``g``; each group's list must be sorted
    non-decreasing (the caller's per-group lower bounds).  An assignment
    picks one index per group; its cost is the sum.  Assignments are
    enumerated best-first (k-smallest-sums over the grid), so the first
    one the oracle accepts is cost-minimal over the whole grid -- the
    per-node lower bound (prefix cost + best-remaining) is exact, which
    is what makes the early exit sound.

    ``feasible_batch`` receives a *frontier* of up to ``batch_width``
    assignments (index tuples) and returns one verdict per assignment;
    internally it should pack them into one batched-engine pass.  Ties
    in cost break on the index tuple itself, so the result is unique and
    byte-identical across processes.  Returns ``None`` when the grid is
    exhausted (or ``max_nodes`` is hit) without a feasible assignment.
    """
    if not objectives or any(not group for group in objectives):
        return None
    for group in objectives:
        for first, second in zip(group, group[1:]):
            if second < first:
                raise ValueError("per-group objectives must be sorted")
    start = tuple(0 for _ in objectives)
    heap: List[Tuple[Fraction, Tuple[int, ...]]] = [(_cost(objectives, start), start)]
    seen = {start}
    expanded = 0
    while heap:
        width = min(batch_width, max_nodes - expanded)
        if width <= 0:
            return None
        frontier: List[Tuple[int, ...]] = []
        while heap and len(frontier) < width:
            _, node = heapq.heappop(heap)
            frontier.append(node)
        expanded += len(frontier)
        if stats is not None:
            stats.nodes_expanded += len(frontier)
            stats.oracle_calls += len(frontier)
            stats.rounds += 1
        verdicts = feasible_batch(frontier)
        for node, verdict in zip(frontier, verdicts):
            if verdict:
                if stats is not None:
                    stats.record_incumbent(float(_cost(objectives, node)))
                return node
        for node in frontier:
            for neighbor in _neighbors(objectives, node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    heapq.heappush(heap, (_cost(objectives, neighbor), neighbor))
    return None


def _cost(
    objectives: Sequence[Sequence[Fraction]], node: Tuple[int, ...]
) -> Fraction:
    total = Fraction(0)
    for group, index in zip(objectives, node):
        total += group[index]
    return total


def _neighbors(
    objectives: Sequence[Sequence[Fraction]], node: Tuple[int, ...]
) -> Iterable[Tuple[int, ...]]:
    for position, index in enumerate(node):
        if index + 1 < len(objectives[position]):
            yield node[:position] + (index + 1,) + node[position + 1 :]


def lexmin_backtrack(
    depth: int,
    choices: Callable[[Tuple[int, ...], int], Iterable[int]],
    *,
    stats: Optional[SearchStats] = None,
    max_nodes: int = 200_000,
) -> Optional[Tuple[int, ...]]:
    """First complete assignment found by ordered depth-first search.

    ``choices(prefix, level)`` yields the *consistent* values for
    decision ``level`` given the committed ``prefix``, in preference
    order; the DFS commits the first value, recurses, and backtracks on
    dead ends.  Because every branch is explored in preference order,
    the first complete assignment is the lexicographically minimal
    feasible one w.r.t. that order -- the canonical solution both
    solver backends must produce.  Returns ``None`` when the model is
    infeasible or the ``max_nodes`` cap trips (recorded distinctly via
    ``stats.nodes_expanded`` hitting the cap).
    """
    if depth == 0:
        return ()
    assignment: List[int] = []
    visited = 0
    # Iterative DFS with explicit iterator stack: table models can have
    # thousands of decisions, beyond Python's recursion limit.
    stack = [iter(choices((), 0))]
    while stack:
        if visited > max_nodes:
            return None
        level_iter = stack[-1]
        advanced = False
        for value in level_iter:  # take the next untried value, if any
            visited += 1
            if stats is not None:
                stats.nodes_expanded += 1
            assignment.append(value)
            if len(assignment) == depth:
                return tuple(assignment)
            stack.append(iter(choices(tuple(assignment), len(assignment))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if assignment:
                assignment.pop()
                if stats is not None:
                    stats.backtracks += 1
    return None
