"""The synthesis verdict: a verified design plus its provenance.

:class:`SynthesisReport` is to :func:`repro.api.synthesize` what
``AnalysisReport`` is to ``analyze``: it satisfies the
:class:`~repro.analysis.result.SchedulabilityResult` protocol
(``schedulable``/``__bool__``/``failing_t``/``summary()`` via the
shared :class:`~repro.analysis.result.ReportBase`), carries the witness
design (servers + table), the Theorem-2/Theorem-4 evidence it was
verified against, and the search provenance (oracle calls, pruned
nodes, bound trajectory) the ``synth-bench`` gate and the observability
layer consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.gsched_test import GSchedResult
from repro.analysis.lsched_test import LSchedResult
from repro.analysis.result import ReportBase, SchedulabilityResult
from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.synth.search import SearchStats


@dataclass
class SynthesisReport(ReportBase):
    """Verdict + witness design from one synthesis run.

    ``schedulable`` means the synthesized design passed its final
    verification (every Theorem-4 lane and the Theorem-2 check, run
    through the analysis oracle, not the search's internal bookkeeping).
    ``servers``/``table`` are the witness; ``provenance`` the search
    counters; ``seed_bandwidth`` the policy designer's incumbent for
    the improvement claim.
    """

    schedulable: bool
    table: TimeSlotTable
    servers: List[ServerSpec] = field(default_factory=list)
    engine: str = "batched"
    solver: str = "python"
    global_result: Optional[GSchedResult] = None
    local_results: Dict[int, LSchedResult] = field(default_factory=dict)
    reason: str = ""
    stats: SearchStats = field(default_factory=SearchStats)
    seed_bandwidth: Optional[float] = None
    improved: bool = False
    fast_path_vms: int = 0

    @property
    def bandwidth(self) -> float:
        """``sum Theta/Pi`` of the synthesized servers."""
        return sum(spec.theta / spec.pi for spec in self.servers)

    def server_pairs(self) -> List[Tuple[int, int]]:
        """``(pi, theta)`` pairs in vm order, for re-analysis."""
        return [
            (spec.pi, spec.theta)
            for spec in sorted(self.servers, key=lambda spec: spec.vm_id)
        ]

    def _witness_results(self):
        yield self.global_result
        for vm_id in sorted(self.local_results):
            yield self.local_results[vm_id]

    def summary(self) -> str:
        verdict = "feasible" if self.schedulable else "infeasible"
        text = (
            f"synthesis: {verdict} "
            f"[H={self.table.total_slots}, {len(self.servers)} servers, "
            f"bandwidth {self.bandwidth:.4f}, "
            f"{self.stats.oracle_calls} oracle calls, "
            f"{self.stats.pruned_nodes} pruned]"
        )
        if self.reason:
            text += f" - {self.reason}"
        return text

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-ready rendering (byte-identity comparisons).

        Deterministic by construction: server order is vm order, the
        pattern is the table's occupancy bitmap, provenance counters
        come from the deterministic search.  Two synthesis runs agree
        iff their payloads serialize identically.
        """
        return {
            "schedulable": self.schedulable,
            "engine": self.engine,
            "solver": self.solver,
            "hyperperiod": self.table.total_slots,
            "free_slots": self.table.free_slots,
            "servers": [
                {"vm_id": spec.vm_id, "pi": spec.pi, "theta": spec.theta}
                for spec in sorted(self.servers, key=lambda spec: spec.vm_id)
            ],
            "bandwidth": self.bandwidth,
            "table_pattern": self.table.occupancy_pattern(),
            "seed_bandwidth": self.seed_bandwidth,
            "improved": self.improved,
            "fast_path_vms": self.fast_path_vms,
            "reason": self.reason,
            "provenance": self.stats.as_payload(),
        }


def _protocol_check(report: SynthesisReport) -> SchedulabilityResult:
    """Static witness that the report satisfies the protocol."""
    return report
