"""Processor and VM-context models.

A processor (MicroBlaze in the paper's platform) hosts up to three guest
VMs (Sec. V); each VM context releases the I/O jobs of its task set.
Releases are sporadic: consecutive jobs of a task are separated by at
least the period, plus optional bounded jitter drawn per job.

The release machinery is expressed in *slots* and drives whatever
``submit`` callable the hosting system model provides, so the same
processor model feeds I/O-GUARD and all three baselines.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from repro.sim.engine import Process, Simulator, Timeout
from repro.sim.clock import GlobalTimer
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask, Job, TaskKind
from repro.tasks.taskset import TaskSet

#: A submit function accepts a released job and returns True when the
#: system accepted it (False = back-pressure / drop).
SubmitFn = Callable[[Job], bool]


class VMContext:
    """One guest VM: identity plus the run-time tasks it releases."""

    def __init__(self, vm_id: int, tasks: TaskSet):
        self.vm_id = vm_id
        self.tasks = tasks
        for task in tasks:
            if task.vm_id != vm_id:
                raise ValueError(
                    f"task {task.name!r} belongs to VM {task.vm_id}, "
                    f"not VM {vm_id}"
                )
        self.jobs_released = 0
        self.jobs_rejected = 0

    def runtime_tasks(self) -> List[IOTask]:
        return [task for task in self.tasks if task.kind == TaskKind.RUNTIME]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VMContext(vm={self.vm_id}, tasks={len(self.tasks)})"


class Processor:
    """A core hosting guest VMs and generating their I/O job releases."""

    MAX_VMS = 3  # "Each processor supported up to three guest VMs" (Sec. V)

    def __init__(
        self,
        proc_id: int,
        position: Tuple[int, int] = (0, 0),
        vms: Optional[List[VMContext]] = None,
    ):
        self.proc_id = proc_id
        self.position = position
        self.vms: List[VMContext] = []
        for vm in vms or []:
            self.add_vm(vm)

    def add_vm(self, vm: VMContext) -> None:
        if len(self.vms) >= self.MAX_VMS:
            raise ValueError(
                f"processor {self.proc_id} already hosts {self.MAX_VMS} VMs"
            )
        self.vms.append(vm)

    def start_release_processes(
        self,
        sim: Simulator,
        timer: GlobalTimer,
        submit: SubmitFn,
        rng: RandomSource,
        horizon_slots: int,
    ) -> List[Process]:
        """Spawn one release process per run-time task on this processor."""
        processes = []
        for vm in self.vms:
            for task in vm.runtime_tasks():
                generator = _release_loop(
                    sim, timer, task, vm, submit, rng.spawn(task.name), horizon_slots
                )
                processes.append(
                    sim.process(generator, name=f"release.{task.name}")
                )
        return processes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Processor({self.proc_id}, pos={self.position}, vms={len(self.vms)})"


def _release_loop(
    sim: Simulator,
    timer: GlobalTimer,
    task: IOTask,
    vm: VMContext,
    submit: SubmitFn,
    rng: RandomSource,
    horizon_slots: int,
) -> Generator:
    """Release jobs of ``task`` until the horizon.

    Job k is released at ``offset + k*T + jitter_k`` slots (sporadic with
    minimum separation T when jitter is 0; jitter only ever delays, so
    separation never shrinks below T relative to the previous *nominal*
    release).
    """
    index = 0
    while True:
        nominal = task.offset + index * task.period
        if nominal >= horizon_slots:
            return
        jitter = rng.randint(0, task.jitter) if task.jitter > 0 else 0
        release_slot = nominal + jitter
        release_cycle = timer.slot_start_cycle(release_slot)
        if release_cycle > sim.now:
            yield Timeout(release_cycle - sim.now)
        job = task.job(release=release_slot, index=index)
        vm.jobs_released += 1
        if not submit(job):
            vm.jobs_rejected += 1
        index += 1
