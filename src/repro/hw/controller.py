"""Standardized I/O controllers (Sec. III-B).

Each controller converts a payload size into a transfer time in platform
cycles: a fixed per-transfer overhead (protocol framing, controller
state-machine latency) plus a serialisation term from the link bit rate.
The rates mirror the paper's platform: 1 Gbps Ethernet inbound, 10 Mbps
FlexRay outbound, and the usual embedded rates for SPI/I2C/UART/CAN.
"""

from __future__ import annotations

import math
from typing import Dict, Type

from repro.sim.clock import DEFAULT_FREQUENCY_HZ


class IOController:
    """Base controller: timing model + busy accounting.

    Subclasses set :attr:`bitrate_bps` and :attr:`overhead_cycles`.
    ``frame_overhead_bytes`` charges protocol framing (preamble, CRC,
    addressing) on every transfer.
    """

    #: Link serialisation rate in bits/second.
    bitrate_bps: int = 1_000_000
    #: Fixed controller latency per transfer, in platform cycles.
    overhead_cycles: int = 50
    #: Protocol framing bytes charged on top of the payload.
    frame_overhead_bytes: int = 0
    #: Protocol label used by drivers and reports.
    protocol: str = "generic"

    def __init__(self, name: str = "", frequency_hz: int = DEFAULT_FREQUENCY_HZ):
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.name = name or self.protocol
        self.frequency_hz = frequency_hz
        self.transfers = 0
        self.bytes_moved = 0
        self.busy_cycles = 0

    def transfer_cycles(self, payload_bytes: int) -> int:
        """Cycles to move ``payload_bytes`` through this controller."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        wire_bits = (payload_bytes + self.frame_overhead_bytes) * 8
        serialisation = wire_bits * self.frequency_hz / self.bitrate_bps
        return self.overhead_cycles + int(math.ceil(serialisation))

    def record_transfer(self, payload_bytes: int) -> int:
        """Account one completed transfer; returns its cycle cost."""
        cycles = self.transfer_cycles(payload_bytes)
        self.transfers += 1
        self.bytes_moved += payload_bytes
        self.busy_cycles += cycles
        return cycles

    def throughput_bps(self, elapsed_cycles: float) -> float:
        """Achieved payload throughput over an observation window."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / self.frequency_hz
        return self.bytes_moved * 8 / seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self.bitrate_bps / 1e6:g} Mbps, {self.transfers} transfers)"
        )


class SPIController(IOController):
    """Serial Peripheral Interface at a typical 10 MHz SCLK."""

    bitrate_bps = 10_000_000
    overhead_cycles = 40
    frame_overhead_bytes = 1
    protocol = "spi"


class I2CController(IOController):
    """I2C fast mode (400 kbit/s); address + ack framing."""

    bitrate_bps = 400_000
    overhead_cycles = 60
    frame_overhead_bytes = 2
    protocol = "i2c"


class UARTController(IOController):
    """UART at 115200 baud with 10-bit character frames."""

    bitrate_bps = 92_160  # 115200 baud * 8/10 payload efficiency
    overhead_cycles = 30
    frame_overhead_bytes = 0
    protocol = "uart"


class EthernetController(IOController):
    """Gigabit Ethernet MAC (the paper's inbound data path)."""

    bitrate_bps = 1_000_000_000
    overhead_cycles = 80
    frame_overhead_bytes = 38  # preamble + header + FCS + IFG
    protocol = "ethernet"


class FlexRayController(IOController):
    """FlexRay at 10 Mbps (the paper's outbound result path)."""

    bitrate_bps = 10_000_000
    overhead_cycles = 70
    frame_overhead_bytes = 8
    protocol = "flexray"


class CANController(IOController):
    """High-speed CAN at 1 Mbps; heavy framing relative to payload."""

    bitrate_bps = 1_000_000
    overhead_cycles = 50
    frame_overhead_bytes = 6
    protocol = "can"


class GPIOController(IOController):
    """Register-mapped GPIO: effectively instantaneous, overhead only."""

    bitrate_bps = 100_000_000
    overhead_cycles = 4
    frame_overhead_bytes = 0
    protocol = "gpio"


_CONTROLLER_TYPES: Dict[str, Type[IOController]] = {
    cls.protocol: cls
    for cls in (
        SPIController,
        I2CController,
        UARTController,
        EthernetController,
        FlexRayController,
        CANController,
        GPIOController,
    )
}


def controller_by_name(
    protocol: str,
    name: str = "",
    frequency_hz: int = DEFAULT_FREQUENCY_HZ,
) -> IOController:
    """Instantiate a controller from its protocol label.

    Raises ``KeyError`` listing the supported protocols for typos.
    """
    try:
        controller_type = _CONTROLLER_TYPES[protocol]
    except KeyError:
        raise KeyError(
            f"unknown protocol {protocol!r}; supported: "
            f"{sorted(_CONTROLLER_TYPES)}"
        ) from None
    return controller_type(name=name, frequency_hz=frequency_hz)
