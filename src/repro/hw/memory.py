"""Memory banks (Secs. III-A and III-B).

The hypervisor stores pre-defined tasks, timing tables and low-level I/O
driver code in dedicated on-chip memory banks loaded at initialization.
The model is a byte-addressed key/value store with a hard capacity --
exactly what matters for the RAM column of Table I and for catching
configurations that could not fit the real 256 KB banks.
"""

from __future__ import annotations

from typing import Dict, List


class MemoryBankFullError(RuntimeError):
    """Raised when a load would exceed the bank capacity."""


class MemoryBank:
    """Fixed-capacity on-chip memory with named segments."""

    def __init__(self, name: str, capacity_bytes: int = 256 * 1024):
        if capacity_bytes < 1:
            raise ValueError(f"bank {name!r}: capacity must be >= 1 byte")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._segments: Dict[str, int] = {}

    def load(self, segment: str, size_bytes: int) -> None:
        """Reserve ``size_bytes`` for ``segment`` (init-time loading)."""
        if size_bytes < 0:
            raise ValueError(f"segment {segment!r}: negative size {size_bytes}")
        if segment in self._segments:
            raise ValueError(
                f"segment {segment!r} already loaded in bank {self.name!r}"
            )
        if self.used_bytes + size_bytes > self.capacity_bytes:
            raise MemoryBankFullError(
                f"bank {self.name!r}: loading {segment!r} ({size_bytes} B) "
                f"exceeds capacity {self.capacity_bytes} B "
                f"(used {self.used_bytes} B)"
            )
        self._segments[segment] = size_bytes

    def unload(self, segment: str) -> int:
        size = self._segments.pop(segment, None)
        if size is None:
            raise KeyError(f"no segment {segment!r} in bank {self.name!r}")
        return size

    def size_of(self, segment: str) -> int:
        return self._segments[segment]

    def segments(self) -> List[str]:
        return sorted(self._segments)

    @property
    def used_bytes(self) -> int:
        return sum(self._segments.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def __contains__(self, segment: str) -> bool:
        return segment in self._segments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBank({self.name!r}, {self.used_bytes}/"
            f"{self.capacity_bytes} B)"
        )
