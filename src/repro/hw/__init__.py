"""Hardware substrate models: I/O controllers, devices, memory, processors.

The paper's platform hosts "memory and I/O peripherals" on the NoC and
drives external devices through standard controllers (SPI, I2C, Ethernet,
FlexRay; Sec. III-B, Sec. V).  These models capture the two properties
the evaluation depends on: *transfer timing* (bandwidth + fixed overhead,
in platform cycles) and *footprint hooks* for the hardware-cost model.
"""

from repro.hw.controller import (
    CANController,
    EthernetController,
    FlexRayController,
    GPIOController,
    I2CController,
    IOController,
    SPIController,
    UARTController,
    controller_by_name,
)
from repro.hw.devices import EchoDevice, IODevice, SensorDevice, ActuatorDevice
from repro.hw.memory import MemoryBank
from repro.hw.processor import Processor, VMContext

__all__ = [
    "ActuatorDevice",
    "CANController",
    "EchoDevice",
    "EthernetController",
    "FlexRayController",
    "GPIOController",
    "I2CController",
    "IOController",
    "IODevice",
    "MemoryBank",
    "Processor",
    "SPIController",
    "SensorDevice",
    "UARTController",
    "VMContext",
    "controller_by_name",
]
