"""External I/O devices behind the controllers.

A device answers controller transactions after a *service time*: sensors
deliver readings, actuators acknowledge commands.  Service times are
deterministic with optional bounded jitter, keeping worst cases finite as
the analysis requires.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.rng import RandomSource


class IODevice:
    """Base device: deterministic service time with bounded jitter."""

    def __init__(
        self,
        name: str,
        service_cycles: int = 100,
        jitter_cycles: int = 0,
        rng: Optional[RandomSource] = None,
    ):
        if service_cycles < 0 or jitter_cycles < 0:
            raise ValueError(
                f"device {name!r}: negative timing "
                f"(service={service_cycles}, jitter={jitter_cycles})"
            )
        self.name = name
        self.service_cycles = service_cycles
        self.jitter_cycles = jitter_cycles
        self.rng = rng
        self.requests_served = 0

    def wcrt_cycles(self) -> int:
        """Worst-case device response time (service + max jitter)."""
        return self.service_cycles + self.jitter_cycles

    def serve(self, payload_bytes: int) -> int:
        """Handle one request; returns the cycles the device needed."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        jitter = 0
        if self.jitter_cycles > 0 and self.rng is not None:
            jitter = self.rng.randint(0, self.jitter_cycles)
        self.requests_served += 1
        return self.service_cycles + jitter

    def response_bytes(self, request_bytes: int) -> int:
        """Size of the device's answer to a ``request_bytes`` request."""
        return request_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.requests_served} served)"


class EchoDevice(IODevice):
    """Loops the request payload back -- the integration-test workhorse."""


class SensorDevice(IODevice):
    """Produces fixed-size readings regardless of the request size."""

    def __init__(
        self,
        name: str,
        reading_bytes: int = 16,
        service_cycles: int = 200,
        jitter_cycles: int = 0,
        rng: Optional[RandomSource] = None,
    ):
        super().__init__(
            name,
            service_cycles=service_cycles,
            jitter_cycles=jitter_cycles,
            rng=rng,
        )
        if reading_bytes < 1:
            raise ValueError(f"sensor {name!r}: reading must be >= 1 byte")
        self.reading_bytes = reading_bytes

    def response_bytes(self, request_bytes: int) -> int:
        return self.reading_bytes


class ActuatorDevice(IODevice):
    """Consumes commands and answers with a short acknowledgement."""

    ACK_BYTES = 2

    def response_bytes(self, request_bytes: int) -> int:
        return self.ACK_BYTES
