"""External I/O devices behind the controllers.

A device answers controller transactions after a *service time*: sensors
deliver readings, actuators acknowledge commands.  Service times are
deterministic with optional bounded jitter, keeping worst cases finite as
the analysis requires.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.rng import RandomSource


class DeviceStalledError(RuntimeError):
    """A transaction hit a stalled (non-answering) device.

    The fault model for a wedged sensor bus or a powered-down
    peripheral: the controller issues the transaction and nothing comes
    back, so the driver's timeout fires.  The guarded driver path
    (:meth:`repro.core.driver.VirtualizationDriver.execute_guarded`)
    converts this into bounded retry/backoff instead of an unbounded
    wait.
    """

    def __init__(self, device_name: str):
        super().__init__(
            f"device {device_name!r} is stalled; transaction timed out"
        )
        self.device_name = device_name


class IODevice:
    """Base device: deterministic service time with bounded jitter.

    A device can be *stalled* by the fault layer
    (:mod:`repro.faults.injectors`): while stalled, :meth:`serve` raises
    :class:`DeviceStalledError` instead of answering, modelling a device
    that stops responding for a bounded window.
    """

    def __init__(
        self,
        name: str,
        service_cycles: int = 100,
        jitter_cycles: int = 0,
        rng: Optional[RandomSource] = None,
    ):
        if service_cycles < 0 or jitter_cycles < 0:
            raise ValueError(
                f"device {name!r}: negative timing "
                f"(service={service_cycles}, jitter={jitter_cycles})"
            )
        self.name = name
        self.service_cycles = service_cycles
        self.jitter_cycles = jitter_cycles
        self.rng = rng
        self.requests_served = 0
        self._stalled = False
        self.stalled_requests = 0
        self.stall_windows = 0

    @property
    def stalled(self) -> bool:
        return self._stalled

    def begin_stall(self) -> None:
        """Enter the stalled state (idempotent within one window)."""
        if not self._stalled:
            self._stalled = True
            self.stall_windows += 1

    def end_stall(self) -> None:
        """Leave the stalled state; subsequent requests serve normally."""
        self._stalled = False

    def wcrt_cycles(self) -> int:
        """Worst-case device response time (service + max jitter)."""
        return self.service_cycles + self.jitter_cycles

    def serve(self, payload_bytes: int) -> int:
        """Handle one request; returns the cycles the device needed.

        Raises :class:`DeviceStalledError` while the device is stalled;
        the request is counted but never answered.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        if self._stalled:
            self.stalled_requests += 1
            raise DeviceStalledError(self.name)
        jitter = 0
        if self.jitter_cycles > 0 and self.rng is not None:
            jitter = self.rng.randint(0, self.jitter_cycles)
        self.requests_served += 1
        return self.service_cycles + jitter

    def response_bytes(self, request_bytes: int) -> int:
        """Size of the device's answer to a ``request_bytes`` request."""
        return request_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.requests_served} served)"


class EchoDevice(IODevice):
    """Loops the request payload back -- the integration-test workhorse."""


class SensorDevice(IODevice):
    """Produces fixed-size readings regardless of the request size."""

    def __init__(
        self,
        name: str,
        reading_bytes: int = 16,
        service_cycles: int = 200,
        jitter_cycles: int = 0,
        rng: Optional[RandomSource] = None,
    ):
        super().__init__(
            name,
            service_cycles=service_cycles,
            jitter_cycles=jitter_cycles,
            rng=rng,
        )
        if reading_bytes < 1:
            raise ValueError(f"sensor {name!r}: reading must be >= 1 byte")
        self.reading_bytes = reading_bytes

    def response_bytes(self, request_bytes: int) -> int:
        return self.reading_bytes


class ActuatorDevice(IODevice):
    """Consumes commands and answers with a short acknowledgement."""

    ACK_BYTES = 2

    def response_bytes(self, request_bytes: int) -> int:
        return self.ACK_BYTES
