"""Shared trial machinery for the case-study systems (Sec. V-C).

A *workload instance* fixes everything stochastic about one trial --
release times, per-job actual execution times, payload sizes -- so that
"the data input to the examined systems was identical in each execution"
(the paper's fairness requirement).  Systems only differ in how they
schedule and what overheads they add.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.clock import DEFAULT_CYCLES_PER_SLOT, DEFAULT_FREQUENCY_HZ
from repro.sim.rng import RandomSource
from repro.tasks.task import Criticality, IOTask
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class TrialConfig:
    """Knobs of one case-study trial."""

    horizon_slots: int = 100_000
    cycles_per_slot: int = DEFAULT_CYCLES_PER_SLOT
    frequency_hz: int = DEFAULT_FREQUENCY_HZ
    #: Actual execution times are uniform in
    #: [wcet * exec_fraction_min, wcet * exec_fraction_max]: "the
    #: execution time of a task is affected by diverse factors", so the
    #: target utilization is an upper envelope, not the realised load.
    exec_fraction_min: float = 0.85
    exec_fraction_max: float = 1.0
    #: Release jitter ceiling as a fraction of the period (sporadic
    #: arrivals; jitter only delays releases).
    release_jitter_fraction: float = 0.05
    #: Draw a uniform-random initial phase per task per trial.  Tasks in
    #: a deployed vehicle start at unrelated times; a synchronized
    #: critical instant every hyper-period is an adversarial artefact,
    #: not the measured behaviour.
    randomize_phases: bool = True
    #: Keep per-job response-time samples (slots) on the trial result.
    #: Off by default: big sweeps only need the aggregates.
    collect_responses: bool = False

    def __post_init__(self):
        if self.horizon_slots < 1:
            raise ValueError(f"horizon must be >= 1 slot, got {self.horizon_slots}")
        if not 0 < self.exec_fraction_min <= self.exec_fraction_max <= 1.0:
            raise ValueError(
                "execution fractions must satisfy 0 < min <= max <= 1, got "
                f"[{self.exec_fraction_min}, {self.exec_fraction_max}]"
            )
        if not 0 <= self.release_jitter_fraction < 1:
            raise ValueError(
                f"jitter fraction must lie in [0, 1), got "
                f"{self.release_jitter_fraction}"
            )

    @property
    def slot_seconds(self) -> float:
        return self.cycles_per_slot / self.frequency_hz


@dataclass
class ReleasedJob:
    """One pre-drawn job instance of the workload."""

    task: IOTask
    index: int
    release_slot: int
    actual_slots: int

    @property
    def deadline_slot(self) -> int:
        return self.release_slot + self.task.deadline


@dataclass
class WorkloadInstance:
    """All stochastic draws of one trial, shared across systems."""

    taskset: TaskSet
    config: TrialConfig
    releases: List[ReleasedJob]
    target_utilization: float

    @property
    def job_count(self) -> int:
        return len(self.releases)

    def releases_by_slot(self) -> List[ReleasedJob]:
        return sorted(
            self.releases, key=lambda r: (r.release_slot, r.task.name, r.index)
        )


def prepare_workload(
    taskset: TaskSet,
    config: TrialConfig,
    rng: RandomSource,
    target_utilization: float = 0.0,
) -> WorkloadInstance:
    """Draw releases and actual execution times for one trial."""
    releases: List[ReleasedJob] = []
    for task in taskset:
        task_rng = rng.spawn(f"rel.{task.name}")
        jitter_cap = int(task.period * config.release_jitter_fraction)
        phase = (
            task_rng.randint(0, task.period - 1)
            if config.randomize_phases and task.period > 1
            else 0
        )
        index = 0
        while True:
            nominal = task.offset + phase + index * task.period
            if nominal >= config.horizon_slots:
                break
            jitter = task_rng.randint(0, jitter_cap) if jitter_cap > 0 else 0
            actual = max(
                1,
                int(
                    round(
                        task.wcet
                        * task_rng.uniform(
                            config.exec_fraction_min, config.exec_fraction_max
                        )
                    )
                ),
            )
            releases.append(
                ReleasedJob(
                    task=task,
                    index=index,
                    release_slot=nominal + jitter,
                    actual_slots=min(actual, task.wcet),
                )
            )
            index += 1
    return WorkloadInstance(
        taskset=taskset,
        config=config,
        releases=releases,
        target_utilization=target_utilization,
    )


@dataclass
class TrialResult:
    """Outcome of running one system over one workload instance."""

    system: str
    target_utilization: float
    horizon_slots: int
    slot_seconds: float
    #: criticality value -> (completed, missed) job counts.
    per_criticality: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    total_released: int = 0
    total_completed: int = 0
    total_missed: int = 0
    unfinished: int = 0
    bytes_transferred: int = 0
    response_slots_sum: float = 0.0
    response_slots_max: float = 0.0
    #: Per-job response samples of success-counted (safety/function)
    #: jobs; populated only when ``TrialConfig.collect_responses``.
    response_samples: List[float] = field(default_factory=list)
    #: task name -> response samples, for per-task jitter analysis;
    #: populated only when ``TrialConfig.collect_responses``.
    response_by_task: Dict[str, List[float]] = field(default_factory=dict)

    def record_response_sample(self, task_name: str, response: float) -> None:
        """Store one counted job's response for distribution analysis."""
        self.response_samples.append(response)
        self.response_by_task.setdefault(task_name, []).append(response)

    def record(self, criticality: Criticality, missed: bool) -> None:
        completed, misses = self.per_criticality.get(criticality.value, (0, 0))
        self.per_criticality[criticality.value] = (
            completed + 1,
            misses + (1 if missed else 0),
        )
        self.total_completed += 1
        if missed:
            self.total_missed += 1

    @property
    def success(self) -> bool:
        """Paper's trial success: no safety or function task missed.

        Jobs of counted criticalities that never finished inside the
        horizon also count as failures (they certainly missed).
        """
        for criticality in (Criticality.SAFETY, Criticality.FUNCTION):
            _completed, missed = self.per_criticality.get(
                criticality.value, (0, 0)
            )
            if missed > 0:
                return False
        return self.critical_unfinished == 0

    #: Unfinished jobs of counted criticalities (filled by the system).
    critical_unfinished: int = 0

    @property
    def throughput_mbps(self) -> float:
        """Payload throughput over the trial, in Mbit/s."""
        elapsed_seconds = self.horizon_slots * self.slot_seconds
        if elapsed_seconds <= 0:
            return 0.0
        return self.bytes_transferred * 8 / elapsed_seconds / 1e6

    @property
    def mean_response_slots(self) -> float:
        if self.total_completed == 0:
            return 0.0
        return self.response_slots_sum / self.total_completed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrialResult({self.system!r}, U*={self.target_utilization:.2f}, "
            f"completed={self.total_completed}, missed={self.total_missed}, "
            f"success={self.success})"
        )


class IOVirtSystem(abc.ABC):
    """Common interface of the four evaluated systems."""

    name: str = "abstract"

    @abc.abstractmethod
    def run_trial(
        self, workload: WorkloadInstance, rng: RandomSource
    ) -> TrialResult:
        """Execute one trial and report its outcome.

        ``rng`` carries the *system-specific* stochastic state (overhead
        jitter, contention draws); the workload's own draws are already
        frozen inside ``workload``.
        """

    def _new_result(self, workload: WorkloadInstance) -> TrialResult:
        return TrialResult(
            system=self.name,
            target_utilization=workload.target_utilization,
            horizon_slots=workload.config.horizon_slots,
            slot_seconds=workload.config.slot_seconds,
            total_released=workload.job_count,
        )


def cycles_to_slots(cycles: float, config: TrialConfig) -> float:
    """Convert a cycle quantity to fractional slots."""
    return cycles / config.cycles_per_slot


def slots_ceil(value: float) -> int:
    """Ceiling with a tolerance for float fuzz from cycle conversion."""
    return int(math.ceil(value - 1e-9))
