"""Analytic FIFO-served system model (shared by the three baselines).

All three baseline systems keep the conventional FIFO structure at the
I/O hardware level (Sec. I): requests are served in arrival order,
non-preemptively -- an urgent request waits behind every earlier bulk
transfer (head-of-line blocking), which is exactly the predictability
failure I/O-GUARD removes.

Because FIFO service admits a closed recurrence
(``start = max(server_free, arrival)``), baseline trials run in
O(jobs log jobs) instead of slot-stepping, which keeps the 1000-trial
sweeps of Fig. 7 tractable.  Subclasses supply the per-system hooks:
request/response path delays (software stack + NoC) and per-operation
service inflation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.base import (
    IOVirtSystem,
    ReleasedJob,
    TrialResult,
    WorkloadInstance,
    cycles_to_slots,
)
from repro.noc.latency import NocLatencyModel
from repro.noc.packet import FLIT_BYTES
from repro.sim.rng import RandomSource
from repro.virt.stack import SoftwareStackModel, stack_for


class FifoSystemModel(IOVirtSystem):
    """Base class: FIFO device service + pluggable path overheads."""

    name = "fifo-base"
    #: Which stack model charges the software path costs.
    stack_name = "legacy"
    #: Average hop count of the request path through the NoC.
    request_hops = 5
    #: Average hop count of the response path.
    response_hops = 5
    #: Extra service cycles charged per operation (hardware/backend
    #: virtualization processing).
    service_overhead_cycles = 0
    #: Multiplier applied to the offered NoC load (systems whose traffic
    #: crosses more shared links see higher effective contention).
    noc_load_factor = 1.0
    #: Multiplicative service inflation: fixed part (per-transfer
    #: management executed in software/on shared paths for every slot of
    #: device occupancy) ...
    service_inflation_base = 1.0
    #: ... plus a load-coupled part (cache/arbitration interference
    #: growing with offered load).
    service_inflation_load = 0.0
    #: Additional inflation per extra VM beyond the 4-VM reference group
    #: (per-VM on-chip interference, Obs 4), as a fraction per VM.
    service_inflation_per_vm = 0.0

    def __init__(self, noc_model: Optional[NocLatencyModel] = None):
        self.noc = noc_model or NocLatencyModel()
        self.stack: SoftwareStackModel = stack_for(self.stack_name)

    # -- hooks ---------------------------------------------------------------

    def effective_load(self, workload: WorkloadInstance) -> float:
        """Offered NoC/stack load for delay sampling.

        Scales with the target utilization and the VM count relative to
        the paper's 4-VM reference group: more VMs, more on-chip
        interference (Obs 4).
        """
        vm_count = max(1, len(workload.taskset.vm_ids()))
        vm_factor = 1.0 + 0.25 * max(0, vm_count - 4) / 4.0
        return min(0.95, workload.target_utilization * self.noc_load_factor * vm_factor)

    def request_delay_slots(
        self, job: ReleasedJob, load: float, rng: RandomSource,
        workload: WorkloadInstance,
    ) -> float:
        """Software + NoC delay from release to arrival at the device."""
        config = workload.config
        software = self.stack.request_delay(load, rng)
        flits = 1 + (job.task.payload_bytes + FLIT_BYTES - 1) // FLIT_BYTES
        noc = self.noc.sample(self.request_hops, flits, load, rng)
        return cycles_to_slots(software + noc, config)

    def response_delay_slots(
        self, job: ReleasedJob, load: float, rng: RandomSource,
        workload: WorkloadInstance,
    ) -> float:
        """Software + NoC delay from device completion to the app."""
        config = workload.config
        software = self.stack.response_delay(load, rng)
        flits = 1 + (job.task.payload_bytes + FLIT_BYTES - 1) // FLIT_BYTES
        noc = self.noc.sample(self.response_hops, flits, load, rng)
        return cycles_to_slots(software + noc, config)

    def service_inflation(self, workload: WorkloadInstance) -> float:
        """Multiplicative inflation of device occupancy for this system."""
        vm_count = max(1, len(workload.taskset.vm_ids()))
        load = min(1.0, workload.target_utilization)
        return (
            self.service_inflation_base
            + self.service_inflation_load * load
            + self.service_inflation_per_vm * max(0, vm_count - 4)
        )

    def service_slots(
        self, job: ReleasedJob, rng: RandomSource, workload: WorkloadInstance
    ) -> float:
        """Device occupancy for one job, in slots."""
        overhead = cycles_to_slots(
            self.service_overhead_cycles, workload.config
        )
        return job.actual_slots * self.service_inflation(workload) + overhead

    def arrival_time(
        self,
        job: ReleasedJob,
        load: float,
        rng: RandomSource,
        workload: WorkloadInstance,
    ) -> float:
        """When the request reaches the I/O subsystem (slots, float)."""
        return job.release_slot + self.request_delay_slots(
            job, load, rng, workload
        )

    # -- trial execution --------------------------------------------------------

    def run_trial(
        self, workload: WorkloadInstance, rng: RandomSource
    ) -> TrialResult:
        result = self._new_result(workload)
        load = self.effective_load(workload)
        horizon = workload.config.horizon_slots

        arrivals: List[Tuple[float, ReleasedJob]] = []
        for job in workload.releases_by_slot():
            arrivals.append(
                (self.arrival_time(job, load, rng, workload), job)
            )
        arrivals.sort(key=lambda pair: pair[0])

        server_free = 0.0
        for arrival, job in arrivals:
            start = max(server_free, arrival)
            completion = start + self.service_slots(job, rng, workload)
            server_free = completion
            finish = completion + self.response_delay_slots(
                job, load, rng, workload
            )
            if job.deadline_slot > horizon:
                # Censored: the observation window ends before the
                # job's verdict is due; excluded from all systems alike.
                continue
            missed = finish > job.deadline_slot
            result.record(job.task.criticality, missed)
            if completion > horizon:
                result.unfinished += 1
            else:
                result.bytes_transferred += job.task.payload_bytes
            response = finish - job.release_slot
            result.response_slots_sum += response
            result.response_slots_max = max(result.response_slots_max, response)
            if (
                workload.config.collect_responses
                and job.task.criticality.counts_for_success
            ):
                result.record_response_sample(job.task.name, response)
        return result
