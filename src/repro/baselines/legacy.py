"""BS|Legacy: NoC system without virtualization support (Sec. V).

"BS|Legacy was an NoC system without virtualization support, which left
the scheduling related to resource management to the routers, and each
processor is deemed as a VM."  No software hypervisor and the smallest
software path of the baselines -- but I/O access order is decided purely
by router arbitration (FIFO per port), so at high load the deep shared
paths toward the I/O corner congest, and the device itself still serves
a FIFO non-preemptively.
"""

from __future__ import annotations

from repro.baselines.fifo_system import FifoSystemModel


class LegacySystem(FifoSystemModel):
    """No virtualization; router-arbitrated access; FIFO device."""

    name = "legacy"
    stack_name = "legacy"
    # Requests traverse the full mesh toward the I/O corner: the average
    # XY path from a random processor in the 5x5 mesh to a corner is ~4
    # hops, plus the arbiter stage at the I/O attachment.
    request_hops = 5
    response_hops = 5
    # No virtualization processing on the device side.
    service_overhead_cycles = 0
    # All I/O traffic funnels through router arbitration with zero
    # system-level management -- the full offered load hits the shared
    # links (scheduling "left to the routers").
    noc_load_factor = 1.6
    # Every slot of device occupancy is driven by the processor across
    # the mesh (MMIO word-by-word, no hypervisor offload): service
    # stretches with router arbitration, growing with load and with the
    # number of contending cores.
    service_inflation_base = 1.10
    service_inflation_load = 0.39
    service_inflation_per_vm = 0.037
