"""BS|BV: BlueVisor hardware-assisted virtualization (Sec. V).

"BS|BV was a virtualized system built on hardware assistance (BlueVisor)
... the implementation of the BlueVisor remains the FIFO structure at
I/O hardware level, which hence cannot guarantee the I/O predictability"
(Sec. I).  The model therefore keeps the short hardware-assisted path
(thin stub stack, direct hypervisor connection, small per-op hardware
virtualization cost) while serving the device FIFO non-preemptively --
the single difference from I/O-GUARD's R-channel that the paper's
comparison isolates.
"""

from __future__ import annotations

from repro.baselines.fifo_system import FifoSystemModel


class BlueVisorSystem(FifoSystemModel):
    """Hardware hypervisor, FIFO I/O queues, no preemptive scheduling."""

    name = "bv"
    stack_name = "bv"
    # Processors connect to the BlueVisor coprocessor over a short
    # dedicated path; the hypervisor sits next to the I/Os.
    request_hops = 2
    response_hops = 2
    # Hardware translation/virtualization cost per operation (bounded,
    # BlueVisor's real-time translators).
    service_overhead_cycles = 250
    # Hypervisor-managed access keeps most traffic off the shared mesh.
    noc_load_factor = 0.8
    # Hardware virtualization keeps per-slot management small, but the
    # shared FIFO channel still serialises per-VM bookkeeping, and every
    # additional VM adds channel multiplexing work.
    service_inflation_base = 1.08
    service_inflation_load = 0.267
    service_inflation_per_vm = 0.056
