"""BS|RT-XEN: software hypervisor with real-time patches (Sec. V).

"BS|RT-XEN was a virtualized system established using a Xen hypervisor
with real-time patches and I/O enhancement.  Both patches and I/O
enhancement were implemented in software."  The modelled costs:

* trap-and-emulate request/response paths (the ``rt-xen`` stack model),
* vCPU budget gating: a guest that exhausted its RTDS budget cannot
  issue I/O until the next replenishment,
* serialised backend (driver-domain) processing per operation,
* higher effective NoC load (requests cross to the driver domain and
  back).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import ReleasedJob, TrialResult, WorkloadInstance
from repro.baselines.fifo_system import FifoSystemModel
from repro.noc.latency import NocLatencyModel
from repro.sim.rng import RandomSource
from repro.virt.vmm import SoftwareVMM, VCpuServer

#: RTDS-style default vCPU server, in scheduler slots (10 us each):
#: 4 ms period, 2.5 ms budget -- the stock RT-Xen configuration scaled
#: to the 100 MHz platform.
DEFAULT_VCPU_PERIOD_SLOTS = 400
DEFAULT_VCPU_BUDGET_SLOTS = 250


class RTXenSystem(FifoSystemModel):
    """Software VMM path with vCPU budget gating and backend service."""

    name = "rt-xen"
    stack_name = "rt-xen"
    # Guest -> driver domain -> device: the longest path of the four.
    request_hops = 7
    response_hops = 7
    # Backend driver-domain processing per operation.
    service_overhead_cycles = 900
    noc_load_factor = 1.3
    # Software virtualization on the whole data path: every slot of
    # device occupancy is shepherded by the driver domain (copies, grant
    # mappings, event channels), with strong load coupling from VMM
    # scheduling interference and the worst per-VM scaling of the four
    # systems (each guest adds trap/context-switch pressure).
    service_inflation_base = 1.155
    service_inflation_load = 0.15
    service_inflation_per_vm = 0.025

    def __init__(
        self,
        noc_model: Optional[NocLatencyModel] = None,
        vcpu_period_slots: int = DEFAULT_VCPU_PERIOD_SLOTS,
        vcpu_budget_slots: int = DEFAULT_VCPU_BUDGET_SLOTS,
    ):
        super().__init__(noc_model)
        self.vcpu_period_slots = vcpu_period_slots
        self.vcpu_budget_slots = vcpu_budget_slots
        self._vmm: Optional[SoftwareVMM] = None
        #: Per-VM I/O issues within the current vCPU period; an issue
        #: beyond the budget-proportional quota stalls to the next
        #: replenishment.
        self._period_issues: Dict[int, int] = {}
        self._period_index: Dict[int, int] = {}

    def _build_vmm(self, workload: WorkloadInstance) -> SoftwareVMM:
        vm_ids = workload.taskset.vm_ids() or [0]
        # More vCPUs contending shrinks the budget each receives: the
        # RTDS schedule must fit all vCPUs on the physical cores.
        contention = max(1.0, len(vm_ids) / 4.0)
        budget = max(1, int(self.vcpu_budget_slots / contention))
        servers = [
            VCpuServer(
                vm_id=vm_id, budget=budget, period=self.vcpu_period_slots
            )
            for vm_id in vm_ids
        ]
        return SoftwareVMM(servers, backend_cycles_per_op=self.service_overhead_cycles)

    def run_trial(
        self, workload: WorkloadInstance, rng: RandomSource
    ) -> TrialResult:
        self._vmm = self._build_vmm(workload)
        self._period_issues = {}
        self._period_index = {}
        return super().run_trial(workload, rng)

    def arrival_time(
        self,
        job: ReleasedJob,
        load: float,
        rng: RandomSource,
        workload: WorkloadInstance,
    ) -> float:
        """Release -> (budget gate) -> software path -> backend queue."""
        issue_slot = self._budget_gate(job, workload)
        return issue_slot + self.request_delay_slots(job, load, rng, workload)

    def _budget_gate(self, job: ReleasedJob, workload: WorkloadInstance) -> float:
        """Earliest slot the guest's vCPU can issue the request.

        Approximates RTDS budget accounting at I/O granularity: each
        period admits a number of I/O issues proportional to the vCPU's
        budget share; issues beyond the quota wait for the next period.
        """
        vm_id = job.task.vm_id
        period = self.vcpu_period_slots
        vm_count = max(1, len(workload.taskset.vm_ids()))
        contention = max(1.0, vm_count / 4.0)
        budget = max(1, int(self.vcpu_budget_slots / contention))
        # One issue costs ~the guest-side processing of the request; the
        # quota is how many fit in the per-period budget, derated by the
        # guest's own computational load at this utilization.
        issue_cost_slots = max(
            1.0,
            self.stack.request_path_cycles / workload.config.cycles_per_slot,
        )
        compute_share = min(0.9, workload.target_utilization * 0.5)
        quota = max(1, int(budget * (1.0 - compute_share) / issue_cost_slots))
        current_period = job.release_slot // period
        if self._period_index.get(vm_id) != current_period:
            self._period_index[vm_id] = current_period
            self._period_issues[vm_id] = 0
        if self._period_issues[vm_id] < quota:
            self._period_issues[vm_id] += 1
            return float(job.release_slot)
        # Stalled to the next replenishment.
        self._period_index[vm_id] = current_period + 1
        self._period_issues[vm_id] = 1
        return float((current_period + 1) * period)
