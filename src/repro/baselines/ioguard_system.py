"""I/O-GUARD-x full-system model (Sec. V-C).

Drives the *real* hypervisor core from :mod:`repro.core` -- time slot
table, two-layer preemptive-EDF scheduler, per-VM I/O pools -- over the
shared workload instance:

* ``preload_fraction`` implements the paper's I/O-GUARD-x configuration
  ("x% of I/O tasks were executed by the P channel");
* pre-defined tasks get staggered start times, are packed into sigma*
  and executed by the P-channel at their table slots (their deadlines
  hold by construction);
* run-time tasks are released per the workload draws, cross the thin
  para-virtual driver path (the ``ioguard`` stack model plus a 1-2 hop
  NoC transfer: processors connect to the hypervisor "without involving
  arbiters/routers") and are scheduled by the two-layer scheduler.

Server dimensioning per trial is ``proportional`` by default (fast,
utilization-proportional budgets validated to fit the free bandwidth);
``analytic`` dimensioning via Theorems 2+4 is available for the
schedulability experiments.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.analysis.servers import design_servers
from repro.baselines.base import (
    IOVirtSystem,
    ReleasedJob,
    TrialResult,
    WorkloadInstance,
    cycles_to_slots,
)
from repro.core.gsched import ServerSpec
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.timeslot import (
    TableOverflowError,
    TimeSlotTable,
    build_pchannel_table,
    stagger_offsets,
)
from repro.noc.latency import NocLatencyModel
from repro.noc.packet import FLIT_BYTES
from repro.sim.rng import RandomSource
from repro.tasks.task import Job, TaskKind
from repro.tasks.taskset import TaskSet
from repro.virt.stack import stack_for

#: Default server period for proportional dimensioning (1 ms at the
#: case-study 10 us slot).
PROPORTIONAL_PERIOD = 100

#: Budget head-room multiplier over the VM's raw utilization.
PROPORTIONAL_MARGIN = 1.25


class IOGuardSystem(IOVirtSystem):
    """The proposed system at a given P-channel preload fraction."""

    stack_name = "ioguard"
    #: Processors connect directly to the hypervisor.
    request_hops = 1
    response_hops = 1
    noc_load_factor = 0.3

    def __init__(
        self,
        preload_fraction: float = 0.4,
        server_policy: str = "proportional",
        noc_model: Optional[NocLatencyModel] = None,
        placement: str = "spread",
    ):
        if not 0.0 <= preload_fraction <= 1.0:
            raise ValueError(
                f"preload fraction must lie in [0, 1], got {preload_fraction}"
            )
        if server_policy not in ("proportional", "analytic"):
            raise ValueError(
                f"server_policy must be 'proportional' or 'analytic', "
                f"got {server_policy!r}"
            )
        if placement not in ("spread", "contiguous"):
            raise ValueError(
                f"placement must be 'spread' or 'contiguous', got {placement!r}"
            )
        self.preload_fraction = preload_fraction
        self.server_policy = server_policy
        self.placement = placement
        self.noc = noc_model or NocLatencyModel()
        self.stack = stack_for(self.stack_name)
        self.name = f"ioguard-{int(round(preload_fraction * 100))}"
        if placement != "spread":
            self.name += f"-{placement}"

    # -- configuration ------------------------------------------------------------

    def _split_with_fallback(
        self, taskset: TaskSet
    ) -> Tuple[TaskSet, TimeSlotTable]:
        """Apply the preload split, demoting tasks the table cannot hold.

        The greedy spread packer can fail at very high pre-load
        utilization; demoting the largest-period pre-defined task back to
        the R-channel and retrying converges because each demotion
        strictly reduces P-channel demand.
        """
        split = taskset.split_predefined(self.preload_fraction)
        while True:
            predefined = stagger_offsets(split.predefined())
            try:
                table = build_pchannel_table(
                    predefined, placement=self.placement
                )
            except TableOverflowError:
                candidates = sorted(
                    split.predefined(),
                    key=lambda task: (-task.period, task.name),
                )
                if not candidates:
                    raise
                demoted = candidates[0]
                split[demoted.name].kind = TaskKind.RUNTIME
                continue
            # Rebuild the split set so task objects carry the staggered
            # offsets the table was built with.
            merged = TaskSet(name=split.name)
            merged.extend(predefined)
            merged.extend(
                task.renamed(task.name) for task in split.runtime()
            )
            return merged, table

    def _dimension_servers(
        self, table: TimeSlotTable, runtime: TaskSet
    ) -> List[ServerSpec]:
        vm_tasksets = runtime.by_vm()
        if not vm_tasksets:
            return []
        if self.server_policy == "analytic":
            design = design_servers(table, vm_tasksets)
            if design.servers:
                return [
                    ServerSpec(vm, pi, theta)
                    for vm, (pi, theta) in sorted(design.servers.items())
                ]
            # Fall through to proportional when analytic design fails.
        return self._proportional_servers(table, vm_tasksets)

    def _proportional_servers(
        self, table: TimeSlotTable, vm_tasksets: Dict[int, TaskSet]
    ) -> List[ServerSpec]:
        """Utilization-proportional budgets on a common period.

        Budgets are scaled down together when they would exceed the free
        bandwidth the table leaves -- the G-Sched cannot promise more
        than ``F/H``.
        """
        pi = PROPORTIONAL_PERIOD
        raw = {
            vm: max(1, math.ceil(tasks.utilization * pi * PROPORTIONAL_MARGIN))
            for vm, tasks in vm_tasksets.items()
        }
        free_budget = table.free_fraction * pi * 0.98
        total = sum(raw.values())
        if total > free_budget and total > 0:
            scale = free_budget / total
            raw = {vm: max(1, int(theta * scale)) for vm, theta in raw.items()}
        return [
            ServerSpec(vm, pi, min(pi, theta))
            for vm, theta in sorted(raw.items())
        ]

    # -- trial execution ---------------------------------------------------------------

    def run_trial(
        self, workload: WorkloadInstance, rng: RandomSource
    ) -> TrialResult:
        result = self._new_result(workload)
        config = workload.config
        split, table = self._split_with_fallback(workload.taskset)
        runtime = split.runtime()
        servers = self._dimension_servers(table, runtime)

        pchannel = PChannel(split.predefined(), table=table)
        rchannel = RChannel(servers, pool_capacity=max(64, len(runtime) * 4))

        predefined_names = {task.name for task in split.predefined()}
        load = min(0.95, workload.target_utilization * self.noc_load_factor)

        # Pre-compute run-time job arrivals (release + driver/NoC delay).
        arrivals: List[Tuple[int, ReleasedJob]] = []
        for released in workload.releases:
            if released.task.name in predefined_names:
                continue
            delay = self._request_delay_slots(released, load, rng, workload)
            arrivals.append(
                (int(math.ceil(released.release_slot + delay)), released)
            )
        arrivals.sort(key=lambda pair: pair[0])

        horizon = config.horizon_slots
        cursor = 0
        completed: List[Tuple[Job, int]] = []
        for slot in range(horizon):
            while cursor < len(arrivals) and arrivals[cursor][0] <= slot:
                _arrival, released = arrivals[cursor]
                job = released.task.job(
                    release=released.release_slot, index=released.index
                )
                job.remaining = released.actual_slots
                rchannel.submit(job)
                cursor += 1
            rchannel.tick(slot)
            if pchannel.occupies(slot):
                job = pchannel.execute_slot(slot)
            else:
                job = rchannel.execute_slot(slot)
            if job is not None:
                completed.append((job, slot))

        # Account completions: response-path delay added before the
        # deadline comparison.  Jobs whose deadline lies beyond the
        # horizon are censored (the window ends before their verdict),
        # matching the baseline accounting.
        for job, slot in completed:
            deadline = job.release + job.task.deadline
            if deadline > horizon:
                continue
            response = self._response_delay_slots(job, load, rng, workload)
            finish = (slot + 1) + response
            missed = finish > deadline
            result.record(job.task.criticality, missed)
            result.bytes_transferred += job.task.payload_bytes
            elapsed = finish - job.release
            result.response_slots_sum += elapsed
            result.response_slots_max = max(result.response_slots_max, elapsed)
            if (
                workload.config.collect_responses
                and job.task.criticality.counts_for_success
            ):
                result.record_response_sample(job.task.name, elapsed)

        # Jobs still queued at the horizon with an expired deadline have
        # certainly missed it.
        for pool in rchannel.pools.values():
            for job in pool.queue.jobs():
                if job.release + job.task.deadline <= horizon:
                    result.record(job.task.criticality, True)
                    result.unfinished += 1
        return result

    # -- delay hooks ---------------------------------------------------------------------

    def _request_delay_slots(
        self,
        released: ReleasedJob,
        load: float,
        rng: RandomSource,
        workload: WorkloadInstance,
    ) -> float:
        software = self.stack.request_delay(load, rng)
        flits = 1 + (released.task.payload_bytes + FLIT_BYTES - 1) // FLIT_BYTES
        noc = self.noc.sample(self.request_hops, flits, load, rng)
        return cycles_to_slots(software + noc, workload.config)

    def _response_delay_slots(
        self,
        job: Job,
        load: float,
        rng: RandomSource,
        workload: WorkloadInstance,
    ) -> float:
        software = self.stack.response_delay(load, rng)
        flits = 1 + (job.task.payload_bytes + FLIT_BYTES - 1) // FLIT_BYTES
        noc = self.noc.sample(self.response_hops, flits, load, rng)
        return cycles_to_slots(software + noc, workload.config)
