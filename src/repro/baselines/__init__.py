"""Full-system models: I/O-GUARD and the three baseline systems (Sec. V).

Every system consumes the same workload description (a
:class:`~repro.tasks.taskset.TaskSet` plus a seeded trial configuration)
and produces a :class:`~repro.baselines.base.TrialResult`, so the
case-study experiment treats them uniformly:

* :class:`~repro.baselines.legacy.LegacySystem` -- BS|Legacy: no
  virtualization, router-arbitrated access, FIFO I/O hardware,
* :class:`~repro.baselines.rtxen.RTXenSystem` -- BS|RT-XEN: software
  hypervisor with real-time patches and I/O enhancement,
* :class:`~repro.baselines.bluevisor.BlueVisorSystem` -- BS|BV:
  BlueVisor hardware-assisted virtualization, FIFO I/O hardware,
* :class:`~repro.baselines.ioguard_system.IOGuardSystem` --
  I/O-GUARD-x with the real hypervisor core from :mod:`repro.core`.
"""

from repro.baselines.base import (
    IOVirtSystem,
    TrialConfig,
    TrialResult,
    WorkloadInstance,
    prepare_workload,
)
from repro.baselines.fifo_system import FifoSystemModel
from repro.baselines.legacy import LegacySystem
from repro.baselines.rtxen import RTXenSystem
from repro.baselines.bluevisor import BlueVisorSystem
from repro.baselines.ioguard_system import IOGuardSystem

__all__ = [
    "BlueVisorSystem",
    "FifoSystemModel",
    "IOGuardSystem",
    "IOVirtSystem",
    "LegacySystem",
    "RTXenSystem",
    "TrialConfig",
    "TrialResult",
    "WorkloadInstance",
    "prepare_workload",
]
