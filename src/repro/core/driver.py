"""Virtualization driver (Sec. III-B).

"The design of the virtualization driver contains a pair of open-source
real-time translators, a standardized I/O controller, and memory banks."
The request-path translator turns virtualized I/O operations into
bottom-level controller instructions; the controller drives the external
device; the response path translates returned data.  Low-level driver
code sits in dedicated memory banks loaded at initialization.

The model's job is timing composition: one *operation* costs

    request translation + controller transfer (request)
    + device service + controller transfer (response)
    + response translation

all in platform cycles, with every term individually bounded, so the
whole driver has a bounded WCET -- the property the slot-based scheduler
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.translator import RealTimeTranslator
from repro.hw.controller import IOController
from repro.hw.devices import DeviceStalledError, IODevice
from repro.hw.memory import MemoryBank
from repro.sim.trace import TraceRecorder

#: Nominal size of the low-level controller driver code loaded into the
#: driver's memory bank (per protocol; KB-scale as in Fig. 6).
DRIVER_CODE_BYTES = {
    "spi": 3 * 1024,
    "i2c": 4 * 1024,
    "uart": 2 * 1024,
    "ethernet": 14 * 1024,
    "flexray": 10 * 1024,
    "can": 6 * 1024,
    "gpio": 1 * 1024,
    "generic": 4 * 1024,
}


@dataclass(frozen=True)
class OperationTiming:
    """Cycle breakdown of one executed I/O operation."""

    request_translation: int
    request_transfer: int
    device_service: int
    response_transfer: int
    response_translation: int

    @property
    def total(self) -> int:
        return (
            self.request_translation
            + self.request_transfer
            + self.device_service
            + self.response_transfer
            + self.response_translation
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + bounded-retry/backoff parameters of the guarded path.

    A stalled device must cost a *bounded* number of cycles: each failed
    attempt charges ``timeout_cycles`` (the controller's transaction
    timeout) plus a linearly growing ``backoff_cycles`` gap before the
    next attempt, and after ``max_attempts`` the operation is abandoned
    -- the executor never wedges on a dead device.
    """

    max_attempts: int = 3
    timeout_cycles: int = 2_000
    backoff_cycles: int = 500

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_cycles < 1:
            raise ValueError(
                f"timeout_cycles must be >= 1, got {self.timeout_cycles}"
            )
        if self.backoff_cycles < 0:
            raise ValueError(
                f"backoff_cycles must be >= 0, got {self.backoff_cycles}"
            )

    def penalty_cycles(self, attempt: int) -> int:
        """Cycles one timed-out attempt costs (``attempt`` is 1-based)."""
        return self.timeout_cycles + self.backoff_cycles * (attempt - 1)

    @property
    def worst_case_penalty_cycles(self) -> int:
        """Bound on the cycles a fully-failed operation can burn."""
        return sum(
            self.penalty_cycles(attempt)
            for attempt in range(1, self.max_attempts + 1)
        )


@dataclass(frozen=True)
class GuardedOperation:
    """Outcome of one guarded (timeout-protected) operation."""

    timing: Optional[OperationTiming]
    attempts: int
    penalty_cycles: int

    @property
    def succeeded(self) -> bool:
        return self.timing is not None

    @property
    def total_cycles(self) -> int:
        """Cycles the executor actually spent, retries included."""
        return self.penalty_cycles + (self.timing.total if self.timing else 0)


class VirtualizationDriver:
    """Translator pair + standardized I/O controller + memory banks."""

    def __init__(
        self,
        controller: IOController,
        device: IODevice,
        request_translator: RealTimeTranslator = None,
        response_translator: RealTimeTranslator = None,
        memory_bank: MemoryBank = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.controller = controller
        self.device = device
        self.trace = trace
        self.request_translator = request_translator or RealTimeTranslator("request")
        self.response_translator = response_translator or RealTimeTranslator(
            "response"
        )
        if self.request_translator.direction != "request":
            raise ValueError("request_translator must have direction 'request'")
        if self.response_translator.direction != "response":
            raise ValueError("response_translator must have direction 'response'")
        self.memory_bank = memory_bank or MemoryBank(f"{controller.name}.bank")
        code_bytes = DRIVER_CODE_BYTES.get(
            controller.protocol, DRIVER_CODE_BYTES["generic"]
        )
        self.memory_bank.load(f"driver.{controller.protocol}", code_bytes)
        self.operations_executed = 0
        self.total_cycles = 0
        self.retries_performed = 0
        self.operations_timed_out = 0

    def execute_operation(self, payload_bytes: int) -> OperationTiming:
        """Run one I/O operation end to end; returns its cycle breakdown."""
        request_translation = self.request_translator.translate(payload_bytes)
        request_transfer = self.controller.record_transfer(payload_bytes)
        device_service = self.device.serve(payload_bytes)
        response_bytes = self.device.response_bytes(payload_bytes)
        response_transfer = self.controller.record_transfer(response_bytes)
        response_translation = self.response_translator.translate(response_bytes)
        timing = OperationTiming(
            request_translation=request_translation,
            request_transfer=request_transfer,
            device_service=device_service,
            response_transfer=response_transfer,
            response_translation=response_translation,
        )
        self.operations_executed += 1
        self.total_cycles += timing.total
        return timing

    def execute_guarded(
        self,
        payload_bytes: int,
        policy: Optional[RetryPolicy] = None,
        slot: int = 0,
    ) -> GuardedOperation:
        """Run one operation under timeout + bounded retry/backoff.

        A :class:`~repro.hw.devices.DeviceStalledError` from the device
        costs ``policy.penalty_cycles(attempt)`` and triggers a retry;
        after ``policy.max_attempts`` failures the operation is reported
        as timed out (``succeeded == False``) so the caller -- typically
        the manager's degradation policy -- can quarantine the device
        instead of wedging the executor.  ``slot`` stamps the
        ``driver.retry`` / ``driver.timeout`` trace events.
        """
        policy = policy or RetryPolicy()
        penalty = 0
        for attempt in range(1, policy.max_attempts + 1):
            try:
                timing = self.execute_operation(payload_bytes)
            except DeviceStalledError:
                penalty += policy.penalty_cycles(attempt)
                if attempt < policy.max_attempts:
                    self.retries_performed += 1
                    if self.trace is not None:
                        self.trace.record(
                            slot, "driver.retry", self.controller.name,
                            device=self.device.name, attempt=attempt,
                            penalty_cycles=penalty,
                        )
                continue
            self.total_cycles += penalty
            return GuardedOperation(
                timing=timing, attempts=attempt, penalty_cycles=penalty
            )
        self.operations_timed_out += 1
        self.total_cycles += penalty
        if self.trace is not None:
            self.trace.record(
                slot, "driver.timeout", self.controller.name,
                device=self.device.name, attempts=policy.max_attempts,
                penalty_cycles=penalty,
            )
        return GuardedOperation(
            timing=None, attempts=policy.max_attempts, penalty_cycles=penalty
        )

    def wcet_cycles(self, payload_bytes: int) -> int:
        """Bound on one operation's cycles for a given payload size."""
        response_bytes = self.device.response_bytes(payload_bytes)
        return (
            self.request_translator.wcet_cycles(payload_bytes)
            + self.controller.transfer_cycles(payload_bytes)
            + self.device.wcrt_cycles()
            + self.controller.transfer_cycles(response_bytes)
            + self.response_translator.wcet_cycles(response_bytes)
        )

    def fits_slot(self, payload_bytes: int, slot_cycles: int) -> bool:
        """Whether one operation of this size completes within a slot.

        The slot-level scheduler charges each queued job an integer
        number of slots; a task whose per-slot operation exceeds the slot
        length must be declared with a proportionally larger WCET.
        """
        return self.wcet_cycles(payload_bytes) <= slot_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualizationDriver({self.controller.protocol!r}, "
            f"{self.operations_executed} ops)"
        )
