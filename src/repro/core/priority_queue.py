"""Random-access priority queue (Sec. III-A).

Conventional I/O controllers buffer requests in FIFOs, which "forbids
context switches at the hardware level" (Sec. I).  The I/O-GUARD queue
adds one parameter slot per buffered task, accessible to the schedulers,
and supports random access so tasks can be prioritised and removed out of
arrival order.

The model preserves the two hardware constraints that matter to the
evaluation: a *bounded capacity* (on-chip registers) and *O(1) observable
operations at slot granularity* (the schedulers read the head between
slots).  Internally a binary heap with lazy deletion keeps large
simulations fast; the lazy entries are invisible through the public API.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.tasks.task import Job

#: Monotonic identifier per queue instance.  Handles stamped onto jobs
#: are keyed by this uid, so two queues never read each other's handles
#: and a uid is never reused within a process (unlike ``id(queue)``).
_queue_uid = itertools.count()

#: Attribute under which a job carries its per-queue insertion handles.
_HANDLE_ATTR = "_pq_handles"


class QueueFullError(RuntimeError):
    """Raised when inserting into a full hardware queue.

    A full queue is back-pressure to the issuing VM; the system models
    decide whether to stall or drop (I/O-GUARD sizes queues from the
    per-VM task count so this only fires on mis-configuration).
    """


class PriorityQueue:
    """Bounded priority queue ordered by absolute deadline.

    Ties on the deadline break by insertion order, matching a hardware
    comparator tree that scans slots in index order.
    """

    def __init__(self, capacity: int = 64, name: str = "pq") -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._uid = next(_queue_uid)
        self._heap: List[Tuple[int, int, Job]] = []
        #: Live entries keyed by insertion sequence number.  Sequence
        #: numbers are monotonic and never reused, unlike ``id(job)``:
        #: CPython recycles object ids after garbage collection, so an
        #: id-keyed table can alias a lazily-deleted heap entry with an
        #: unrelated live job under heavy job churn.  Random access goes
        #: through a handle stamped onto the job at insertion (see
        #: :meth:`_handle_of`); no liveness decision ever consults
        #: ``id()``.
        self._live: Dict[int, Job] = {}
        self._sequence = itertools.count()
        # statistics
        self.total_inserted = 0
        self.total_removed = 0
        self.peak_occupancy = 0

    # -- job handles ---------------------------------------------------------

    def _handle_of(self, job: Job) -> Optional[int]:
        """Insertion sequence handle of ``job`` in *this* queue, if live.

        The handle is stamped onto the job object at :meth:`insert` and
        removed at :meth:`pop`/:meth:`remove`, so membership is keyed by
        the monotonic insertion sequence rather than ``id(job)`` -- a
        recycled object id can never alias a lazily-deleted heap entry.
        """
        handles: Optional[Dict[int, int]] = getattr(job, _HANDLE_ATTR, None)
        if handles is None:
            return None
        seq = handles.get(self._uid)
        if seq is None or self._live.get(seq) is not job:
            return None
        return seq

    # -- core operations -----------------------------------------------------

    def insert(self, job: Job) -> None:
        """Buffer a job; raises :class:`QueueFullError` when full."""
        if len(self._live) >= self.capacity:
            raise QueueFullError(
                f"queue {self.name!r} full ({self.capacity} slots); "
                f"cannot buffer {job.name}"
            )
        if self._handle_of(job) is not None:
            raise ValueError(f"job {job.name} is already buffered in {self.name!r}")
        seq = next(self._sequence)
        heapq.heappush(self._heap, (job.absolute_deadline, seq, job))
        self._live[seq] = job
        handles: Optional[Dict[int, int]] = getattr(job, _HANDLE_ATTR, None)
        if handles is None:
            handles = {}
            setattr(job, _HANDLE_ATTR, handles)
        handles[self._uid] = seq
        self.total_inserted += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._live))

    def peek(self) -> Optional[Job]:
        """Earliest-deadline buffered job, or None when empty."""
        self._prune()
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Job:
        """Remove and return the earliest-deadline job."""
        self._prune()
        if not self._heap:
            raise IndexError(f"pop from empty queue {self.name!r}")
        _deadline, seq, job = heapq.heappop(self._heap)
        del self._live[seq]
        self._drop_handle(job)
        self.total_removed += 1
        return job

    def remove(self, job: Job) -> bool:
        """Random-access removal; True when the job was buffered."""
        seq = self._handle_of(job)
        if seq is None:
            return False
        del self._live[seq]
        self._drop_handle(job)
        self.total_removed += 1
        # The heap entry stays until pruned (lazy deletion).
        return True

    def __contains__(self, job: Job) -> bool:
        return self._handle_of(job) is not None

    def _drop_handle(self, job: Job) -> None:
        handles: Optional[Dict[int, int]] = getattr(job, _HANDLE_ATTR, None)
        if handles is not None:
            handles.pop(self._uid, None)

    # -- random-access parameter interface --------------------------------------

    def jobs(self) -> List[Job]:
        """Snapshot of buffered jobs in deadline order (random access).

        Deadline ties break by insertion sequence -- the same order the
        heap serves them -- so the snapshot is reproducible across runs
        (an ``id``-based tie-break would depend on memory layout).
        """
        return [
            job
            for _seq, job in sorted(
                self._live.items(),
                key=lambda entry: (entry[1].absolute_deadline, entry[0]),
            )
        ]

    def find(self, predicate: Callable[[Job], bool]) -> Optional[Job]:
        """First job (deadline order) satisfying ``predicate``."""
        for job in self.jobs():
            if predicate(job):
                return job
        return None

    def jobs_of_task(self, task_name: str) -> List[Job]:
        return [job for job in self.jobs() if job.task.name == task_name]

    # -- bookkeeping ---------------------------------------------------------

    def _prune(self) -> None:
        while self._heap and self._heap[0][1] not in self._live:
            heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs())

    @property
    def is_full(self) -> bool:
        return len(self._live) >= self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PriorityQueue({self.name!r}, {len(self._live)}/{self.capacity})"


class FIFOQueue:
    """Conventional FIFO I/O queue -- the baseline hardware structure.

    Used by the BS|Legacy and BS|BV system models.  Only head access is
    possible; no reordering, no random access, no preemption support.
    Same capacity semantics as :class:`PriorityQueue` so the system
    models can swap one for the other (the paper's central ablation).
    """

    def __init__(self, capacity: int = 64, name: str = "fifo") -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: List[Job] = []
        self.total_inserted = 0
        self.total_removed = 0
        self.peak_occupancy = 0

    def insert(self, job: Job) -> None:
        if len(self._items) >= self.capacity:
            raise QueueFullError(
                f"queue {self.name!r} full ({self.capacity} slots); "
                f"cannot buffer {job.name}"
            )
        self._items.append(job)
        self.total_inserted += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))

    def peek(self) -> Optional[Job]:
        return self._items[0] if self._items else None

    def pop(self) -> Job:
        if not self._items:
            raise IndexError(f"pop from empty queue {self.name!r}")
        self.total_removed += 1
        return self._items.pop(0)

    def jobs(self) -> List[Job]:
        return list(self._items)

    def __contains__(self, job: Job) -> bool:
        return any(item is job for item in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FIFOQueue({self.name!r}, {len(self._items)}/{self.capacity})"
