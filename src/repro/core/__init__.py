"""The I/O-GUARD hypervisor: the paper's primary contribution.

The hypervisor (Sec. III) is split exactly as the paper partitions it:

* :mod:`repro.core.timeslot` -- the Time Slot Table sigma* recording the
  static P-channel schedule per hyper-period,
* :mod:`repro.core.priority_queue` -- the random-access priority queue
  that replaces the conventional FIFO at the I/O hardware level,
* :mod:`repro.core.iopool` -- per-VM I/O pool (queue + control logic +
  shadow register + local scheduler),
* :mod:`repro.core.lsched` / :mod:`repro.core.gsched` -- the two-layer
  preemptive-EDF scheduler,
* :mod:`repro.core.pchannel` / :mod:`repro.core.rchannel` -- the two
  request channels of the virtualization manager,
* :mod:`repro.core.manager` -- the virtualization manager proper,
* :mod:`repro.core.translator` / :mod:`repro.core.driver` -- the
  virtualization driver (real-time translators + I/O controller),
* :mod:`repro.core.hypervisor` -- the top-level
  :class:`~repro.core.hypervisor.IOGuardHypervisor` assembling one
  manager + driver pair per I/O device.
"""

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.modes import Mode, ModeChange, ModeManager
from repro.core.timeslot import TimeSlotTable, build_pchannel_table, stagger_offsets
from repro.core.priority_queue import PriorityQueue, QueueFullError
from repro.core.lsched import LocalScheduler
from repro.core.gsched import GlobalScheduler, ServerSpec
from repro.core.iopool import IOPool
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.manager import VirtualizationManager
from repro.core.translator import RealTimeTranslator, TranslationRecord
from repro.core.driver import VirtualizationDriver
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "GlobalScheduler",
    "HypervisorConfig",
    "IOGuardHypervisor",
    "IOPool",
    "LocalScheduler",
    "Mode",
    "ModeChange",
    "ModeManager",
    "PChannel",
    "PriorityQueue",
    "QueueFullError",
    "RChannel",
    "RealTimeTranslator",
    "ServerSpec",
    "TimeSlotTable",
    "TranslationRecord",
    "VirtualizationDriver",
    "VirtualizationManager",
    "build_pchannel_table",
    "stagger_offsets",
]
