"""G-Sched: the global scheduler (Sec. III-A, Sec. IV-A).

The global scheduler "physically connects to the shadow registers in all
I/O pools and the memory banks in the P-channel.  It simultaneously
compares the deadlines of the I/O operations buffered in the shadow
registers and checks free time slots in the time slot table, deciding the
next task to be executed and the starting time point."

The allocation realises the analysis model: each VM i is backed by a
periodic server ``Gamma_i = (Pi_i, Theta_i)`` whose jobs (one per server
period, ``Theta_i`` slots of budget, implicit deadline) are scheduled by
EDF over the free slots of sigma.  Slots no budgeted server can use are
handed out as *background* slots to keep the hardware work-conserving;
background allocation never consumes budget, so the analytic guarantee of
Theorem 1 is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class ServerSpec:
    """Static description of one VM's periodic server."""

    vm_id: int
    pi: int
    theta: int

    def __post_init__(self) -> None:
        if self.pi < 1:
            raise ValueError(f"server period must be >= 1, got {self.pi}")
        if not 0 < self.theta <= self.pi:
            raise ValueError(
                f"server budget must satisfy 0 < theta <= pi, got "
                f"theta={self.theta}, pi={self.pi}"
            )

    @property
    def bandwidth(self) -> float:
        return self.theta / self.pi


class _ServerState:
    """Run-time budget accounting for one server."""

    __slots__ = ("spec", "budget", "deadline", "slots_consumed", "_last_boundary")

    def __init__(self, spec: ServerSpec) -> None:
        self.spec = spec
        self.budget = 0
        self.deadline = 0
        self.slots_consumed = 0
        self._last_boundary: Optional[int] = None

    def replenish_if_due(self, slot: int) -> bool:
        """Full replenishment at the latest period boundary <= ``slot``.

        A caller is allowed to advance the clock by more than one slot
        (a fault-stalled executor, a hypervisor skipping P-channel
        windows); every period boundary crossed since the last call
        triggers a catch-up replenishment from the *most recent*
        boundary, so servers never starve after a jump.  Budget does not
        accumulate across missed periods -- unused budget is discarded
        at each boundary, exactly as slot-by-slot ticking would have.
        Returns True when a replenishment happened.
        """
        boundary = slot - slot % self.spec.pi
        if self._last_boundary is not None and boundary <= self._last_boundary:
            return False
        self.budget = self.spec.theta
        self.deadline = boundary + self.spec.pi
        self._last_boundary = boundary
        return True


@dataclass(frozen=True)
class Allocation:
    """G-Sched decision for one free slot."""

    vm_id: int
    #: True when the slot was granted from the VM's server budget; False
    #: for work-conserving background slots.
    budgeted: bool


class GlobalScheduler:
    """EDF allocation of free time slots to VM servers."""

    def __init__(
        self,
        servers: List[ServerSpec],
        name: str = "gsched",
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.name = name
        self.trace = trace
        self._states: Dict[int, _ServerState] = {}
        for spec in servers:
            if spec.vm_id in self._states:
                raise ValueError(f"duplicate server for VM {spec.vm_id}")
            self._states[spec.vm_id] = _ServerState(spec)
        self.budgeted_grants = 0
        self.background_grants = 0
        self.idle_slots = 0

    @property
    def server_specs(self) -> List[ServerSpec]:
        return [state.spec for state in self._states.values()]

    @property
    def total_bandwidth(self) -> float:
        return sum(state.spec.bandwidth for state in self._states.values())

    def budget_of(self, vm_id: int) -> int:
        return self._states[vm_id].budget

    def tick(self, slot: int) -> None:
        """Advance budget accounting to slot ``slot`` (call every slot)."""
        for state in self._states.values():
            if state.replenish_if_due(slot) and self.trace is not None:
                self.trace.record(
                    slot,
                    "gsched.replenish",
                    self.name,
                    vm=state.spec.vm_id,
                    budget=state.budget,
                    server_deadline=state.deadline,
                )

    def allocate(
        self,
        slot: int,
        pending_vms: Dict[int, int],
    ) -> Optional[Allocation]:
        """Decide which VM receives free slot ``slot``.

        ``pending_vms`` maps vm_id -> earliest staged absolute deadline
        (the shadow-register contents); VMs with empty pools are absent.
        Selection order:

        1. EDF over *server* deadlines among servers with remaining
           budget and pending work (consumes one budget unit), matching
           the analysis;
        2. otherwise, background: EDF over the *job* deadlines in the
           shadow registers (no budget consumed);
        3. otherwise the slot idles.
        """
        if not pending_vms:
            self.idle_slots += 1
            return None
        eligible: List[Tuple[int, int, int]] = []
        for vm_id, state in self._states.items():
            if state.budget > 0 and vm_id in pending_vms:
                eligible.append((state.deadline, vm_id, pending_vms[vm_id]))
        if eligible:
            # Server-EDF; ties broken by staged job deadline then vm_id,
            # which keeps the decision deterministic.
            eligible.sort(key=lambda entry: (entry[0], entry[2], entry[1]))
            server_deadline, vm_id, _job_deadline = eligible[0]
            state = self._states[vm_id]
            state.budget -= 1
            state.slots_consumed += 1
            self.budgeted_grants += 1
            if self.trace is not None:
                self.trace.record(
                    slot,
                    "gsched.grant",
                    self.name,
                    vm=vm_id,
                    budgeted=True,
                    budget_left=state.budget,
                    server_deadline=server_deadline,
                )
            return Allocation(vm_id=vm_id, budgeted=True)
        vm_id = min(pending_vms, key=lambda vm: (pending_vms[vm], vm))
        self.background_grants += 1
        if self.trace is not None:
            self.trace.record(
                slot,
                "gsched.grant",
                self.name,
                vm=vm_id,
                budgeted=False,
                job_deadline=pending_vms[vm_id],
            )
        return Allocation(vm_id=vm_id, budgeted=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlobalScheduler({self.name!r}, servers={len(self._states)}, "
            f"bandwidth={self.total_bandwidth:.3f})"
        )
