"""Time Slot Table sigma* (Sec. III-A, Sec. IV-A).

The table records, for one hyper-period of length ``H`` slots, which
slots are occupied by pre-defined (P-channel) I/O jobs and which are
*free* for R-channel work.  The infinite schedule sigma is the infinite
repetition of sigma*.  The P-channel executor walks the table at run
time; the G-Sched analysis derives ``sbf(sigma, t)`` from it.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

#: Safety cap on constructed hyper-periods.  P-channel tables above this
#: length signal a mis-configured experiment (the FPGA table is a small
#: on-chip memory); construction raises instead of silently exploding.
MAX_TABLE_LENGTH = 2_000_000


class TableOverflowError(ValueError):
    """Raised when pre-defined jobs cannot be packed into the table."""


def as_slot_count(value: Any, what: str = "slot value") -> int:
    """Normalize a time quantity to an integer slot count.

    The hypervisor schedules in whole slots (every quantity in Sec. IV is
    an integer number of slots), but the surrounding simulation measures
    time as floats -- :class:`~repro.sim.engine.Timeout` happily accepts
    ``2.5``.  Slot-table and executor entry points route their time
    arguments through here: integral values (``7``, ``7.0``, numpy
    integer scalars) are normalized to ``int``; fractional values are a
    caller bug and raise ``ValueError`` instead of silently truncating a
    deadline or supply window.
    """
    if isinstance(value, (bool, np.bool_, str, bytes)):
        # bool is an int subclass (and numpy bools compare equal to 0/1),
        # so without this guard True would silently normalize to 1 slot.
        raise ValueError(f"{what} must be an integer slot count, got {value!r}")
    if isinstance(value, int):
        return value
    try:
        as_int = int(value)
        integral = value == as_int
    except (TypeError, OverflowError, ValueError):
        raise ValueError(
            f"{what} must be an integer slot count, got {value!r}"
        ) from None
    if not integral:
        raise ValueError(
            f"{what} must be a whole number of slots, got {value!r}; "
            "the hypervisor schedules in integer slots"
        )
    return as_int


class SbfCache:
    """Explicit per-table memo for the Eq. (1)/(2) supply computation.

    One instance per :class:`TimeSlotTable`.  Holds the doubled prefix-sum
    array (built lazily from the occupancy bitmap) and the per-window
    enumeration results, and counts hits/misses so the experiment
    runner's timing summary can report cache effectiveness.  Dropping the
    cache (:meth:`clear`) is always safe -- it only costs recomputation.
    """

    __slots__ = ("_table", "_windows", "_free_prefix", "hits", "misses")

    def __init__(self, table: "TimeSlotTable") -> None:
        self._table = table
        self._windows: Dict[int, int] = {}
        self._free_prefix: Optional[np.ndarray] = None
        self.hits = 0
        self.misses = 0

    def free_prefix(self) -> np.ndarray:
        """Prefix sums of free slots over two repetitions of sigma*."""
        if self._free_prefix is None:
            free = (~self._table._occupied).astype(np.int64)
            doubled = np.concatenate([free, free])
            self._free_prefix = np.concatenate([[0], np.cumsum(doubled)])
        return self._free_prefix

    def enum(self, window: int) -> int:
        """Memoized Eq. (1) enumeration for ``0 <= window <= H``."""
        cached = self._windows.get(window)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if window == 0:
            value = 0
        else:
            prefix = self.free_prefix()
            length = self._table.length
            # window starting at s covers [s, s+window); minimise over
            # s in [0, H).
            sums = prefix[window : window + length] - prefix[:length]
            value = int(sums.min())
        self._windows[window] = value
        return value

    def clear(self) -> None:
        """Drop memoized windows and the prefix array."""
        self._windows.clear()
        self._free_prefix = None
        self.hits = 0
        self.misses = 0

    # lru_cache-style protocol, so tables can sit in the central registry.
    cache_clear = clear

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "currsize": len(self._windows),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SbfCache(windows={len(self._windows)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


class TimeSlotTable:
    """Occupancy of one hyper-period of the static P-channel schedule.

    Parameters
    ----------
    length:
        ``H`` -- total slots in the hyper-period.
    occupied:
        Iterable of slot indices in ``[0, H)`` taken by P-channel jobs.
    entries:
        Optional mapping from slot index to the pre-defined task
        scheduled there (used by the run-time executor; the analysis
        only needs the occupancy bitmap).
    """

    def __init__(
        self,
        length: int,
        occupied: Iterable[int] = (),
        entries: Optional[Dict[int, IOTask]] = None,
    ) -> None:
        if length < 1:
            raise ValueError(f"table length must be >= 1, got {length}")
        if length > MAX_TABLE_LENGTH:
            raise TableOverflowError(
                f"hyper-period {length} exceeds the table cap "
                f"{MAX_TABLE_LENGTH}; reduce pre-defined task periods"
            )
        self.length = as_slot_count(length, "table length")
        length = self.length
        self._occupied = np.zeros(length, dtype=bool)
        for slot in occupied:
            slot = as_slot_count(slot, "occupied slot")
            if not 0 <= slot < length:
                raise ValueError(f"slot {slot} outside table of length {length}")
            if self._occupied[slot]:
                raise ValueError(f"slot {slot} is doubly occupied")
            self._occupied[slot] = True
        self.entries: Dict[int, IOTask] = dict(entries or {})
        for slot in self.entries:
            if not self._occupied[slot]:
                raise ValueError(
                    f"entry at slot {slot} has no matching occupied slot"
                )
        self.sbf_cache = SbfCache(self)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_pattern(cls, pattern: Sequence[int]) -> "TimeSlotTable":
        """Build from a 0/1 sequence (1 = occupied)."""
        occupied = [i for i, bit in enumerate(pattern) if bit]
        return cls(len(pattern), occupied)

    @classmethod
    def empty(cls, length: int) -> "TimeSlotTable":
        """A table with every slot free."""
        return cls(length)

    # -- basic queries ---------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """``H`` in the analysis."""
        return self.length

    @property
    def free_slots(self) -> int:
        """``F`` in the analysis."""
        return int(self.length - self._occupied.sum())

    @property
    def occupied_slots(self) -> int:
        return int(self._occupied.sum())

    @property
    def free_fraction(self) -> float:
        """``F / H`` -- the bandwidth left for the R-channel."""
        return self.free_slots / self.length

    def is_occupied(self, slot: int) -> bool:
        slot = as_slot_count(slot, "slot index")
        return bool(self._occupied[slot % self.length])

    def is_free(self, slot: int) -> bool:
        """Whether absolute slot index ``slot`` (in sigma) is free."""
        return not self.is_occupied(slot)

    def task_at(self, slot: int) -> Optional[IOTask]:
        """Pre-defined task scheduled at absolute slot ``slot``, if any."""
        slot = as_slot_count(slot, "slot index")
        return self.entries.get(slot % self.length)

    def occupied_indices(self) -> List[int]:
        return [int(i) for i in np.flatnonzero(self._occupied)]

    def free_indices(self) -> List[int]:
        return [int(i) for i in np.flatnonzero(~self._occupied)]

    def occupancy_pattern(self) -> List[int]:
        """The 0/1 pattern of sigma* (1 = occupied)."""
        return [int(bit) for bit in self._occupied]

    # -- supply-bound function ---------------------------------------------------

    def enum(self, window: int) -> int:
        """Eq. (1): minimum free slots over all windows of ``window`` slots.

        Valid for ``0 <= window <= H``; windows are slid over the infinite
        repetition sigma, and since sigma repeats sigma* there are at most
        H distinct placements.  Memoized in :attr:`sbf_cache`.
        """
        window = as_slot_count(window, "enum window")
        if not 0 <= window <= self.length:
            raise ValueError(
                f"enum window must lie in [0, H={self.length}], got {window}"
            )
        return self.sbf_cache.enum(window)

    def sbf(self, t: int) -> int:
        """``sbf(sigma, t)`` via Eqs. (1) and (2) for any ``t >= 0``."""
        t = as_slot_count(t, "sbf window")
        if t < 0:
            raise ValueError(f"sbf requires t >= 0, got {t}")
        if t < self.length:
            return self.sbf_cache.enum(t)
        whole, rest = divmod(t, self.length)
        return self.sbf_cache.enum(rest) + whole * self.free_slots

    # -- free-slot iteration (run-time use) -----------------------------------------

    def next_free_slot(self, from_slot: int) -> int:
        """Smallest free absolute slot ``>= from_slot``.

        Raises ``ValueError`` when the table has no free slots at all.
        """
        if self.free_slots == 0:
            raise ValueError("time slot table has no free slots")
        slot = as_slot_count(from_slot, "from_slot")
        # At most one full hyper-period of probing is needed.
        for _ in range(self.length + 1):
            if self.is_free(slot):
                return slot
            slot += 1
        raise AssertionError("unreachable: free slot must exist within H")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSlotTable(H={self.length}, F={self.free_slots}, "
            f"entries={len(self.entries)})"
        )


def stagger_offsets(predefined: TaskSet) -> TaskSet:
    """Assign staggered start times to pre-defined tasks.

    Pre-defined tasks are loaded "with their corresponding start times"
    (Sec. II-B); those start times are a design-time degree of freedom.
    Releasing every task at slot 0 clusters P-channel occupancy into long
    bursts, which collapses ``sbf(sigma, t)`` for small windows and
    starves the R-channel.  Spreading first releases proportionally over
    each task's period keeps the free slots well distributed.  Returns a
    new task set; offsets are ``round(i * T_i / n) mod T_i``.
    """
    tasks = sorted(predefined, key=lambda task: (task.period, task.name))
    count = len(tasks)
    staggered = TaskSet(name=f"{predefined.name}.staggered")
    for index, task in enumerate(tasks):
        copy = task.renamed(task.name)
        copy.vm_id = task.vm_id
        copy.offset = int(round(index * task.period / count)) % task.period
        staggered.add(copy)
    return staggered


#: Supported sigma* layout strategies.
PLACEMENTS = ("contiguous", "spread")


def build_pchannel_table(
    predefined: TaskSet,
    *,
    max_length: int = MAX_TABLE_LENGTH,
    placement: str = "spread",
) -> TimeSlotTable:
    """Construct sigma* from the pre-defined task set.

    Pre-defined tasks are strictly periodic; each job of task ``tau``
    must receive ``C`` slots inside its window ``[release, release+D)``,
    where ``release = offset + j*T``.  Tasks are placed shortest period
    first (rate-monotonic packing order).  Two layouts with a real
    design trade-off (studied by the layout ablation):

    * ``"spread"`` (default): the job's slots are spaced evenly across
      its window, maximising ``sbf(sigma, t)`` -- the free slots stay
      well distributed, so the R-channel servers get the strongest
      supply guarantee.  P-channel jobs complete later inside their
      windows (still always by their deadlines, and with *zero*
      period-to-period jitter: the table repeats exactly).  The paper's
      high-preload configuration (I/O-GUARD-70) is only analytically
      schedulable under this layout.
    * ``"contiguous"``: the executor runs each pre-defined job as one
      burst at its designed start time -- the earliest free run at or
      after the release (falling back to the earliest free slots when
      fragmented).  Tight P-channel latency (~C slots), but long busy
      bursts depress ``sbf`` for small windows, which can make tightly
      constrained R-channel servers infeasible at high preload.

    If a window lacks ``C`` free slots in total,
    :class:`TableOverflowError` is raised -- the experiment must lower
    the P-channel share instead of silently dropping pre-defined work.
    """
    if placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
        )
    tasks = sorted(predefined, key=lambda task: (task.period, task.name))
    if not tasks:
        return TimeSlotTable.empty(1)
    hyperperiod = reduce(math.lcm, (task.period for task in tasks))
    if hyperperiod > max_length:
        raise TableOverflowError(
            f"pre-defined hyper-period {hyperperiod} exceeds cap {max_length}"
        )
    occupied = np.zeros(hyperperiod, dtype=bool)
    entries: Dict[int, IOTask] = {}
    for task in tasks:
        job_count = hyperperiod // task.period
        for job_index in range(job_count):
            release = task.offset + job_index * task.period
            if placement == "spread":
                _place_job_spread(task, release, occupied, entries, hyperperiod)
            else:
                _place_job_contiguous(
                    task, release, occupied, entries, hyperperiod
                )
    table = TimeSlotTable(hyperperiod)
    table._occupied = occupied
    table.entries = entries
    table.sbf_cache.clear()  # occupancy replaced wholesale
    return table


def _place_job_contiguous(
    task: IOTask,
    release: int,
    occupied: np.ndarray,
    entries: Dict[int, IOTask],
    hyperperiod: int,
) -> None:
    """Reserve a burst of ``C`` slots starting at the job's start time.

    Prefers the earliest fully-free run of length ``C`` inside the
    window; falls back to the earliest ``C`` free slots (fragmented but
    still inside the deadline window) when no whole run exists.
    """
    window = task.deadline
    wcet = task.wcet
    # Pass 1: earliest contiguous run.
    for start in range(window - wcet + 1):
        indices = [(release + start + i) % hyperperiod for i in range(wcet)]
        if not any(occupied[index] for index in indices):
            for index in indices:
                occupied[index] = True
                entries[index] = task
            return
    # Pass 2: earliest free slots, fragmented.
    chosen: List[int] = []
    for offset in range(window):
        index = (release + offset) % hyperperiod
        if not occupied[index]:
            chosen.append(index)
            if len(chosen) == wcet:
                break
    if len(chosen) < wcet:
        raise TableOverflowError(
            f"cannot place pre-defined task {task.name!r} (release "
            f"{release}) within its {window}-slot deadline window; "
            "P-channel overloaded"
        )
    for index in chosen:
        occupied[index] = True
        entries[index] = task


def _place_job_spread(
    task: IOTask,
    release: int,
    occupied: np.ndarray,
    entries: Dict[int, IOTask],
    hyperperiod: int,
) -> None:
    """Reserve ``task.wcet`` slots spaced evenly across the window."""
    window = task.deadline
    stride = window / task.wcet
    chosen: List[int] = []
    taken_local = set()
    for i in range(task.wcet):
        ideal = int(i * stride)
        slot_offset = None
        for probe in range(window):
            candidate = (ideal + probe) % window
            index = (release + candidate) % hyperperiod
            if candidate not in taken_local and not occupied[index]:
                slot_offset = candidate
                break
        if slot_offset is None:
            raise TableOverflowError(
                f"cannot place pre-defined task {task.name!r} (release "
                f"{release}) within its {window}-slot deadline window; "
                "P-channel overloaded"
            )
        taken_local.add(slot_offset)
        chosen.append((release + slot_offset) % hyperperiod)
    for index in chosen:
        occupied[index] = True
        entries[index] = task


def merge_tables(tables: Sequence[TimeSlotTable]) -> TimeSlotTable:
    """Merge per-source tables into one (union of occupancy).

    Slot collisions raise ``ValueError``: two pre-defined jobs cannot share
    one slot of the single I/O resource.
    """
    if not tables:
        return TimeSlotTable.empty(1)
    hyperperiod = reduce(math.lcm, (table.length for table in tables))
    if hyperperiod > MAX_TABLE_LENGTH:
        raise TableOverflowError(
            f"merged hyper-period {hyperperiod} exceeds cap {MAX_TABLE_LENGTH}"
        )
    occupied: List[int] = []
    entries: Dict[int, IOTask] = {}
    seen = set()
    for table in tables:
        repeats = hyperperiod // table.length
        for base in table.occupied_indices():
            for repeat in range(repeats):
                slot = base + repeat * table.length
                if slot in seen:
                    raise ValueError(f"slot collision at {slot} while merging")
                seen.add(slot)
                occupied.append(slot)
                task = table.entries.get(base)
                if task is not None:
                    entries[slot] = task
    return TimeSlotTable(hyperperiod, occupied, entries)
