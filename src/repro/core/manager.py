"""Virtualization manager (Sec. III-A).

"The design of the virtualization manager contains two request channels
and one response channel.  The response channel is pass-through ...  The
request channels are respectively designed for pre-defined and run-time
I/O tasks."  The manager is generic to all I/Os; pairing with a
device-specific :class:`~repro.core.driver.VirtualizationDriver` happens
one level up in the hypervisor.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.gsched import ServerSpec
from repro.core.lsched import SelectionPolicy, edf_policy
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import Job, TaskKind
from repro.tasks.taskset import TaskSet


class VirtualizationManager:
    """P-channel + R-channel + pass-through response channel."""

    def __init__(
        self,
        device: str,
        predefined: TaskSet,
        servers: List[ServerSpec],
        *,
        table: Optional[TimeSlotTable] = None,
        pool_capacity: int = 64,
        policy: SelectionPolicy = edf_policy,
        on_complete: Optional[Callable[[Job, int], None]] = None,
    ):
        self.device = device
        self.on_complete = on_complete
        self.pchannel = PChannel(
            predefined, table=table, on_complete=self._completed
        )
        self.rchannel = RChannel(
            servers,
            pool_capacity=pool_capacity,
            policy=policy,
            on_complete=self._completed,
        )
        self.completed_jobs: List[Job] = []
        #: Responses are pass-through: "the processing speed of the
        #: processors is hundreds of times faster than the I/O devices",
        #: so the channel never blocks; we only count them.
        self.responses_forwarded = 0

    # -- request side -----------------------------------------------------------

    def submit(self, job: Job) -> bool:
        """Accept a run-time I/O job from a VM (R-channel path)."""
        if job.task.kind != TaskKind.RUNTIME:
            raise ValueError(
                f"job {job.name} is {job.task.kind.value}; pre-defined tasks "
                "are loaded at initialization, not submitted at run time"
            )
        return self.rchannel.submit(job)

    # -- executor ---------------------------------------------------------------

    def execute_slot(self, slot: int) -> Optional[Job]:
        """Run one time slot: table-occupied slots go to the P-channel,
        free slots to the R-channel.  Returns a job completed this slot.
        """
        self.rchannel.tick(slot)
        if self.pchannel.occupies(slot):
            return self.pchannel.execute_slot(slot)
        return self.rchannel.execute_slot(slot)

    def _completed(self, job: Job, slot: int) -> None:
        self.completed_jobs.append(job)
        self.responses_forwarded += 1
        if self.on_complete is not None:
            self.on_complete(job, slot)

    # -- views -------------------------------------------------------------------

    @property
    def table(self) -> TimeSlotTable:
        return self.pchannel.table

    @property
    def pending_jobs(self) -> int:
        return self.rchannel.pending_jobs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualizationManager({self.device!r}, "
            f"completed={len(self.completed_jobs)})"
        )
