"""Virtualization manager (Sec. III-A).

"The design of the virtualization manager contains two request channels
and one response channel.  The response channel is pass-through ...  The
request channels are respectively designed for pre-defined and run-time
I/O tasks."  The manager is generic to all I/Os; pairing with a
device-specific :class:`~repro.core.driver.VirtualizationDriver` happens
one level up in the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.gsched import ServerSpec
from repro.core.lsched import SelectionPolicy, edf_policy
from repro.core.pchannel import PChannel
from repro.core.rchannel import RChannel
from repro.core.timeslot import TimeSlotTable
from repro.sim.trace import TraceRecorder
from repro.tasks.task import Job, TaskKind
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class QuarantineEvent:
    """One graceful-degradation decision."""

    slot: int
    category: str  # "device" or "vm"
    target: str
    reason: str


class DegradationPolicy:
    """Quarantine faulting devices/VMs instead of wedging the executor.

    Two symptom streams feed it:

    * **device stalls** -- consecutive slots in which a device timed out
      (reported via :meth:`note_stall`); after ``stall_limit`` the
      device is quarantined and jobs targeting it should be dropped;
    * **submission rejections** -- consecutive ``QueueFullError``
      back-pressure from one VM (reported via :meth:`note_rejection`);
      after ``reject_limit`` the VM is treated as a babbling idiot and
      quarantined.

    Both streaks reset on the first success, so transient overload or a
    recovering device never trips the policy.  Decisions are a pure
    function of the reported symptom sequence -- no clock or RNG -- so
    replays are bit-identical.
    """

    def __init__(self, stall_limit: int = 3, reject_limit: int = 64) -> None:
        if stall_limit < 1:
            raise ValueError(f"stall_limit must be >= 1, got {stall_limit}")
        if reject_limit < 1:
            raise ValueError(f"reject_limit must be >= 1, got {reject_limit}")
        self.stall_limit = stall_limit
        self.reject_limit = reject_limit
        self._stall_streaks: Dict[str, int] = {}
        self._reject_streaks: Dict[int, int] = {}
        self._quarantined: set = set()
        self.log: List[QuarantineEvent] = []

    # -- symptom reporting --------------------------------------------------

    def note_stall(self, device: str, slot: int) -> bool:
        """Record one stalled slot; True when this trips quarantine."""
        key = ("device", device)
        if key in self._quarantined:
            return False
        streak = self._stall_streaks.get(device, 0) + 1
        self._stall_streaks[device] = streak
        if streak >= self.stall_limit:
            self._quarantine(key, slot, f"{streak} consecutive stalled slots")
            return True
        return False

    def note_service(self, device: str) -> None:
        """A request completed on ``device``; its streak resets."""
        self._stall_streaks[device] = 0

    def note_rejection(self, vm_id: int, slot: int) -> bool:
        """Record one rejected submission; True when this trips quarantine."""
        key = ("vm", vm_id)
        if key in self._quarantined:
            return False
        streak = self._reject_streaks.get(vm_id, 0) + 1
        self._reject_streaks[vm_id] = streak
        if streak >= self.reject_limit:
            self._quarantine(key, slot, f"{streak} consecutive rejections")
            return True
        return False

    def note_accept(self, vm_id: int) -> None:
        """A submission was accepted; the VM's streak resets."""
        self._reject_streaks[vm_id] = 0

    # -- state --------------------------------------------------------------

    def _quarantine(self, key: Tuple[str, object], slot: int, reason: str) -> None:
        self._quarantined.add(key)
        self.log.append(
            QuarantineEvent(
                slot=slot, category=key[0], target=str(key[1]), reason=reason
            )
        )

    def device_quarantined(self, device: str) -> bool:
        return ("device", device) in self._quarantined

    def vm_quarantined(self, vm_id: int) -> bool:
        return ("vm", vm_id) in self._quarantined

    @property
    def quarantine_count(self) -> int:
        return len(self._quarantined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegradationPolicy(stall_limit={self.stall_limit}, "
            f"reject_limit={self.reject_limit}, "
            f"quarantined={sorted(self._quarantined)})"
        )


class VirtualizationManager:
    """P-channel + R-channel + pass-through response channel."""

    def __init__(
        self,
        device: str,
        predefined: TaskSet,
        servers: List[ServerSpec],
        *,
        table: Optional[TimeSlotTable] = None,
        pool_capacity: int = 64,
        policy: SelectionPolicy = edf_policy,
        on_complete: Optional[Callable[[Job, int], None]] = None,
        degradation: Optional[DegradationPolicy] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.device = device
        self.on_complete = on_complete
        self.degradation = degradation
        self.trace = trace
        self.pchannel = PChannel(
            predefined, table=table, on_complete=self._completed, trace=trace
        )
        self.rchannel = RChannel(
            servers,
            pool_capacity=pool_capacity,
            policy=policy,
            on_complete=self._completed,
            trace=trace,
        )
        self.completed_jobs: List[Job] = []
        #: Responses are pass-through: "the processing speed of the
        #: processors is hundreds of times faster than the I/O devices",
        #: so the channel never blocks; we only count them.
        self.responses_forwarded = 0
        #: Submissions refused because their target device is quarantined.
        self.device_rejects = 0

    # -- request side -----------------------------------------------------------

    def submit(self, job: Job, slot: int = 0) -> bool:
        """Accept a run-time I/O job from a VM (R-channel path).

        With a :class:`DegradationPolicy` attached, rejections feed the
        per-VM back-pressure streak; a VM that keeps flooding a full
        pool is quarantined (its pool drained and masked from the
        scheduler) instead of degrading every other VM's service.
        """
        if job.task.kind != TaskKind.RUNTIME:
            raise ValueError(
                f"job {job.name} is {job.task.kind.value}; pre-defined tasks "
                "are loaded at initialization, not submitted at run time"
            )
        if self.degradation is not None and self.degradation.device_quarantined(
            job.task.device
        ):
            self.device_rejects += 1
            return False
        accepted = self.rchannel.submit(job, slot=slot)
        if self.degradation is not None:
            vm_id = job.task.vm_id
            if accepted:
                self.degradation.note_accept(vm_id)
            elif vm_id not in self.rchannel.quarantined_vms:
                if self.degradation.note_rejection(vm_id, slot):
                    self.rchannel.quarantine_vm(vm_id, slot=slot)
        return accepted

    def report_device_stall(self, device: str, slot: int) -> bool:
        """Feed one device-timeout symptom to the degradation policy.

        Returns True when this report trips the quarantine: jobs
        targeting the device are dropped from every pool (with a shadow
        refresh) so the executor never re-selects a doomed job.
        """
        if self.degradation is None:
            return False
        tripped = self.degradation.note_stall(device, slot)
        if tripped:
            for pool in self.rchannel.pools.values():
                pool.drop_matching(
                    lambda job: job.task.device == device, slot=slot
                )
        return tripped

    def report_device_service(self, device: str) -> None:
        """A request completed on ``device``; reset its stall streak."""
        if self.degradation is not None:
            self.degradation.note_service(device)

    # -- executor ---------------------------------------------------------------

    def execute_slot(
        self,
        slot: int,
        guard: Optional[Callable[[Job, int], bool]] = None,
    ) -> Optional[Job]:
        """Run one time slot: table-occupied slots go to the P-channel,
        free slots to the R-channel.  Returns a job completed this slot.

        ``guard`` is forwarded to the R-channel executor (see
        :meth:`repro.core.rchannel.RChannel.execute_slot`): it vetoes
        the staged job for this slot when its device timed out.
        """
        self.rchannel.tick(slot)
        if self.pchannel.occupies(slot):
            return self.pchannel.execute_slot(slot)
        return self.rchannel.execute_slot(slot, guard=guard)

    def _completed(self, job: Job, slot: int) -> None:
        self.completed_jobs.append(job)
        self.responses_forwarded += 1
        if self.on_complete is not None:
            self.on_complete(job, slot)

    # -- views -------------------------------------------------------------------

    @property
    def table(self) -> TimeSlotTable:
        return self.pchannel.table

    @property
    def pending_jobs(self) -> int:
        return self.rchannel.pending_jobs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualizationManager({self.device!r}, "
            f"completed={len(self.completed_jobs)})"
        )
