"""L-Sched: the per-VM local scheduler (Sec. III-A).

One local scheduler lives inside each I/O pool.  It "keeps checking the
status of the tasks, finding the task with the earliest deadline, and
requesting the control logic to map the first operation of this I/O task
to a shadow register".  The policy object is pluggable ("the design of
the schedulers is agnostic to scheduling methods"); preemptive EDF is the
default, as in the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.priority_queue import PriorityQueue
from repro.tasks.task import Job

#: A selection policy maps a queue snapshot to the job to stage next.
SelectionPolicy = Callable[[PriorityQueue], Optional[Job]]


def edf_policy(queue: PriorityQueue) -> Optional[Job]:
    """Preemptive EDF: stage the earliest-absolute-deadline job."""
    return queue.peek()


def fifo_policy(queue: PriorityQueue) -> Optional[Job]:
    """Arrival-order policy (models a FIFO through the same interface).

    Selects the buffered job with the smallest release time, breaking
    ties by deadline.  Used by the preemption ablation.
    """
    jobs = queue.jobs()
    if not jobs:
        return None
    return min(jobs, key=lambda job: (job.release, job.absolute_deadline))


class LocalScheduler:
    """Selects the job an I/O pool exposes through its shadow register."""

    def __init__(
        self,
        queue: PriorityQueue,
        policy: SelectionPolicy = edf_policy,
        name: str = "lsched",
    ) -> None:
        self.queue = queue
        self.policy = policy
        self.name = name
        self.selection_count = 0
        self.preemption_count = 0
        self._last_selected: Optional[Job] = None

    def select(self) -> Optional[Job]:
        """The job that should occupy the shadow register right now.

        Counts a preemption whenever the selection changes while the
        previously selected job is still incomplete and buffered -- the
        hardware analogue is the shadow register being overwritten with a
        different task's operation.
        """
        job = self.policy(self.queue)
        self.selection_count += 1
        previous = self._last_selected
        if (
            job is not None
            and previous is not None
            and job is not previous
            and previous.remaining > 0
            and previous in self.queue
        ):
            self.preemption_count += 1
            previous.preemption_count += 1
        self._last_selected = job
        return job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalScheduler({self.name!r}, selections={self.selection_count})"
