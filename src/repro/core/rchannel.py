"""R-channel: run-time I/O task scheduling and execution (Sec. III-A).

"The design of the R-channel contains a group of I/O pools, a two-layer
scheduler ... and an executor."  The executor here is the slot-level
engine: every *free* slot (as designated by the time slot table) the
G-Sched picks a VM, the chosen pool's staged operation runs for one slot,
and completed jobs are removed from their priority queue.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.core.gsched import Allocation, GlobalScheduler, ServerSpec
from repro.core.iopool import IOPool
from repro.core.lsched import SelectionPolicy, edf_policy
from repro.sim.trace import TraceRecorder
from repro.tasks.task import Job


class RChannel:
    """I/O pools + two-layer scheduler + executor."""

    def __init__(
        self,
        servers: List[ServerSpec],
        pool_capacity: int = 64,
        policy: SelectionPolicy = edf_policy,
        on_complete: Optional[Callable[[Job, int], None]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.trace = trace
        self.pools: Dict[int, IOPool] = {
            spec.vm_id: IOPool(
                vm_id=spec.vm_id, capacity=pool_capacity, policy=policy,
                trace=trace,
            )
            for spec in servers
        }
        self.gsched = GlobalScheduler(servers, trace=trace)
        self.on_complete = on_complete
        self.slots_executed = 0
        self.jobs_completed = 0
        self.completed_jobs: List[Job] = []
        self.last_allocation: Optional[Allocation] = None
        #: VMs removed from scheduling by the degradation policy; their
        #: pools stop presenting work and their submissions bounce.
        self.quarantined_vms: Set[int] = set()
        self.quarantine_rejects = 0
        #: Slots granted to a VM whose staged job could not run (device
        #: timeout burned the slot without progress).
        self.blocked_slots = 0

    # -- VM-side interface -----------------------------------------------------

    def submit(self, job: Job, slot: int = 0) -> bool:
        """Route a run-time job to its VM's pool (hardware-partitioned)."""
        pool = self.pools.get(job.task.vm_id)
        if pool is None:
            raise KeyError(
                f"no I/O pool for VM {job.task.vm_id}; configured VMs: "
                f"{sorted(self.pools)}"
            )
        if job.task.vm_id in self.quarantined_vms:
            self.quarantine_rejects += 1
            return False
        return pool.submit(job, slot=slot)

    # -- containment -----------------------------------------------------------

    def quarantine_vm(self, vm_id: int, slot: int = 0) -> List[Job]:
        """Mask a VM out of scheduling and drain its pool.

        Graceful degradation for a babbling-idiot VM: its buffered jobs
        are discarded (returned for accounting), further submissions are
        rejected, and the G-Sched stops seeing the pool -- the idiot can
        no longer consume even background slots.  Idempotent.
        """
        pool = self.pools.get(vm_id)
        if pool is None:
            raise KeyError(f"no I/O pool for VM {vm_id}")
        if vm_id in self.quarantined_vms:
            return []
        self.quarantined_vms.add(vm_id)
        return pool.drain(slot=slot)

    def release_vm(self, vm_id: int) -> None:
        """Lift a VM quarantine (operator action / fault cleared)."""
        self.quarantined_vms.discard(vm_id)

    # -- executor ---------------------------------------------------------------

    def tick(self, slot: int) -> None:
        """Advance server budgets to ``slot`` (every slot, free or not)."""
        self.gsched.tick(slot)

    def execute_slot(
        self,
        slot: int,
        guard: Optional[Callable[[Job, int], bool]] = None,
    ) -> Optional[Job]:
        """Run one free slot of R-channel work; returns a completed job.

        Returns None when the slot idles or the staged job needs more
        slots.  ``guard`` is the containment hook: called with the
        allocated staged job, a False return means the job's device
        timed out this slot -- the slot is *burned* (budget already
        consumed, no progress made) and counted in
        :attr:`blocked_slots`.  The burn is charged to the faulting
        VM's own allocation, never to another VM's budget.
        """
        pending = {
            vm_id: deadline
            for vm_id, pool in self.pools.items()
            if vm_id not in self.quarantined_vms
            and (deadline := pool.staged_deadline()) is not None
        }
        allocation = self.gsched.allocate(slot, pending)
        self.last_allocation = allocation
        if allocation is None:
            return None
        pool = self.pools[allocation.vm_id]
        job = pool.shadow
        if guard is not None and job is not None and not guard(job, slot):
            self.blocked_slots += 1
            if self.trace is not None:
                self.trace.record(
                    slot, "rchannel.burn", "rchannel",
                    vm=allocation.vm_id, job=job.name,
                    budgeted=allocation.budgeted,
                )
            return None
        if job is not None and job.started_at is None:
            job.started_at = float(slot)
        if self.trace is not None and job is not None:
            self.trace.record(
                slot, "rchannel.dispatch", "rchannel",
                vm=allocation.vm_id, job=job.name,
                remaining=job.remaining, budgeted=allocation.budgeted,
            )
        completed = pool.execute_slot(slot)
        self.slots_executed += 1
        if completed is not None:
            completed.completed_at = float(slot + 1)
            self.jobs_completed += 1
            self.completed_jobs.append(completed)
            if self.on_complete is not None:
                self.on_complete(completed, slot)
        return completed

    @property
    def pending_jobs(self) -> int:
        return sum(len(pool) for pool in self.pools.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RChannel(pools={len(self.pools)}, pending={self.pending_jobs}, "
            f"completed={self.jobs_completed})"
        )
