"""Real-time translators (Sec. III-B).

The virtualization driver contains "a pair of open-source real-time
translators [BlueVisor]" on the request and response paths.  Their
defining property for the analysis is a *bounded worst-case translation
time*; the model charges a base cost plus a per-byte cost, both fixed,
and records every translation so tests can assert the bound is never
exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Default translation costs, in platform cycles.  BlueVisor reports
#: single-digit-microsecond translation at 100 MHz; 120 cycles base +
#: 1 cycle / 4 bytes keeps translations well inside a 1000-cycle slot.
DEFAULT_BASE_CYCLES = 120
DEFAULT_CYCLES_PER_WORD = 1
DEFAULT_WORD_BYTES = 4


@dataclass(frozen=True)
class TranslationRecord:
    """One completed translation (kept for bound verification)."""

    direction: str
    payload_bytes: int
    cycles: int


class RealTimeTranslator:
    """Bounded-WCET instruction/data translator."""

    def __init__(
        self,
        direction: str,
        base_cycles: int = DEFAULT_BASE_CYCLES,
        cycles_per_word: int = DEFAULT_CYCLES_PER_WORD,
        word_bytes: int = DEFAULT_WORD_BYTES,
        max_payload_bytes: int = 4096,
    ) -> None:
        if direction not in ("request", "response"):
            raise ValueError(
                f"direction must be 'request' or 'response', got {direction!r}"
            )
        if base_cycles < 1 or cycles_per_word < 0 or word_bytes < 1:
            raise ValueError(
                f"invalid translator costs: base={base_cycles}, "
                f"per_word={cycles_per_word}, word={word_bytes}"
            )
        self.direction = direction
        self.base_cycles = base_cycles
        self.cycles_per_word = cycles_per_word
        self.word_bytes = word_bytes
        self.max_payload_bytes = max_payload_bytes
        self.records: List[TranslationRecord] = []
        self.total_cycles = 0

    def wcet_cycles(self, payload_bytes: int = None) -> int:
        """Worst-case translation cycles (for the given size, or absolute)."""
        size = self.max_payload_bytes if payload_bytes is None else payload_bytes
        words = (size + self.word_bytes - 1) // self.word_bytes
        return self.base_cycles + self.cycles_per_word * words

    def translate(self, payload_bytes: int) -> int:
        """Translate one operation; returns the cycles consumed.

        Payloads above ``max_payload_bytes`` are rejected: the hardware
        translator's buffers are statically sized and oversize requests
        must be split by the issuing driver.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        if payload_bytes > self.max_payload_bytes:
            raise ValueError(
                f"payload {payload_bytes} B exceeds translator buffer "
                f"{self.max_payload_bytes} B; split the request"
            )
        cycles = self.wcet_cycles(payload_bytes)
        self.records.append(
            TranslationRecord(
                direction=self.direction,
                payload_bytes=payload_bytes,
                cycles=cycles,
            )
        )
        self.total_cycles += cycles
        return cycles

    @property
    def worst_observed(self) -> int:
        if not self.records:
            return 0
        return max(record.cycles for record in self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RealTimeTranslator({self.direction!r}, "
            f"{len(self.records)} translations)"
        )
