"""The I/O-GUARD hypervisor (Secs. II-III).

One :class:`VirtualizationManager` + :class:`VirtualizationDriver` pair
per connected I/O device, a shared global timer, and the run-time
procedure of Sec. II-B: pre-defined tasks are loaded with their start
times at initialization; run-time tasks are buffered and scheduled into
the free slots.

Two execution styles are offered:

* :meth:`step` -- advance one slot synchronously (used by the
  experiment harness, where a plain Python loop over slots is an order
  of magnitude faster than event dispatch);
* :meth:`process` -- a generator for embedding the hypervisor in a
  full-platform :class:`~repro.sim.engine.Simulator` run alongside NoC
  and processor models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.core.driver import VirtualizationDriver
from repro.core.gsched import ServerSpec
from repro.core.lsched import SelectionPolicy, edf_policy
from repro.core.manager import VirtualizationManager
from repro.core.timeslot import as_slot_count
from repro.sim.clock import DEFAULT_CYCLES_PER_SLOT, GlobalTimer
from repro.sim.engine import Simulator, Timeout
from repro.sim.trace import TraceRecorder
from repro.tasks.task import Job
from repro.tasks.taskset import TaskSet


@dataclass
class HypervisorConfig:
    """Static configuration of one I/O-GUARD instance."""

    cycles_per_slot: int = DEFAULT_CYCLES_PER_SLOT
    pool_capacity: int = 64
    policy: SelectionPolicy = edf_policy
    #: Optional trace recorder shared across managers.
    trace: Optional[TraceRecorder] = None
    #: Validate that single-slot operations fit the slot length.
    validate_slot_budget: bool = True


class IOGuardHypervisor:
    """Hardware hypervisor: managers + drivers for every connected I/O."""

    def __init__(self, config: Optional[HypervisorConfig] = None) -> None:
        self.config = config or HypervisorConfig()
        self.managers: Dict[str, VirtualizationManager] = {}
        self.drivers: Dict[str, VirtualizationDriver] = {}
        self.completed_jobs: List[Job] = []
        self._slot_cursor = 0
        self._on_complete_hooks: List[Callable[[Job, int], None]] = []

    # -- construction ------------------------------------------------------------

    def attach_device(
        self,
        device_name: str,
        driver: VirtualizationDriver,
        predefined: TaskSet,
        servers: List[ServerSpec],
    ) -> VirtualizationManager:
        """Connect one I/O device: its driver, P-channel load and servers.

        Called once per device at system initialization; returns the
        created manager.
        """
        if device_name in self.managers:
            raise ValueError(f"device {device_name!r} is already attached")
        for task in predefined:
            if task.device != device_name:
                raise ValueError(
                    f"pre-defined task {task.name!r} targets {task.device!r}, "
                    f"not {device_name!r}"
                )
        manager = VirtualizationManager(
            device=device_name,
            predefined=predefined,
            servers=servers,
            pool_capacity=self.config.pool_capacity,
            policy=self.config.policy,
            on_complete=lambda job, slot: self._job_completed(
                device_name, job, slot
            ),
            trace=self.config.trace,
        )
        self.managers[device_name] = manager
        self.drivers[device_name] = driver
        if self.config.validate_slot_budget:
            self._validate_slot_budget(device_name, driver, predefined)
        return manager

    def _validate_slot_budget(
        self,
        device_name: str,
        driver: VirtualizationDriver,
        predefined: TaskSet,
    ) -> None:
        """Every declared job must fit its slot budget end to end.

        A task of WCET C slots moving P bytes issues operations of
        roughly P/C bytes per slot; the driver's per-operation WCET for
        that size must fit one slot, otherwise the configuration
        under-declares its demand and the analysis would be unsound.
        """
        slot_cycles = self.config.cycles_per_slot
        for task in predefined:
            per_slot_bytes = max(1, task.payload_bytes // task.wcet)
            if not driver.fits_slot(per_slot_bytes, slot_cycles):
                raise ValueError(
                    f"task {task.name!r} on {device_name!r}: a "
                    f"{per_slot_bytes}-byte operation needs "
                    f"{driver.wcet_cycles(per_slot_bytes)} cycles, more than "
                    f"the {slot_cycles}-cycle slot; increase the task WCET "
                    "or the slot length"
                )

    def on_complete(self, hook: Callable[[Job, int], None]) -> None:
        """Register a completion observer (metrics collectors)."""
        self._on_complete_hooks.append(hook)

    # -- run-time interface ---------------------------------------------------------

    def submit(self, job: Job) -> bool:
        """Run-time I/O request from a VM, routed by target device."""
        manager = self.managers.get(job.task.device)
        if manager is None:
            raise KeyError(
                f"job {job.name} targets unattached device "
                f"{job.task.device!r}; attached: {sorted(self.managers)}"
            )
        return manager.submit(job, slot=self._slot_cursor)

    def step(self, slot: Optional[int] = None) -> List[Job]:
        """Execute one time slot on every attached device.

        Returns the jobs completed in this slot.  Slots default to an
        internal cursor so callers can simply loop ``hv.step()``.
        """
        if slot is None:
            slot = self._slot_cursor
        else:
            slot = as_slot_count(slot, "hypervisor step slot")
        completed: List[Job] = []
        for manager in self.managers.values():
            job = manager.execute_slot(slot)
            if job is not None:
                completed.append(job)
        self._slot_cursor = slot + 1
        return completed

    def run_slots(self, count: int, start: Optional[int] = None) -> List[Job]:
        """Step ``count`` consecutive slots; returns all completions."""
        count = as_slot_count(count, "slot count")
        if count < 0:
            raise ValueError(f"cannot run a negative slot count: {count}")
        slot = (
            self._slot_cursor
            if start is None
            else as_slot_count(start, "start slot")
        )
        completed: List[Job] = []
        for offset in range(count):
            completed.extend(self.step(slot + offset))
        return completed

    def process(
        self, sim: Simulator, timer: GlobalTimer, horizon_slots: int
    ) -> Generator:
        """Simulator process stepping the hypervisor once per slot."""
        if timer.cycles_per_slot != self.config.cycles_per_slot:
            raise ValueError(
                f"timer slot length {timer.cycles_per_slot} differs from "
                f"hypervisor configuration {self.config.cycles_per_slot}"
            )
        for slot in range(horizon_slots):
            boundary = timer.slot_start_cycle(slot)
            if boundary > sim.now:
                yield Timeout(boundary - sim.now)
            self.step(slot)
        return len(self.completed_jobs)

    def _job_completed(self, device_name: str, job: Job, slot: int) -> None:
        self.completed_jobs.append(job)
        if self.config.trace is not None:
            self.config.trace.record(
                slot,
                "job_complete",
                f"hypervisor.{device_name}",
                job=job.name,
                deadline_met=job.met_deadline(),
            )
        for hook in self._on_complete_hooks:
            hook(job, slot)

    # -- views ------------------------------------------------------------------------

    @property
    def pending_jobs(self) -> int:
        return sum(manager.pending_jobs for manager in self.managers.values())

    def device_names(self) -> List[str]:
        return sorted(self.managers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IOGuardHypervisor(devices={self.device_names()}, "
            f"completed={len(self.completed_jobs)})"
        )
