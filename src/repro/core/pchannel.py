"""P-channel: pre-defined I/O task execution (Sec. III-A).

"The memory banks store the pre-defined I/O tasks and the corresponding
timing information ..., which are loaded during system initialization.
... During system execution, the executor synchronizes with a global
timer and then compares the synchronized results with the time slot
table.  Once the system executes at a starting time point of a pre-loaded
I/O task, the executor loads this task to the connected virtualization
driver for execution."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.timeslot import TimeSlotTable, build_pchannel_table
from repro.sim.trace import TraceRecorder
from repro.tasks.task import IOTask, Job, TaskKind
from repro.tasks.taskset import TaskSet


class PChannel:
    """Time-slot-table-driven executor for pre-defined tasks."""

    def __init__(
        self,
        predefined: TaskSet,
        table: Optional[TimeSlotTable] = None,
        on_complete: Optional[Callable[[Job, int], None]] = None,
        activation_slot: int = 0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        for task in predefined:
            if task.kind != TaskKind.PREDEFINED:
                raise ValueError(
                    f"P-channel loaded with non-predefined task {task.name!r}"
                )
        if activation_slot < 0:
            raise ValueError(
                f"activation slot must be >= 0, got {activation_slot}"
            )
        self.tasks = predefined
        self.trace = trace
        #: sigma*: built at "system initialization" unless supplied.
        self.table = table if table is not None else build_pchannel_table(predefined)
        self.on_complete = on_complete
        #: First slot this channel is live: jobs released earlier are
        #: skipped (mode-change transients: a job whose window began
        #: before activation cannot receive its full slot allotment).
        self.activation_slot = activation_slot
        self._in_flight: Dict[str, Job] = {}
        self._job_counts: Dict[str, int] = {}
        self.slots_executed = 0
        self.jobs_completed = 0
        self.completed_jobs: List[Job] = []

    def occupies(self, slot: int) -> bool:
        """Whether the table reserves absolute slot ``slot``."""
        return self.table.is_occupied(slot)

    def execute_slot(self, slot: int) -> Optional[Job]:
        """Run the pre-defined work of slot ``slot``.

        Returns the job when this slot completes it.  Raises when called
        on a free slot -- the manager must route those to the R-channel.
        """
        task = self.table.task_at(slot)
        if task is None:
            raise ValueError(
                f"slot {slot} is free; P-channel executor has nothing to run"
            )
        job = self._current_job(task, slot)
        if job is None:
            # A table slot wrapped from the previous hyper-period repetition,
            # belonging to a job released before time zero; idle through it.
            return None
        if self.trace is not None:
            self.trace.record(
                slot, "pchannel.fire", "pchannel",
                task=task.name, job=job.name, remaining=job.remaining,
            )
        job.execute(1)
        if job.started_at is None:
            job.started_at = float(slot)
        self.slots_executed += 1
        if job.remaining == 0:
            job.completed_at = float(slot + 1)
            del self._in_flight[task.name]
            self.jobs_completed += 1
            self.completed_jobs.append(job)
            if self.on_complete is not None:
                self.on_complete(job, slot)
            return job
        return None

    def _current_job(self, task: IOTask, slot: int) -> Optional[Job]:
        """The in-flight job of ``task`` covering absolute slot ``slot``.

        A new job is materialised when none is in flight; its release is
        the period boundary containing ``slot`` (pre-defined jobs are
        strictly periodic: release ``offset + k*T``).  Returns None for
        slots before the task's first release -- table positions wrapped
        around the hyper-period boundary.
        """
        job = self._in_flight.get(task.name)
        if job is not None:
            return job
        if slot < task.offset:
            return None
        index = (slot - task.offset) // task.period
        if task.offset + index * task.period < self.activation_slot:
            # The window began before this channel was active; the job
            # cannot receive its full allotment -- skip it.
            return None
        job = task.job(release=task.offset + index * task.period, index=index)
        self._in_flight[task.name] = job
        self._job_counts[task.name] = self._job_counts.get(task.name, 0) + 1
        return job

    @property
    def utilization(self) -> float:
        """Fraction of table slots the P-channel occupies."""
        return 1.0 - self.table.free_fraction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PChannel(tasks={len(self.tasks)}, H={self.table.total_slots}, "
            f"completed={self.jobs_completed})"
        )
