"""Online admission control for run-time I/O tasks.

The paper's hypervisor "receives and buffers the run-time I/O tasks
requested by the VMs" (Sec. II-B); a production deployment must decide
*whether a newly appearing sporadic task can be admitted without
breaking the guarantees of the tasks already running*.  The natural
mechanism -- and the obvious extension of the paper's analysis -- is to
re-run the Theorem-4 test against the VM's server whenever a VM asks to
register a new task, and reject registrations that would make the VM's
set unschedulable.

The controller is purely analytic (it consults the same tests the
design-time analysis uses), so an admitted set always carries the full
Sec. IV guarantee; rejection leaves the running set untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.lsched_test import LSchedResult

# The schedulability tests live in repro.analysis, which itself imports
# repro.core (for the time slot table); importing them lazily inside the
# methods below keeps the packages acyclic at import time.


@dataclass
class AdmissionDecision:
    """Outcome of one admission request."""

    admitted: bool
    task_name: str
    vm_id: int
    reason: str = ""
    #: The Theorem-4 result backing the decision (None for structural
    #: rejections such as an unknown VM).
    test_result: Optional[LSchedResult] = None

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Per-VM Theorem-4 gatekeeper over the R-channel task population."""

    def __init__(
        self,
        table: TimeSlotTable,
        servers: List[ServerSpec],
    ) -> None:
        self.table = table
        self._servers: Dict[int, ServerSpec] = {}
        for spec in servers:
            if spec.vm_id in self._servers:
                raise ValueError(f"duplicate server for VM {spec.vm_id}")
            self._servers[spec.vm_id] = spec
        # The global layer must hold for the configured servers before
        # any admission makes sense.
        from repro.analysis.gsched_test import gsched_schedulable

        pairs = [(s.pi, s.theta) for s in self._servers.values()]
        global_result = gsched_schedulable(table, pairs)
        if not global_result.schedulable:
            raise ValueError(
                "server set fails the global (Theorem-2) test at "
                f"t={global_result.failing_t}; fix the configuration before "
                "admitting tasks"
            )
        self._admitted: Dict[int, TaskSet] = {
            vm_id: TaskSet(name=f"admitted.vm{vm_id}") for vm_id in self._servers
        }
        self.admitted_count = 0
        self.rejected_count = 0
        self.decisions: List[AdmissionDecision] = []

    # -- queries -----------------------------------------------------------

    def admitted_tasks(self, vm_id: int) -> TaskSet:
        self._require_vm(vm_id)
        return self._admitted[vm_id]

    def vm_utilization(self, vm_id: int) -> float:
        return self.admitted_tasks(vm_id).utilization

    def server_of(self, vm_id: int) -> ServerSpec:
        self._require_vm(vm_id)
        return self._servers[vm_id]

    # -- admission ----------------------------------------------------------

    def try_admit(self, task: IOTask) -> AdmissionDecision:
        """Admit ``task`` into its VM iff Theorem 4 still passes.

        On success the task joins the VM's admitted set; on failure the
        set is unchanged and the decision records the failing point.
        """
        if task.kind != TaskKind.RUNTIME:
            decision = AdmissionDecision(
                admitted=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason="pre-defined tasks are loaded at initialization, "
                "not admitted at run time",
            )
            return self._record(decision)
        if task.vm_id not in self._servers:
            decision = AdmissionDecision(
                admitted=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=f"no server configured for VM {task.vm_id}",
            )
            return self._record(decision)
        current = self._admitted[task.vm_id]
        if task.name in current:
            decision = AdmissionDecision(
                admitted=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=f"a task named {task.name!r} is already admitted",
            )
            return self._record(decision)
        from repro.analysis.lsched_test import lsched_schedulable

        candidate = TaskSet(current.tasks + [task], name=current.name)
        spec = self._servers[task.vm_id]
        result = lsched_schedulable(spec.pi, spec.theta, candidate)
        if not result.schedulable:
            decision = AdmissionDecision(
                admitted=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=(
                    f"Theorem 4 fails at t={result.failing_t} "
                    f"(demand {result.failing_demand} > supply "
                    f"{result.failing_supply})"
                ),
                test_result=result,
            )
            return self._record(decision)
        current.add(task)
        decision = AdmissionDecision(
            admitted=True,
            task_name=task.name,
            vm_id=task.vm_id,
            reason="admitted under Theorem 4",
            test_result=result,
        )
        return self._record(decision)

    def withdraw(self, vm_id: int, task_name: str) -> IOTask:
        """Remove a previously admitted task (frees its demand)."""
        self._require_vm(vm_id)
        return self._admitted[vm_id].remove(task_name)

    def _record(self, decision: AdmissionDecision) -> AdmissionDecision:
        self.decisions.append(decision)
        if decision.admitted:
            self.admitted_count += 1
        else:
            self.rejected_count += 1
        return decision

    def _require_vm(self, vm_id: int) -> None:
        if vm_id not in self._servers:
            raise KeyError(
                f"no server configured for VM {vm_id}; "
                f"configured: {sorted(self._servers)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(vms={sorted(self._servers)}, "
            f"admitted={self.admitted_count}, rejected={self.rejected_count})"
        )
