"""Online admission control for run-time I/O tasks.

The paper's hypervisor "receives and buffers the run-time I/O tasks
requested by the VMs" (Sec. II-B); a production deployment must decide
*whether a newly appearing sporadic task can be admitted without
breaking the guarantees of the tasks already running*.  The natural
mechanism -- and the obvious extension of the paper's analysis -- is to
re-run the Theorem-4 test against the VM's server whenever a VM asks to
register a new task, and reject registrations that would make the VM's
set unschedulable.

The controller is purely analytic (it consults the same tests the
design-time analysis uses), so an admitted set always carries the full
Sec. IV guarantee; rejection leaves the running set untouched.

Admission is *incremental*: the controller maintains, per VM, the
aggregate demand curve of the admitted set sampled at its dbf step
points (:class:`_VMDemandState`).  Testing a candidate then only costs
the *new* task's demand plus any extension of the Theorem-4 horizon,
instead of re-evaluating every admitted task at every step point.  The
verdict is bit-identical to a full re-test (the union grid *is* the
candidate's step-point grid, and demand/supply are evaluated with the
same integer arithmetic); near the schedulability boundary -- slack
``c' <= 0`` -- the controller falls back to the exact scalar path,
whose utilization/Theorem-3 handling the incremental curve cannot
express.  :meth:`AdmissionController.withdraw` drops the VM's memoized
curve, so the next admission rebuilds it from the live task set --
admit/withdraw/admit sequences decide exactly like a fresh controller.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.demand import DemandSignature
    from repro.analysis.lsched_test import LSchedResult

# The schedulability tests live in repro.analysis, which itself imports
# repro.core (for the time slot table); importing them lazily inside the
# methods below keeps the packages acyclic at import time.

_MISSING = object()


class AdmissionDecision:
    """Outcome of one admission request.

    Satisfies the :class:`repro.api.SchedulabilityResult` protocol:
    ``schedulable`` carries the verdict, ``failing_t`` the Theorem-4
    witness (when one exists) and ``summary()`` a one-line rendering.
    The pre-facade name for the verdict, ``admitted``, remains available
    as a deprecated alias (attribute *and* constructor keyword).
    """

    schedulable: bool
    task_name: str
    vm_id: int
    reason: str
    #: The Theorem-4 result backing the decision (None for structural
    #: rejections such as an unknown VM).
    test_result: Optional[LSchedResult]

    def __init__(
        self,
        schedulable: object = _MISSING,
        task_name: str = "",
        vm_id: int = -1,
        reason: str = "",
        test_result: Optional[LSchedResult] = None,
        *,
        admitted: object = _MISSING,
    ) -> None:
        if admitted is not _MISSING:
            warnings.warn(
                "AdmissionDecision(admitted=...) is deprecated; "
                "pass schedulable=... instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if schedulable is _MISSING:
                schedulable = admitted
        if schedulable is _MISSING:
            raise TypeError(
                "AdmissionDecision() missing required argument: 'schedulable'"
            )
        self.schedulable = bool(schedulable)
        self.task_name = task_name
        self.vm_id = vm_id
        self.reason = reason
        self.test_result = test_result

    @property
    def admitted(self) -> bool:
        """Deprecated alias for :attr:`schedulable`."""
        warnings.warn(
            "AdmissionDecision.admitted is deprecated; "
            "use AdmissionDecision.schedulable",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.schedulable

    @property
    def failing_t(self) -> Optional[int]:
        """The Theorem-4 witness behind a rejection, when one exists."""
        if self.test_result is None:
            return None
        return self.test_result.failing_t

    def summary(self) -> str:
        verdict = "admitted" if self.schedulable else "rejected"
        text = f"{self.task_name!r} -> VM {self.vm_id}: {verdict}"
        if self.reason:
            text += f" ({self.reason})"
        return text

    def __bool__(self) -> bool:
        return self.schedulable

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdmissionDecision):
            return NotImplemented
        return (
            self.schedulable == other.schedulable
            and self.task_name == other.task_name
            and self.vm_id == other.vm_id
            and self.reason == other.reason
            and self.test_result == other.test_result
        )

    def __repr__(self) -> str:
        return (
            f"AdmissionDecision(schedulable={self.schedulable!r}, "
            f"task_name={self.task_name!r}, vm_id={self.vm_id!r}, "
            f"reason={self.reason!r}, test_result={self.test_result!r})"
        )


class _VMDemandState:
    """Aggregate demand curve of one VM's admitted set, maintained
    incrementally.

    ``points`` holds the admitted signature's dbf step points over
    ``[0, covered]`` (sorted, distinct) and ``demand`` the aggregate
    Eq. (9) demand at each.  The dbf staircase only jumps at these
    points, so demand at an arbitrary ``t <= covered`` is the value at
    the largest stored point ``<= t``.
    """

    __slots__ = ("signature", "points", "demand", "covered")

    def __init__(self, signature: DemandSignature) -> None:
        self.signature = signature
        self.points = np.zeros(0, dtype=np.int64)
        self.demand = np.zeros(0, dtype=np.int64)
        self.covered = 0

    def extend(self, horizon: int) -> None:
        """Grow the sampled curve to cover ``[0, horizon]``."""
        if horizon <= self.covered or not self.signature:
            self.covered = max(self.covered, horizon)
            return
        from repro.analysis import vectorized as vec

        pairs = vec.step_pairs(self.signature)
        fresh = vec._dedup_sorted(
            vec.step_points_in_range(pairs, self.covered + 1, horizon)
        )
        if fresh.size:
            self.points = np.concatenate([self.points, fresh])
            self.demand = np.concatenate(
                [self.demand, vec.dbf_taskset_at(self.signature, fresh)]
            )
        self.covered = horizon

    def demand_at(self, ts: np.ndarray) -> np.ndarray:
        """Aggregate demand of the admitted set at every ``t`` in ``ts``."""
        if not self.points.size:
            return np.zeros(ts.shape, dtype=np.int64)
        index = np.searchsorted(self.points, ts, side="right") - 1
        return np.where(index >= 0, self.demand[np.maximum(index, 0)], 0)


class AdmissionController:
    """Per-VM Theorem-4 gatekeeper over the R-channel task population."""

    def __init__(
        self,
        table: TimeSlotTable,
        servers: List[ServerSpec],
        *,
        incremental: bool = True,
    ) -> None:
        self.table = table
        self.incremental = incremental
        self._servers: Dict[int, ServerSpec] = {}
        for spec in servers:
            if spec.vm_id in self._servers:
                raise ValueError(f"duplicate server for VM {spec.vm_id}")
            self._servers[spec.vm_id] = spec
        # The global layer must hold for the configured servers before
        # any admission makes sense.
        from repro.analysis.gsched_test import gsched_schedulable

        pairs = [(s.pi, s.theta) for s in self._servers.values()]
        global_result = gsched_schedulable(table, pairs)
        if not global_result.schedulable:
            raise ValueError(
                "server set fails the global (Theorem-2) test at "
                f"t={global_result.failing_t}; fix the configuration before "
                "admitting tasks"
            )
        self._admitted: Dict[int, TaskSet] = {
            vm_id: TaskSet(name=f"admitted.vm{vm_id}") for vm_id in self._servers
        }
        self._state: Dict[int, _VMDemandState] = {}
        self.admitted_count = 0
        self.rejected_count = 0
        self.decisions: List[AdmissionDecision] = []

    # -- queries -----------------------------------------------------------

    def admitted_tasks(self, vm_id: int) -> TaskSet:
        self._require_vm(vm_id)
        return self._admitted[vm_id]

    def vm_utilization(self, vm_id: int) -> float:
        return self.admitted_tasks(vm_id).utilization

    def server_of(self, vm_id: int) -> ServerSpec:
        self._require_vm(vm_id)
        return self._servers[vm_id]

    # -- admission ----------------------------------------------------------

    def try_admit(self, task: IOTask) -> AdmissionDecision:
        """Admit ``task`` into its VM iff Theorem 4 still passes.

        On success the task joins the VM's admitted set; on failure the
        set is unchanged and the decision records the failing point.
        """
        if task.kind != TaskKind.RUNTIME:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason="pre-defined tasks are loaded at initialization, "
                "not admitted at run time",
            )
            return self._record(decision)
        if task.vm_id not in self._servers:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=f"no server configured for VM {task.vm_id}",
            )
            return self._record(decision)
        current = self._admitted[task.vm_id]
        if task.name in current:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=f"a task named {task.name!r} is already admitted",
            )
            return self._record(decision)
        candidate = TaskSet(current.tasks + [task], name=current.name)
        spec = self._servers[task.vm_id]
        result = self._test_candidate(spec, candidate, task)
        if not result.schedulable:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=(
                    f"Theorem 4 fails at t={result.failing_t} "
                    f"(demand {result.failing_demand} > supply "
                    f"{result.failing_supply})"
                ),
                test_result=result,
            )
            return self._record(decision)
        current.add(task)
        decision = AdmissionDecision(
            schedulable=True,
            task_name=task.name,
            vm_id=task.vm_id,
            reason="admitted under Theorem 4",
            test_result=result,
        )
        return self._record(decision)

    def withdraw(self, vm_id: int, task_name: str) -> IOTask:
        """Remove a previously admitted task (frees its demand).

        Also drops the VM's memoized demand curve: the stored points and
        aggregates are keyed to the *admitted signature*, so keeping
        them would replay the withdrawn task's demand against future
        candidates.  The next admission rebuilds the curve from the live
        set, making admit/withdraw/admit indistinguishable from a fresh
        controller.
        """
        self._require_vm(vm_id)
        removed = self._admitted[vm_id].remove(task_name)
        self._state.pop(vm_id, None)
        return removed

    # -- incremental engine --------------------------------------------------

    def _test_candidate(
        self, spec: ServerSpec, candidate: TaskSet, task: IOTask
    ) -> LSchedResult:
        """Theorem-4 verdict for ``candidate``, incrementally when possible.

        Bit-identical to ``lsched_schedulable(spec.pi, spec.theta,
        candidate)``: same slack classification, same horizon, same
        step-point grid, same first failing witness.
        """
        from repro.analysis.lsched_test import (
            _exact_slack,
            _theorem4_bound_from_slack,
            lsched_schedulable,
        )

        slack = _exact_slack(spec.pi, spec.theta, candidate)
        if not self.incremental or slack <= 0:
            # The incremental curve only models the Theorem-4 window;
            # boundary (c' == 0) and overload systems route through the
            # exact/utilization handling of the full test.
            return lsched_schedulable(spec.pi, spec.theta, candidate)
        horizon = _theorem4_bound_from_slack(spec.pi, spec.theta, candidate, slack)
        return self._incremental_window(
            spec, candidate, task, horizon, float(slack)
        )

    def _incremental_window(
        self,
        spec: ServerSpec,
        candidate: TaskSet,
        task: IOTask,
        horizon: int,
        slack: float,
    ) -> LSchedResult:
        from repro.analysis import vectorized as vec
        from repro.analysis.demand import demand_signature
        from repro.analysis.lsched_test import LSchedResult

        admitted_signature = demand_signature(self._admitted[task.vm_id])
        state = self._state.get(task.vm_id)
        if state is None or state.signature != admitted_signature:
            # First use, or the curve no longer matches the live set
            # (e.g. after a withdraw): rebuild from scratch.
            state = _VMDemandState(admitted_signature)
            self._state[task.vm_id] = state
        state.extend(horizon)
        cut = int(np.searchsorted(state.points, horizon, side="right"))
        base_points = state.points[:cut]
        task_points = (
            np.arange(task.deadline, horizon + 1, task.period, dtype=np.int64)
            if horizon >= task.deadline
            else np.zeros(0, dtype=np.int64)
        )
        union = vec._dedup_sorted(
            np.sort(np.concatenate([base_points, task_points]))
        )
        names = [each.name for each in candidate]
        if not union.size:
            # No step point falls inside the window: vacuously
            # schedulable, and the (empty) grid is still the candidate's
            # curve over [0, horizon] -- promote it so the state keeps
            # tracking the admitted signature.
            state.signature = demand_signature(candidate)
            state.points = union
            state.demand = np.zeros(0, dtype=np.int64)
            state.covered = horizon
            return LSchedResult(
                schedulable=True,
                horizon=horizon,
                slack=slack,
                method="theorem4",
                server=(spec.pi, spec.theta),
                task_names=names,
            )
        demand = state.demand_at(union)
        if task_points.size:
            jobs = (union - task.deadline) // task.period + 1
            demand = demand + np.where(
                union >= task.deadline, jobs * task.wcet, 0
            )
        supply = vec.sbf_server_at(spec.pi, spec.theta, union)
        failing = np.nonzero(demand > supply)[0]
        if failing.size:
            index = int(failing[0])
            return LSchedResult(
                schedulable=False,
                horizon=horizon,
                slack=slack,
                failing_t=int(union[index]),
                failing_demand=int(demand[index]),
                failing_supply=int(supply[index]),
                method="theorem4",
                server=(spec.pi, spec.theta),
                task_names=names,
            )
        # Admission will follow: promote the union grid to the VM state
        # so the next candidate only pays for its own step points.
        state.signature = demand_signature(candidate)
        state.points = union
        state.demand = demand
        state.covered = horizon
        return LSchedResult(
            schedulable=True,
            horizon=horizon,
            slack=slack,
            method="theorem4",
            server=(spec.pi, spec.theta),
            task_names=names,
        )

    def _record(self, decision: AdmissionDecision) -> AdmissionDecision:
        self.decisions.append(decision)
        if decision.schedulable:
            self.admitted_count += 1
        else:
            self.rejected_count += 1
        return decision

    def _require_vm(self, vm_id: int) -> None:
        if vm_id not in self._servers:
            raise KeyError(
                f"no server configured for VM {vm_id}; "
                f"configured: {sorted(self._servers)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(vms={sorted(self._servers)}, "
            f"admitted={self.admitted_count}, rejected={self.rejected_count})"
        )
