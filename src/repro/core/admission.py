"""Online admission control for run-time I/O tasks.

The paper's hypervisor "receives and buffers the run-time I/O tasks
requested by the VMs" (Sec. II-B); a production deployment must decide
*whether a newly appearing sporadic task can be admitted without
breaking the guarantees of the tasks already running*.  The natural
mechanism -- and the obvious extension of the paper's analysis -- is to
re-run the Theorem-4 test against the VM's server whenever a VM asks to
register a new task, and reject registrations that would make the VM's
set unschedulable.

The controller is purely analytic (it consults the same tests the
design-time analysis uses), so an admitted set always carries the full
Sec. IV guarantee; rejection leaves the running set untouched.

Admission is *incremental*: the controller maintains, per VM, the
aggregate demand curve of the admitted set sampled at its dbf step
points (:class:`_VMDemandState`).  Testing a candidate then only costs
the *new* task's demand plus any extension of the Theorem-4 horizon,
instead of re-evaluating every admitted task at every step point.  The
verdict is bit-identical to a full re-test (the union grid *is* the
candidate's step-point grid, and demand/supply are evaluated with the
same integer arithmetic); near the schedulability boundary -- slack
``c' <= 0`` -- the controller falls back to the exact scalar path,
whose utilization/Theorem-3 handling the incremental curve cannot
express.  :meth:`AdmissionController.withdraw` drops the VM's memoized
curve, so the next admission rebuilds it from the live task set --
admit/withdraw/admit sequences decide exactly like a fresh controller.

The controller is also *long-lived state*: :meth:`AdmissionController.snapshot`
captures the full controller (servers, admitted sets, memoized
demand-curve state, counters and the decision ring) as a versioned,
canonical-JSON :class:`ControllerSnapshot`, and
:meth:`AdmissionController.restore` rebuilds a controller that decides
bit-identically to the live one -- the enabler for the
:mod:`repro.serve` admission service, whose shards are rebalanced and
warm-restarted through exactly this round trip.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.gsched import ServerSpec
from repro.core.timeslot import TimeSlotTable
from repro.tasks.task import IOTask, TaskKind
from repro.tasks.taskset import TaskSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.demand import DemandSignature
    from repro.analysis.lsched_test import LSchedResult

# The schedulability tests live in repro.analysis, which itself imports
# repro.core (for the time slot table); importing them lazily inside the
# methods below keeps the packages acyclic at import time.

_MISSING = object()

#: Default bound on the retained decision ring.  The controller is
#: designed to live inside a long-running service (:mod:`repro.serve`);
#: an unbounded ``decisions`` list is a memory leak there.  Totals are
#: never lost: ``admitted_count``/``rejected_count`` keep counting and
#: ``dropped_decisions`` counts ring evictions (mirroring the
#: ``TraceRecorder`` ``max_events``/``dropped_events`` contract).
DEFAULT_MAX_DECISIONS = 4096

#: Version stamp of the :class:`ControllerSnapshot` wire format.
SNAPSHOT_SCHEMA_VERSION = 1

#: Deprecation shims that already warned in this process.  Server
#: request loops hit the shims once per request; warning on every call
#: would flood the log, so each shim fires exactly once per process.
_WARNED_DEPRECATIONS: Set[str] = set()


def _warn_deprecated_once(key: str, message: str) -> None:
    """Emit ``message`` as a DeprecationWarning once per process."""
    if key in _WARNED_DEPRECATIONS:
        return
    _WARNED_DEPRECATIONS.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process deprecation shims (test hook)."""
    _WARNED_DEPRECATIONS.clear()


class ConfigurationError(ValueError):
    """A server set that can never host admissions.

    Raised at controller construction when the configured servers fail
    the global (Theorem-2) test -- or are structurally invalid -- so a
    service can turn the condition into a structured, typed rejection
    instead of an opaque 500.  ``failing_t`` carries the Theorem-2
    witness (when one exists) and ``servers`` the offending
    ``(vm_id, pi, theta)`` triples.  For infeasible hand-written slot
    tables ``device``/``slot`` name the conflicting device/slot pair
    (the pre-defined task's device and the release slot whose window
    cannot host it) instead of leaving only the witness instant.
    Subclasses ``ValueError`` so pre-existing callers catching the
    untyped error keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        failing_t: Optional[int] = None,
        servers: Sequence[Tuple[int, int, int]] = (),
        device: Optional[str] = None,
        slot: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.failing_t = failing_t
        self.servers: Tuple[Tuple[int, int, int], ...] = tuple(servers)
        self.device = device
        self.slot = slot


class AdmissionDecision:
    """Outcome of one admission request.

    Satisfies the :class:`repro.api.SchedulabilityResult` protocol:
    ``schedulable`` carries the verdict, ``failing_t`` the Theorem-4
    witness (when one exists) and ``summary()`` a one-line rendering.
    The pre-facade name for the verdict, ``admitted``, remains available
    as a deprecated alias (attribute *and* constructor keyword).
    """

    schedulable: bool
    task_name: str
    vm_id: int
    reason: str
    #: The Theorem-4 result backing the decision (None for structural
    #: rejections such as an unknown VM).
    test_result: Optional[LSchedResult]

    def __init__(
        self,
        schedulable: object = _MISSING,
        task_name: str = "",
        vm_id: int = -1,
        reason: str = "",
        test_result: Optional[LSchedResult] = None,
        *,
        admitted: object = _MISSING,
    ) -> None:
        if admitted is not _MISSING:
            _warn_deprecated_once(
                "AdmissionDecision.__init__.admitted",
                "AdmissionDecision(admitted=...) is deprecated; "
                "pass schedulable=... instead",
            )
            if schedulable is _MISSING:
                schedulable = admitted
        if schedulable is _MISSING:
            raise TypeError(
                "AdmissionDecision() missing required argument: 'schedulable'"
            )
        self.schedulable = bool(schedulable)
        self.task_name = task_name
        self.vm_id = vm_id
        self.reason = reason
        self.test_result = test_result

    @property
    def admitted(self) -> bool:
        """Deprecated alias for :attr:`schedulable`."""
        _warn_deprecated_once(
            "AdmissionDecision.admitted",
            "AdmissionDecision.admitted is deprecated; "
            "use AdmissionDecision.schedulable",
        )
        return self.schedulable

    @property
    def failing_t(self) -> Optional[int]:
        """The Theorem-4 witness behind a rejection, when one exists."""
        if self.test_result is None:
            return None
        return self.test_result.failing_t

    def summary(self) -> str:
        verdict = "admitted" if self.schedulable else "rejected"
        text = f"{self.task_name!r} -> VM {self.vm_id}: {verdict}"
        if self.reason:
            text += f" ({self.reason})"
        return text

    def __bool__(self) -> bool:
        return self.schedulable

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdmissionDecision):
            return NotImplemented
        return (
            self.schedulable == other.schedulable
            and self.task_name == other.task_name
            and self.vm_id == other.vm_id
            and self.reason == other.reason
            and self.test_result == other.test_result
        )

    def __repr__(self) -> str:
        return (
            f"AdmissionDecision(schedulable={self.schedulable!r}, "
            f"task_name={self.task_name!r}, vm_id={self.vm_id!r}, "
            f"reason={self.reason!r}, test_result={self.test_result!r})"
        )


def result_to_dict(result: Optional[LSchedResult]) -> Optional[Dict[str, Any]]:
    """JSON-safe form of a Theorem-4 result (``None`` passes through)."""
    if result is None:
        return None
    return {
        "schedulable": result.schedulable,
        "horizon": result.horizon,
        "slack": result.slack,
        "failing_t": result.failing_t,
        "failing_demand": result.failing_demand,
        "failing_supply": result.failing_supply,
        "method": result.method,
        "server": list(result.server),
        "task_names": list(result.task_names),
    }


def result_from_dict(data: Optional[Dict[str, Any]]) -> Optional[LSchedResult]:
    """Inverse of :func:`result_to_dict`; round trips bit-identically."""
    if data is None:
        return None
    from repro.analysis.lsched_test import LSchedResult

    server = data["server"]
    return LSchedResult(
        schedulable=bool(data["schedulable"]),
        horizon=int(data["horizon"]),
        slack=float(data["slack"]),
        failing_t=None if data["failing_t"] is None else int(data["failing_t"]),
        failing_demand=(
            None if data["failing_demand"] is None else int(data["failing_demand"])
        ),
        failing_supply=(
            None if data["failing_supply"] is None else int(data["failing_supply"])
        ),
        method=str(data["method"]),
        server=(int(server[0]), int(server[1])),
        task_names=[str(name) for name in data["task_names"]],
    )


def decision_to_dict(decision: AdmissionDecision) -> Dict[str, Any]:
    """JSON-safe form of one decision (the snapshot/service wire form)."""
    return {
        "schedulable": decision.schedulable,
        "task_name": decision.task_name,
        "vm_id": decision.vm_id,
        "reason": decision.reason,
        "test_result": result_to_dict(decision.test_result),
    }


def decision_from_dict(data: Dict[str, Any]) -> AdmissionDecision:
    """Inverse of :func:`decision_to_dict`; round trips ``==``-equal."""
    return AdmissionDecision(
        schedulable=bool(data["schedulable"]),
        task_name=str(data["task_name"]),
        vm_id=int(data["vm_id"]),
        reason=str(data["reason"]),
        test_result=result_from_dict(data["test_result"]),
    )


@dataclass
class ControllerSnapshot:
    """Versioned, canonical-JSON image of one controller's full state.

    ``admitted`` preserves each VM's admission order (the order the
    incremental curve was grown in); ``memo`` captures the per-VM
    demand-curve state verbatim (signature triples, step points,
    aggregate demand, covered horizon), so a restored controller replays
    the *same* incremental path as the live one -- not merely the same
    verdicts.  Counters and the (bounded) decision ring are carried so
    restarts never lose counts.
    """

    table_pattern: List[int]
    servers: List[Tuple[int, int, int]]
    incremental: bool
    max_decisions: Optional[int]
    admitted: Dict[int, List[Dict[str, Any]]]
    memo: Dict[int, Dict[str, Any]]
    admitted_count: int
    rejected_count: int
    dropped_decisions: int
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    schema_version: int = SNAPSHOT_SCHEMA_VERSION

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict form (int keys stringified, tuples listed)."""
        return {
            "schema_version": self.schema_version,
            "table_pattern": list(self.table_pattern),
            "servers": [list(entry) for entry in self.servers],
            "incremental": self.incremental,
            "max_decisions": self.max_decisions,
            "admitted": {
                str(vm_id): list(tasks)
                for vm_id, tasks in sorted(self.admitted.items())
            },
            "memo": {
                str(vm_id): entry for vm_id, entry in sorted(self.memo.items())
            },
            "admitted_count": self.admitted_count,
            "rejected_count": self.rejected_count,
            "dropped_decisions": self.dropped_decisions,
            "decisions": list(self.decisions),
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators.

        Two controllers with equal state produce byte-identical strings,
        which is what the service's rebalance/warm-restart paths and the
        property suite compare.
        """
        from repro.tasks.serialization import canonical_json

        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ControllerSnapshot":
        version = payload.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported controller snapshot schema_version "
                f"{version!r}; this build reads {SNAPSHOT_SCHEMA_VERSION}"
            )
        max_decisions = payload["max_decisions"]
        return cls(
            table_pattern=[int(bit) for bit in payload["table_pattern"]],
            servers=[
                (int(entry[0]), int(entry[1]), int(entry[2]))
                for entry in payload["servers"]
            ],
            incremental=bool(payload["incremental"]),
            max_decisions=None if max_decisions is None else int(max_decisions),
            admitted={
                int(vm_id): list(tasks)
                for vm_id, tasks in payload["admitted"].items()
            },
            memo={
                int(vm_id): dict(entry)
                for vm_id, entry in payload["memo"].items()
            },
            admitted_count=int(payload["admitted_count"]),
            rejected_count=int(payload["rejected_count"]),
            dropped_decisions=int(payload["dropped_decisions"]),
            decisions=list(payload["decisions"]),
            schema_version=int(version),
        )

    @classmethod
    def from_json(cls, text: str) -> "ControllerSnapshot":
        import json

        return cls.from_payload(json.loads(text))


class _VMDemandState:
    """Aggregate demand curve of one VM's admitted set, maintained
    incrementally.

    ``points`` holds the admitted signature's dbf step points over
    ``[0, covered]`` (sorted, distinct) and ``demand`` the aggregate
    Eq. (9) demand at each.  The dbf staircase only jumps at these
    points, so demand at an arbitrary ``t <= covered`` is the value at
    the largest stored point ``<= t``.
    """

    __slots__ = ("signature", "points", "demand", "covered")

    def __init__(self, signature: DemandSignature) -> None:
        self.signature = signature
        self.points = np.zeros(0, dtype=np.int64)
        self.demand = np.zeros(0, dtype=np.int64)
        self.covered = 0

    def extend(self, horizon: int) -> None:
        """Grow the sampled curve to cover ``[0, horizon]``."""
        if horizon <= self.covered or not self.signature:
            self.covered = max(self.covered, horizon)
            return
        from repro.analysis import vectorized as vec

        pairs = vec.step_pairs(self.signature)
        fresh = vec._dedup_sorted(
            vec.step_points_in_range(pairs, self.covered + 1, horizon)
        )
        if fresh.size:
            self.points = np.concatenate([self.points, fresh])
            self.demand = np.concatenate(
                [self.demand, vec.dbf_taskset_at(self.signature, fresh)]
            )
        self.covered = horizon

    def demand_at(self, ts: np.ndarray) -> np.ndarray:
        """Aggregate demand of the admitted set at every ``t`` in ``ts``."""
        if not self.points.size:
            return np.zeros(ts.shape, dtype=np.int64)
        index = np.searchsorted(self.points, ts, side="right") - 1
        return np.where(index >= 0, self.demand[np.maximum(index, 0)], 0)


class AdmissionController:
    """Per-VM Theorem-4 gatekeeper over the R-channel task population."""

    def __init__(
        self,
        table: TimeSlotTable,
        servers: List[ServerSpec],
        *,
        incremental: bool = True,
        max_decisions: Optional[int] = DEFAULT_MAX_DECISIONS,
    ) -> None:
        if max_decisions is not None:
            max_decisions = int(max_decisions)
            if max_decisions < 1:
                raise ValueError(
                    f"max_decisions must be >= 1 (or None for unbounded), "
                    f"got {max_decisions}"
                )
        self.table = table
        self.incremental = incremental
        self.max_decisions = max_decisions
        self._servers: Dict[int, ServerSpec] = {}
        for spec in servers:
            if spec.vm_id in self._servers:
                raise ConfigurationError(
                    f"duplicate server for VM {spec.vm_id}",
                    servers=[(s.vm_id, s.pi, s.theta) for s in servers],
                )
            self._servers[spec.vm_id] = spec
        # The global layer must hold for the configured servers before
        # any admission makes sense.
        from repro.analysis.gsched_test import gsched_schedulable

        pairs = [(s.pi, s.theta) for s in self._servers.values()]
        global_result = gsched_schedulable(table, pairs)
        if not global_result.schedulable:
            raise ConfigurationError(
                "server set fails the global (Theorem-2) test at "
                f"t={global_result.failing_t}; fix the configuration before "
                "admitting tasks",
                failing_t=global_result.failing_t,
                servers=[
                    (s.vm_id, s.pi, s.theta) for s in self._servers.values()
                ],
            )
        self._admitted: Dict[int, TaskSet] = {
            vm_id: TaskSet(name=f"admitted.vm{vm_id}") for vm_id in self._servers
        }
        self._state: Dict[int, _VMDemandState] = {}
        self.admitted_count = 0
        self.rejected_count = 0
        #: Bounded ring of recent decisions; totals live in the counters.
        self.decisions: Deque[AdmissionDecision] = deque()
        #: Decisions evicted from the ring (0 when unbounded).
        self.dropped_decisions = 0

    # -- queries -----------------------------------------------------------

    def admitted_tasks(self, vm_id: int) -> TaskSet:
        self._require_vm(vm_id)
        return self._admitted[vm_id]

    def vm_utilization(self, vm_id: int) -> float:
        return self.admitted_tasks(vm_id).utilization

    def server_of(self, vm_id: int) -> ServerSpec:
        self._require_vm(vm_id)
        return self._servers[vm_id]

    # -- admission ----------------------------------------------------------

    def try_admit(self, task: IOTask) -> AdmissionDecision:
        """Admit ``task`` into its VM iff Theorem 4 still passes.

        On success the task joins the VM's admitted set; on failure the
        set is unchanged and the decision records the failing point.
        """
        if task.kind != TaskKind.RUNTIME:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason="pre-defined tasks are loaded at initialization, "
                "not admitted at run time",
            )
            return self._record(decision)
        if task.vm_id not in self._servers:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=f"no server configured for VM {task.vm_id}",
            )
            return self._record(decision)
        current = self._admitted[task.vm_id]
        if task.name in current:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=f"a task named {task.name!r} is already admitted",
            )
            return self._record(decision)
        candidate = TaskSet(current.tasks + [task], name=current.name)
        spec = self._servers[task.vm_id]
        result = self._test_candidate(spec, candidate, task)
        if not result.schedulable:
            decision = AdmissionDecision(
                schedulable=False,
                task_name=task.name,
                vm_id=task.vm_id,
                reason=(
                    f"Theorem 4 fails at t={result.failing_t} "
                    f"(demand {result.failing_demand} > supply "
                    f"{result.failing_supply})"
                ),
                test_result=result,
            )
            return self._record(decision)
        current.add(task)
        decision = AdmissionDecision(
            schedulable=True,
            task_name=task.name,
            vm_id=task.vm_id,
            reason="admitted under Theorem 4",
            test_result=result,
        )
        return self._record(decision)

    def withdraw(self, vm_id: int, task_name: str) -> IOTask:
        """Remove a previously admitted task (frees its demand).

        Also drops the VM's memoized demand curve: the stored points and
        aggregates are keyed to the *admitted signature*, so keeping
        them would replay the withdrawn task's demand against future
        candidates.  The next admission rebuilds the curve from the live
        set, making admit/withdraw/admit indistinguishable from a fresh
        controller.
        """
        self._require_vm(vm_id)
        removed = self._admitted[vm_id].remove(task_name)
        self._state.pop(vm_id, None)
        return removed

    # -- incremental engine --------------------------------------------------

    def _test_candidate(
        self, spec: ServerSpec, candidate: TaskSet, task: IOTask
    ) -> LSchedResult:
        """Theorem-4 verdict for ``candidate``, incrementally when possible.

        Bit-identical to ``lsched_schedulable(spec.pi, spec.theta,
        candidate)``: same slack classification, same horizon, same
        step-point grid, same first failing witness.
        """
        from repro.analysis.lsched_test import (
            _exact_slack,
            _theorem4_bound_from_slack,
            lsched_schedulable,
        )

        slack = _exact_slack(spec.pi, spec.theta, candidate)
        if not self.incremental or slack <= 0:
            # The incremental curve only models the Theorem-4 window;
            # boundary (c' == 0) and overload systems route through the
            # exact/utilization handling of the full test.
            return lsched_schedulable(spec.pi, spec.theta, candidate)
        horizon = _theorem4_bound_from_slack(spec.pi, spec.theta, candidate, slack)
        return self._incremental_window(
            spec, candidate, task, horizon, float(slack)
        )

    def _incremental_window(
        self,
        spec: ServerSpec,
        candidate: TaskSet,
        task: IOTask,
        horizon: int,
        slack: float,
    ) -> LSchedResult:
        from repro.analysis import vectorized as vec
        from repro.analysis.demand import demand_signature
        from repro.analysis.lsched_test import LSchedResult

        admitted_signature = demand_signature(self._admitted[task.vm_id])
        state = self._state.get(task.vm_id)
        if state is None or state.signature != admitted_signature:
            # First use, or the curve no longer matches the live set
            # (e.g. after a withdraw): rebuild from scratch.
            state = _VMDemandState(admitted_signature)
            self._state[task.vm_id] = state
        state.extend(horizon)
        cut = int(np.searchsorted(state.points, horizon, side="right"))
        base_points = state.points[:cut]
        task_points = (
            np.arange(task.deadline, horizon + 1, task.period, dtype=np.int64)
            if horizon >= task.deadline
            else np.zeros(0, dtype=np.int64)
        )
        union = vec._dedup_sorted(
            np.sort(np.concatenate([base_points, task_points]))
        )
        names = [each.name for each in candidate]
        if not union.size:
            # No step point falls inside the window: vacuously
            # schedulable, and the (empty) grid is still the candidate's
            # curve over [0, horizon] -- promote it so the state keeps
            # tracking the admitted signature.
            state.signature = demand_signature(candidate)
            state.points = union
            state.demand = np.zeros(0, dtype=np.int64)
            state.covered = horizon
            return LSchedResult(
                schedulable=True,
                horizon=horizon,
                slack=slack,
                method="theorem4",
                server=(spec.pi, spec.theta),
                task_names=names,
            )
        demand = state.demand_at(union)
        if task_points.size:
            jobs = (union - task.deadline) // task.period + 1
            demand = demand + np.where(
                union >= task.deadline, jobs * task.wcet, 0
            )
        supply = vec.sbf_server_at(spec.pi, spec.theta, union)
        failing = np.nonzero(demand > supply)[0]
        if failing.size:
            index = int(failing[0])
            return LSchedResult(
                schedulable=False,
                horizon=horizon,
                slack=slack,
                failing_t=int(union[index]),
                failing_demand=int(demand[index]),
                failing_supply=int(supply[index]),
                method="theorem4",
                server=(spec.pi, spec.theta),
                task_names=names,
            )
        # Admission will follow: promote the union grid to the VM state
        # so the next candidate only pays for its own step points.
        state.signature = demand_signature(candidate)
        state.points = union
        state.demand = demand
        state.covered = horizon
        return LSchedResult(
            schedulable=True,
            horizon=horizon,
            slack=slack,
            method="theorem4",
            server=(spec.pi, spec.theta),
            task_names=names,
        )

    def _record(self, decision: AdmissionDecision) -> AdmissionDecision:
        if (
            self.max_decisions is not None
            and len(self.decisions) >= self.max_decisions
        ):
            # Ring-buffer mode: evict the oldest decision, explicitly
            # counted -- the admitted/rejected totals never decay.
            self.decisions.popleft()
            self.dropped_decisions += 1
        self.decisions.append(decision)
        if decision.schedulable:
            self.admitted_count += 1
        else:
            self.rejected_count += 1
        return decision

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> ControllerSnapshot:
        """Capture the controller as a :class:`ControllerSnapshot`.

        The snapshot is *complete*: restoring it yields a controller
        whose future decisions (and memoized demand-curve growth) are
        bit-identical to this one's, which the property suite asserts
        against a replayed fresh controller.
        """
        from repro.tasks.serialization import task_to_dict

        memo: Dict[int, Dict[str, Any]] = {}
        for vm_id in sorted(self._state):
            state = self._state[vm_id]
            memo[vm_id] = {
                "signature": [list(triple) for triple in state.signature],
                "points": state.points.tolist(),
                "demand": state.demand.tolist(),
                "covered": state.covered,
            }
        return ControllerSnapshot(
            table_pattern=self.table.occupancy_pattern(),
            servers=[
                (spec.vm_id, spec.pi, spec.theta)
                for spec in (
                    self._servers[vm_id] for vm_id in sorted(self._servers)
                )
            ],
            incremental=self.incremental,
            max_decisions=self.max_decisions,
            admitted={
                vm_id: [
                    task_to_dict(task) for task in self._admitted[vm_id].tasks
                ]
                for vm_id in sorted(self._admitted)
            },
            memo=memo,
            admitted_count=self.admitted_count,
            rejected_count=self.rejected_count,
            dropped_decisions=self.dropped_decisions,
            decisions=[decision_to_dict(entry) for entry in self.decisions],
        )

    @classmethod
    def restore(cls, snapshot: ControllerSnapshot) -> "AdmissionController":
        """Rebuild a controller from a snapshot (warm restart).

        The restored controller re-validates the server set (Theorem 2
        is deterministic, so a snapshot that was constructible once
        always restores) and then reinstates the admitted sets, memoized
        demand curves, counters and decision ring verbatim -- no
        decision is replayed, so counters keep their totals.
        """
        from repro.tasks.serialization import task_from_dict

        controller = cls(
            TimeSlotTable.from_pattern(snapshot.table_pattern),
            [ServerSpec(vm_id, pi, theta) for vm_id, pi, theta in snapshot.servers],
            incremental=snapshot.incremental,
            max_decisions=snapshot.max_decisions,
        )
        for vm_id in sorted(snapshot.admitted):
            if vm_id not in controller._admitted:
                raise ValueError(
                    f"snapshot admits tasks into VM {vm_id}, which has no "
                    "server in the snapshot's configuration"
                )
            admitted = controller._admitted[vm_id]
            for data in snapshot.admitted[vm_id]:
                admitted.add(task_from_dict(data))
        for vm_id in sorted(snapshot.memo):
            entry = snapshot.memo[vm_id]
            signature = tuple(
                (int(triple[0]), int(triple[1]), int(triple[2]))
                for triple in entry["signature"]
            )
            state = _VMDemandState(signature)
            state.points = np.asarray(entry["points"], dtype=np.int64)
            state.demand = np.asarray(entry["demand"], dtype=np.int64)
            state.covered = int(entry["covered"])
            controller._state[vm_id] = state
        controller.admitted_count = snapshot.admitted_count
        controller.rejected_count = snapshot.rejected_count
        controller.dropped_decisions = snapshot.dropped_decisions
        controller.decisions = deque(
            decision_from_dict(entry) for entry in snapshot.decisions
        )
        return controller

    def _require_vm(self, vm_id: int) -> None:
        if vm_id not in self._servers:
            raise KeyError(
                f"no server configured for VM {vm_id}; "
                f"configured: {sorted(self._servers)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(vms={sorted(self._servers)}, "
            f"admitted={self.admitted_count}, rejected={self.rejected_count})"
        )
