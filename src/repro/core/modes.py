"""Mode changes: swapping the pre-defined schedule at run time.

Vehicles change operating modes (parking, highway, diagnostics); each
mode carries its own pre-defined I/O schedule.  The paper loads the time
slot table "during system initialization" -- the natural extension is a
*mode manager* that atomically swaps sigma* at a hyper-period boundary:

* the new table is validated up front (the pending-mode request can be
  rejected without touching the running mode),
* the swap happens exactly at a slot index that is a common boundary of
  the old and new hyper-periods, so no in-flight pre-defined job is
  truncated,
* R-channel guarantees are re-validated against the new table's free
  slots before the swap is accepted (Theorem 2 with the configured
  servers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.gsched import ServerSpec
from repro.core.pchannel import PChannel
from repro.core.timeslot import TimeSlotTable, build_pchannel_table, stagger_offsets
from repro.tasks.task import Job
from repro.tasks.taskset import TaskSet


@dataclass(frozen=True)
class Mode:
    """One named operating mode: its pre-defined task set and table."""

    name: str
    predefined: TaskSet
    table: TimeSlotTable

    @classmethod
    def build(
        cls,
        name: str,
        predefined: TaskSet,
        *,
        stagger: bool = True,
        placement: str = "spread",
    ) -> "Mode":
        tasks = stagger_offsets(predefined) if stagger else predefined
        table = build_pchannel_table(tasks, placement=placement)
        return cls(name=name, predefined=tasks, table=table)


@dataclass
class ModeChange:
    """A scheduled transition."""

    target: str
    requested_at_slot: int
    effective_slot: int


class ModeManager:
    """Owns the active P-channel and performs boundary-aligned swaps."""

    def __init__(
        self,
        modes: Dict[str, Mode],
        initial: str,
        servers: Optional[List[ServerSpec]] = None,
    ) -> None:
        if initial not in modes:
            raise KeyError(
                f"initial mode {initial!r} not in {sorted(modes)}"
            )
        self.modes = dict(modes)
        self.servers = list(servers or [])
        # Every mode must keep the configured servers feasible: a mode
        # change must never silently break the R-channel guarantee.
        for mode in self.modes.values():
            self._validate_mode(mode)
        self.active_name = initial
        self.pchannel = PChannel(
            self.modes[initial].predefined, table=self.modes[initial].table
        )
        self.pending: Optional[ModeChange] = None
        self.history: List[ModeChange] = []

    def _validate_mode(self, mode: Mode) -> None:
        if not self.servers:
            return
        from repro.analysis.gsched_test import gsched_schedulable

        pairs = [(s.pi, s.theta) for s in self.servers]
        result = gsched_schedulable(mode.table, pairs)
        if not result.schedulable:
            raise ValueError(
                f"mode {mode.name!r} cannot host the configured servers: "
                f"Theorem 2 fails at t={result.failing_t}"
            )

    # -- transitions ---------------------------------------------------------

    def request_mode(self, target: str, current_slot: int) -> ModeChange:
        """Schedule a swap to ``target`` at the next common boundary.

        The effective slot is the next multiple of
        ``lcm(H_old, H_new)`` after ``current_slot`` -- both schedules
        agree there (old finishes a whole number of hyper-periods, new
        starts aligned), so no pre-defined job straddles the swap.
        """
        if target not in self.modes:
            raise KeyError(f"unknown mode {target!r}; have {sorted(self.modes)}")
        if self.pending is not None:
            raise RuntimeError(
                f"a mode change to {self.pending.target!r} is already "
                f"pending (effective slot {self.pending.effective_slot})"
            )
        if target == self.active_name:
            raise ValueError(f"already in mode {target!r}")
        old_h = self.modes[self.active_name].table.total_slots
        new_h = self.modes[target].table.total_slots
        boundary = math.lcm(old_h, new_h)
        effective = ((current_slot // boundary) + 1) * boundary
        self.pending = ModeChange(
            target=target,
            requested_at_slot=current_slot,
            effective_slot=effective,
        )
        return self.pending

    def cancel_pending(self) -> Optional[ModeChange]:
        """Abort a scheduled (not yet effective) transition."""
        cancelled, self.pending = self.pending, None
        return cancelled

    def tick(self, slot: int) -> Optional[str]:
        """Advance mode state; returns the new mode name on a swap slot."""
        if self.pending is not None and slot >= self.pending.effective_slot:
            change = self.pending
            self.pending = None
            self.active_name = change.target
            mode = self.modes[change.target]
            self.pchannel = PChannel(
                mode.predefined,
                table=mode.table,
                activation_slot=change.effective_slot,
            )
            self.history.append(change)
            return change.target
        return None

    # -- P-channel facade -------------------------------------------------------

    @property
    def active_mode(self) -> Mode:
        return self.modes[self.active_name]

    @property
    def table(self) -> TimeSlotTable:
        return self.active_mode.table

    def occupies(self, slot: int) -> bool:
        return self.pchannel.occupies(slot)

    def execute_slot(self, slot: int) -> Optional[Job]:
        return self.pchannel.execute_slot(slot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = self.pending.target if self.pending else None
        return (
            f"ModeManager(active={self.active_name!r}, pending={pending!r}, "
            f"modes={sorted(self.modes)})"
        )
