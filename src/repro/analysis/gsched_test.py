"""G-Sched schedulability: Theorems 1 and 2 (Sec. IV-A).

The global layer treats each VM i as a periodic server
``Gamma_i = (Pi_i, Theta_i)`` scheduled by EDF over the free slots of the
time slot table sigma.  Theorem 1 is the exact condition
``forall t: sum_i dbf(Gamma_i, t) <= sbf(sigma, t)``; Theorem 2 caps the
range of ``t`` that must be examined at ``F * (H-1)/H / c`` whenever the
slack ``c = F/H - sum_i Theta_i/Pi_i`` is bounded away from zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.analysis.demand import dbf_server, server_step_points
from repro.analysis.engine import VECTORIZE_MIN_POINTS, resolve_engine
from repro.analysis.hyperperiod import lcm_capped
from repro.core.timeslot import TimeSlotTable

#: Exact-test guard: Theorem 1 checks up to lcm({H} u {Pi_i}), which is
#: exponential in the input values; refuse beyond this many slots.
EXACT_TEST_CAP = 5_000_000

# VECTORIZE_MIN_POINTS is re-exported (and monkeypatchable) here, but
# defined once in repro.analysis.engine -- see the note there.


@dataclass
class GSchedResult:
    """Outcome of a G-Sched schedulability test."""

    schedulable: bool
    #: Horizon actually examined (slots).
    horizon: int
    #: Slack ``c = F/H - sum Theta/Pi`` (negative means over-utilized).
    slack: float
    #: First failing t, when unschedulable.
    failing_t: Optional[int] = None
    #: Demand and supply at the failing point.
    failing_demand: Optional[int] = None
    failing_supply: Optional[int] = None
    #: Which theorem produced the verdict ("theorem1" or "theorem2").
    method: str = "theorem2"
    #: The (pi, theta) pairs tested.
    servers: List[Tuple[int, int]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.schedulable

    def summary(self) -> str:
        from repro.analysis.result import witness_text

        verdict = "schedulable" if self.schedulable else "unschedulable"
        return (
            f"G-Sched ({self.method}): {verdict}"
            f"{witness_text(self.failing_t, self.failing_demand, self.failing_supply)}"
            f" [{len(self.servers)} servers, horizon {self.horizon}]"
        )


def server_bandwidth(servers: Sequence[Tuple[int, int]]) -> float:
    """``sum_i Theta_i / Pi_i``."""
    total = 0.0
    for pi, theta in servers:
        if pi < 1 or not 0 < theta <= pi:
            raise ValueError(f"invalid server (pi={pi}, theta={theta})")
        total += theta / pi
    return total


def theorem2_bound(table: TimeSlotTable, servers: Sequence[Tuple[int, int]]) -> int:
    """The Theorem-2 horizon ``F * (H-1)/H / c`` (exclusive, ceiled).

    Computed in exact rational arithmetic (float division occasionally
    pushes the ceiling one step too far).  Raises ``ValueError`` when
    the slack is non-positive: Theorem 2 only applies to systems with
    strictly positive slack (its stated limitation; see "On the
    limitation of Theorem 2").
    """
    h = table.total_slots
    f = table.free_slots
    slack = Fraction(f, h) - sum(
        (Fraction(theta, pi) for pi, theta in servers), Fraction(0)
    )
    if slack <= 0:
        raise ValueError(
            f"Theorem 2 requires positive slack; got c={float(slack):.6f} "
            f"(F/H={f}/{h}, bandwidth={server_bandwidth(servers):.6f})"
        )
    if h == 1:
        # (H-1)/H = 0: the table is a trivial single-slot pattern and the
        # bound degenerates to checking t = 0 only, i.e. the utilization
        # condition alone suffices.
        return 1
    return int(math.ceil(Fraction(f * (h - 1), h) / slack))


def gsched_schedulable(
    table: TimeSlotTable,
    servers: Sequence[Tuple[int, int]],
    engine: Optional[str] = None,
) -> GSchedResult:
    """Theorem 2: pseudo-polynomial G-Sched test.

    Checks the Theorem-1 inequality at every aggregate-dbf step point up
    to the Theorem-2 horizon.  Over-utilized systems (non-positive slack)
    are immediately unschedulable in the long run; we report them with a
    witness at the table hyper-period scale.

    ``engine`` selects the step-point sweep implementation (``"scalar"``
    or ``"vectorized"``; see :mod:`repro.analysis.engine`).  Both return
    bit-identical results.
    """
    servers = [(int(pi), int(theta)) for pi, theta in servers]
    h = table.total_slots
    f = table.free_slots
    server_bandwidth(servers)  # validates the pairs
    slack = Fraction(f, h) - sum(
        (Fraction(theta, pi) for pi, theta in servers), Fraction(0)
    )
    if not servers:
        return GSchedResult(
            schedulable=True,
            horizon=0,
            slack=float(slack),
            method="theorem2",
            servers=[],
        )
    if slack < 0:
        witness = _overload_witness(table, servers)
        return GSchedResult(
            schedulable=False,
            horizon=witness[0],
            slack=float(slack),
            failing_t=witness[0],
            failing_demand=witness[1],
            failing_supply=witness[2],
            method="utilization",
            servers=servers,
        )
    if slack == 0:
        # Theorem 2 does not apply; fall back to the exact test when the
        # hyper-period is tractable.
        return gsched_schedulable_exact(table, servers, engine=engine)
    horizon = theorem2_bound(table, servers)
    return _check_window(
        table, servers, horizon, float(slack), method="theorem2", engine=engine
    )


def gsched_schedulable_exact(
    table: TimeSlotTable,
    servers: Sequence[Tuple[int, int]],
    cap: int = EXACT_TEST_CAP,
    engine: Optional[str] = None,
) -> GSchedResult:
    """Theorem 1: exact test up to lcm({H} u {Pi_i}).

    The demand and supply curves both repeat with that LCM, and over one
    repetition demand grows by ``lcm * bandwidth`` while supply grows by
    ``lcm * F/H``; when bandwidth <= F/H and the inequality holds over
    the first repetition it holds forever.
    """
    servers = [(int(pi), int(theta)) for pi, theta in servers]
    h = table.total_slots
    f = table.free_slots
    server_bandwidth(servers)  # validates the pairs
    slack = Fraction(f, h) - sum(
        (Fraction(theta, pi) for pi, theta in servers), Fraction(0)
    )
    if not servers:
        return GSchedResult(
            schedulable=True,
            horizon=0,
            slack=float(slack),
            method="theorem1",
            servers=[],
        )
    if slack < 0:
        witness = _overload_witness(table, servers)
        return GSchedResult(
            schedulable=False,
            horizon=witness[0],
            slack=float(slack),
            failing_t=witness[0],
            failing_demand=witness[1],
            failing_supply=witness[2],
            method="utilization",
            servers=servers,
        )
    horizon = lcm_capped([h] + [pi for pi, _ in servers], cap)
    return _check_window(
        table, servers, horizon, float(slack), method="theorem1", engine=engine
    )


def _check_window(
    table: TimeSlotTable,
    servers: List[Tuple[int, int]],
    horizon: int,
    slack: float,
    method: str,
    engine: Optional[str] = None,
) -> GSchedResult:
    if (
        resolve_engine(engine) != "scalar"
        and sum(horizon // pi for pi, _theta in servers) >= VECTORIZE_MIN_POINTS
    ):
        return _check_window_vectorized(table, servers, horizon, slack, method)
    for t in server_step_points(servers, horizon):
        demand = sum(dbf_server(pi, theta, t) for pi, theta in servers)
        supply = table.sbf(t)
        if demand > supply:
            return GSchedResult(
                schedulable=False,
                horizon=horizon,
                slack=slack,
                failing_t=t,
                failing_demand=demand,
                failing_supply=supply,
                method=method,
                servers=servers,
            )
    return GSchedResult(
        schedulable=True,
        horizon=horizon,
        slack=slack,
        method=method,
        servers=servers,
    )


def _check_window_vectorized(
    table: TimeSlotTable,
    servers: List[Tuple[int, int]],
    horizon: int,
    slack: float,
    method: str,
) -> GSchedResult:
    """QPA descent + numpy witness scan; bit-identical to _check_window."""
    from repro.analysis import vectorized as vec

    failure = vec.server_failure(table, servers, horizon)
    if failure is None:
        return GSchedResult(
            schedulable=True,
            horizon=horizon,
            slack=slack,
            method=method,
            servers=servers,
        )
    t, demand, supply = failure
    return GSchedResult(
        schedulable=False,
        horizon=horizon,
        slack=slack,
        failing_t=t,
        failing_demand=demand,
        failing_supply=supply,
        method=method,
        servers=servers,
    )


def _overload_witness(
    table: TimeSlotTable, servers: List[Tuple[int, int]]
) -> Tuple[int, int, int]:
    """A failing (t, demand, supply) for an over-utilized system.

    Long-run demand rate exceeds supply rate, so some multiple of the
    combined period must fail; walk multiples until it does.
    """
    base = table.total_slots
    for pi, _theta in servers:
        base = math.lcm(base, pi)
        if base > EXACT_TEST_CAP:
            break
    t = base
    for _ in range(10_000):
        demand = sum(dbf_server(pi, theta, t) for pi, theta in servers)
        supply = table.sbf(t)
        if demand > supply:
            return t, demand, supply
        t += base
    raise AssertionError(
        "over-utilized system produced no finite witness; "
        "slack computation is inconsistent"
    )
