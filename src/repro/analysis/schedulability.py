"""End-to-end system schedulability.

Ties the pieces of Sec. IV together for a whole configuration: split the
task set into P-channel and R-channel shares, build the time slot table
from the pre-defined tasks, dimension servers for the R-channel VMs, and
run the Theorem-2 and Theorem-4 tests.  This is the analytic counterpart
of a full I/O-GUARD simulation run and is what the schedulability
example and the analysis benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.gsched_test import GSchedResult
from repro.analysis.lsched_test import LSchedResult, lsched_schedulable
from repro.analysis.servers import ServerDesign, design_servers
from repro.core.timeslot import (
    TableOverflowError,
    TimeSlotTable,
    build_pchannel_table,
    stagger_offsets,
)
from repro.tasks.taskset import TaskSet


@dataclass
class SystemSchedulabilityResult:
    """Full-system analysis verdict."""

    schedulable: bool
    table: Optional[TimeSlotTable]
    design: Optional[ServerDesign]
    local_results: Dict[int, LSchedResult] = field(default_factory=dict)
    global_result: Optional[GSchedResult] = None
    #: Human-readable reason when unschedulable at a structural level
    #: (e.g. P-channel overload) rather than a failed inequality.
    reason: str = ""

    def __bool__(self) -> bool:
        return self.schedulable

    @property
    def failing_t(self) -> Optional[int]:
        """First failing witness across the global and local tests."""
        if self.global_result is not None and self.global_result.failing_t is not None:
            return self.global_result.failing_t
        for vm_id in sorted(self.local_results):
            result = self.local_results[vm_id]
            if result.failing_t is not None:
                return result.failing_t
        return None

    def summary(self) -> Dict[str, object]:
        return {
            "schedulable": self.schedulable,
            "reason": self.reason,
            "table_H": self.table.total_slots if self.table else None,
            "table_F": self.table.free_slots if self.table else None,
            "servers": dict(self.design.servers) if self.design else {},
            "vms_tested": sorted(self.local_results),
        }


def analyze_system(
    taskset: TaskSet,
    *,
    policy: str = "min_deadline",
    uniform_period: int = 50,
    stagger: bool = True,
) -> SystemSchedulabilityResult:
    """Analyze a full task set (already split into P/R-channel kinds).

    Steps:

    1. Stagger pre-defined start times (unless ``stagger=False``) and
       build sigma* (:func:`build_pchannel_table`); a packing failure
       means the P-channel itself is overloaded.
    2. Dimension servers per VM over the ``RUNTIME`` tasks
       (:func:`design_servers`), which embeds the Theorem-2 global test.
    3. Re-run Theorem 4 per VM with the chosen server (recorded per VM
       for reporting).
    """
    predefined = taskset.predefined()
    runtime = taskset.runtime()
    if stagger:
        predefined = stagger_offsets(predefined)
    try:
        table = build_pchannel_table(predefined)
    except TableOverflowError as error:
        return SystemSchedulabilityResult(
            schedulable=False,
            table=None,
            design=None,
            reason=f"P-channel table construction failed: {error}",
        )
    vm_tasksets = runtime.by_vm()
    if not vm_tasksets:
        return SystemSchedulabilityResult(
            schedulable=True,
            table=table,
            design=None,
            reason="no R-channel tasks; P-channel table feasible",
        )
    design = design_servers(
        table,
        vm_tasksets,
        policy=policy,
        uniform_period=uniform_period,
    )
    local_results: Dict[int, LSchedResult] = {}
    for vm_id, (pi, theta) in design.servers.items():
        local_results[vm_id] = lsched_schedulable(pi, theta, vm_tasksets[vm_id])
    all_local = bool(design.servers) and all(
        result.schedulable for result in local_results.values()
    ) and not design.failures
    global_ok = design.global_result is not None and design.global_result.schedulable
    schedulable = all_local and global_ok
    reason = ""
    if design.failures:
        reason = "; ".join(design.failures.values())
    elif not global_ok:
        reason = "global Theorem-2 test failed"
    elif not all_local:
        failing = [vm for vm, res in local_results.items() if not res.schedulable]
        reason = f"local Theorem-4 test failed for VMs {failing}"
    return SystemSchedulabilityResult(
        schedulable=schedulable,
        table=table,
        design=design,
        local_results=local_results,
        global_result=design.global_result,
        reason=reason,
    )
