"""Central registry for the analysis memoization layer.

The schedulability kernels (``sbf_server``, ``dbf_taskset``, step-point
enumeration, hyper-period LCMs) are pure functions of small hashable
inputs and get re-evaluated millions of times across an experiment
sweep: the acceptance-ratio experiment alone runs both the Theorem-4 and
the linear test over the *same* task set and server, and every sweep
cell shares (pi, theta) with its neighbours.  Each kernel module wraps
its hot entry points in ``functools.lru_cache`` and registers the cached
callable here, so callers can reason about the cache layer as one unit:

* :func:`clear_caches` -- drop every registered cache (tests use this to
  compare cached against cold-path results, and long-running services
  can bound memory);
* :func:`cache_stats` -- hits/misses/currsize per kernel, for the
  benchmark harness and the runner's timing summary.

Caching never changes results: every cached kernel is deterministic in
its arguments, and the uncached reference implementations stay exported
(``sbf_server_uncached``, ``dbf_taskset_uncached``) for the
property-test layer to cross-check.

Worker processes spawned by :mod:`repro.exp.runner` each hold their own
cache state; since the kernels are pure this only affects speed, never
values.
"""

from __future__ import annotations

from typing import Callable, Dict, List

#: Registered cached callables (anything exposing ``cache_clear`` and
#: ``cache_info`` in the ``functools.lru_cache`` style, or an object
#: implementing the same protocol).
_CACHES: Dict[str, Callable] = {}


def register_cache(name: str, cached_callable: Callable) -> Callable:
    """Register an lru_cache-style callable under ``name``.

    Returns the callable unchanged so modules can use this as a
    decorator-ish one-liner.  Re-registering a name replaces the entry
    (module reloads in interactive sessions).
    """
    if not hasattr(cached_callable, "cache_clear"):
        raise TypeError(
            f"cache {name!r} must expose cache_clear(), got "
            f"{type(cached_callable).__name__}"
        )
    _CACHES[name] = cached_callable
    return cached_callable


def registered_caches() -> List[str]:
    """Names of every registered cache, sorted."""
    return sorted(_CACHES)


def clear_caches() -> None:
    """Drop every registered analysis cache."""
    for cached in _CACHES.values():
        cached.cache_clear()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{hits, misses, currsize, maxsize}`` snapshot."""
    stats: Dict[str, Dict[str, int]] = {}
    for name, cached in sorted(_CACHES.items()):
        info = cached.cache_info()
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
            "maxsize": info.maxsize if info.maxsize is not None else -1,
        }
    return stats
