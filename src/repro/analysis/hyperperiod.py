"""LCM / hyper-period utilities shared by the exact tests."""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Tuple

from repro.analysis.cache import register_cache


@lru_cache(maxsize=1 << 16)
def _lcm_cached(values: Tuple[int, ...]) -> int:
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"hyper-period needs positive values, got {value}")
        result = math.lcm(result, value)
    return result


register_cache("hyperperiod.lcm", _lcm_cached)


def lcm_all(values: Iterable[int]) -> int:
    """LCM of all values (1 for the empty iterable).

    Raises ``ValueError`` for non-positive inputs: periods of zero or
    below have no hyper-period.  Memoized on the value tuple: task sets
    are re-analyzed across sweep cells with identical periods.
    """
    return _lcm_cached(tuple(values))


@lru_cache(maxsize=1 << 16)
def _lcm_capped_cached(values: Tuple[int, ...], cap: int) -> int:
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"hyper-period needs positive values, got {value}")
        result = math.lcm(result, value)
        if result > cap:
            # The running LCM only ever grows, so bail before folding in
            # the remaining values: with adversarial co-prime inputs the
            # full product is astronomically large and computing it would
            # defeat the guard this function exists to provide.  The
            # raise also keeps the failing tuple out of the memo
            # (lru_cache never caches exceptions), so OverflowError is
            # re-raised -- cheaply -- on every invocation.
            raise OverflowError(
                f"hyper-period exceeds cap {cap}; "
                "use the pseudo-polynomial test"
            )
    return result


register_cache("hyperperiod.lcm_capped", _lcm_capped_cached)


def lcm_capped(values: Iterable[int], cap: int) -> int:
    """LCM with an explicit explosion guard.

    Exact tests (Theorems 1 and 3 checked to the LCM) are exponential in
    the input values; callers pass a cap and fall back to the
    pseudo-polynomial tests when it is exceeded.  The cap is enforced
    *inside* the reduction loop: the guard bails out as soon as the
    running LCM crosses it instead of materializing the full LCM first.
    """
    return _lcm_capped_cached(tuple(values), cap)
