"""LCM / hyper-period utilities shared by the exact tests."""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Tuple

from repro.analysis.cache import register_cache


@lru_cache(maxsize=1 << 16)
def _lcm_cached(values: Tuple[int, ...]) -> int:
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"hyper-period needs positive values, got {value}")
        result = math.lcm(result, value)
    return result


register_cache("hyperperiod.lcm", _lcm_cached)


def lcm_all(values: Iterable[int]) -> int:
    """LCM of all values (1 for the empty iterable).

    Raises ``ValueError`` for non-positive inputs: periods of zero or
    below have no hyper-period.  Memoized on the value tuple: task sets
    are re-analyzed across sweep cells with identical periods.
    """
    return _lcm_cached(tuple(values))


def lcm_capped(values: Iterable[int], cap: int) -> int:
    """LCM with an explicit explosion guard.

    Exact tests (Theorems 1 and 3 checked to the LCM) are exponential in
    the input values; callers pass a cap and fall back to the
    pseudo-polynomial tests when it is exceeded.
    """
    values = tuple(values)
    # Pre-screen cheaply through the shared memo; only the cap check is
    # recomputed, so failing calls keep raising on every invocation.
    result = _lcm_cached(values)
    if result > cap:
        raise OverflowError(
            f"hyper-period exceeds cap {cap}; use the pseudo-polynomial test"
        )
    return result
