"""LCM / hyper-period utilities shared by the exact tests."""

from __future__ import annotations

import math
from typing import Iterable


def lcm_all(values: Iterable[int]) -> int:
    """LCM of all values (1 for the empty iterable).

    Raises ``ValueError`` for non-positive inputs: periods of zero or
    below have no hyper-period.
    """
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"hyper-period needs positive values, got {value}")
        result = math.lcm(result, value)
    return result


def lcm_capped(values: Iterable[int], cap: int) -> int:
    """LCM with an explicit explosion guard.

    Exact tests (Theorems 1 and 3 checked to the LCM) are exponential in
    the input values; callers pass a cap and fall back to the
    pseudo-polynomial tests when it is exceeded.
    """
    result = 1
    for value in values:
        if value <= 0:
            raise ValueError(f"hyper-period needs positive values, got {value}")
        result = math.lcm(result, value)
        if result > cap:
            raise OverflowError(
                f"hyper-period exceeds cap {cap}; use the pseudo-polynomial test"
            )
    return result
