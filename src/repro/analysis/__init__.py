"""Schedulability analysis for the two-layer scheduler (Sec. IV).

* :mod:`repro.analysis.supply` -- supply bound functions: ``sbf(sigma,t)``
  over the time slot table (Eqs. 1-2) and ``sbf(Gamma,t)`` of the
  periodic resource model (Eq. 8).
* :mod:`repro.analysis.demand` -- demand bound functions for periodic
  servers (Eq. 3) and sporadic tasks (Eq. 9).
* :mod:`repro.analysis.gsched_test` -- Theorem 1 (exact) and Theorem 2
  (pseudo-polynomial) tests for allocating free slots to VMs.
* :mod:`repro.analysis.lsched_test` -- Theorem 3 (exact) and Theorem 4
  (pseudo-polynomial) tests for the per-VM task sets.
* :mod:`repro.analysis.servers` -- (Pi, Theta) server dimensioning.
* :mod:`repro.analysis.schedulability` -- end-to-end system test
  combining table construction, server design and Theorems 2 + 4.
* :mod:`repro.analysis.hyperperiod` -- LCM utilities.
* :mod:`repro.analysis.cache` -- registry over the memoized kernels
  (``clear_caches``, ``cache_stats``); the cached and uncached paths are
  value-identical by construction and cross-checked by the property
  tests.
* :mod:`repro.analysis.engine` -- selects the step-point sweep
  implementation: the "scalar" reference loop, the "vectorized" numpy +
  QPA engine in :mod:`repro.analysis.vectorized`, or the whole-batch
  "batched" engine in :mod:`repro.analysis.batched` (shared
  hyper-period-tiled grids, lock-step QPA over many requests at once);
  all three are bit-identical, enforced by the property suite.
* :mod:`repro.analysis.result` -- the :class:`SchedulabilityResult`
  protocol every verdict class satisfies.
"""

from repro.analysis.cache import (
    cache_stats,
    clear_caches,
)
from repro.analysis.engine import (
    default_engine,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.analysis.result import SchedulabilityResult
from repro.analysis.supply import (
    sbf_server,
    sbf_server_inverse,
    sbf_server_uncached,
    sbf_sigma,
)
from repro.analysis.demand import (
    dbf_server,
    dbf_sporadic,
    dbf_taskset,
    dbf_taskset_uncached,
)
from repro.analysis.gsched_test import (
    GSchedResult,
    gsched_schedulable,
    gsched_schedulable_exact,
    theorem2_bound,
)
from repro.analysis.lsched_test import (
    LSchedResult,
    lsched_schedulable,
    lsched_schedulable_exact,
    theorem4_bound,
)
from repro.analysis.servers import (
    design_servers,
    minimum_budget,
)
from repro.analysis.schedulability import (
    SystemSchedulabilityResult,
    analyze_system,
)
from repro.analysis.hyperperiod import lcm_all
from repro.analysis.linear_test import lsched_schedulable_linear
from repro.analysis.response_time import (
    ResponseTimeBound,
    response_time_bound,
    response_time_bounds,
)
from repro.analysis.sensitivity import (
    critical_wcet_scale,
    max_preload_fraction,
)

__all__ = [
    "ResponseTimeBound",
    "cache_stats",
    "clear_caches",
    "critical_wcet_scale",
    "max_preload_fraction",
    "response_time_bound",
    "response_time_bounds",
    "GSchedResult",
    "LSchedResult",
    "SchedulabilityResult",
    "SystemSchedulabilityResult",
    "analyze_system",
    "dbf_server",
    "default_engine",
    "resolve_engine",
    "set_default_engine",
    "use_engine",
    "dbf_sporadic",
    "dbf_taskset",
    "dbf_taskset_uncached",
    "design_servers",
    "gsched_schedulable",
    "gsched_schedulable_exact",
    "lcm_all",
    "lsched_schedulable",
    "lsched_schedulable_linear",
    "lsched_schedulable_exact",
    "minimum_budget",
    "sbf_server",
    "sbf_server_inverse",
    "sbf_server_uncached",
    "sbf_sigma",
    "theorem2_bound",
    "theorem4_bound",
]
