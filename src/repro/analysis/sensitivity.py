"""Sensitivity analysis: how much margin does a configuration have?

Three dials a system designer turns, each answered by a monotone binary
search over the Sec. IV tests:

* :func:`critical_wcet_scale` -- the largest uniform WCET inflation the
  R-channel tolerates (robustness against WCET under-estimation),
* :func:`minimum_server_budget` -- re-export of the minimal Theta for a
  given Pi (from :mod:`repro.analysis.servers`),
* :func:`max_preload_fraction` -- the largest I/O-GUARD-x preload for
  which the whole system stays analytically schedulable.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.lsched_test import lsched_schedulable
from repro.analysis.schedulability import analyze_system
from repro.analysis.servers import minimum_budget as minimum_server_budget
from repro.tasks.taskset import TaskSet

__all__ = [
    "critical_wcet_scale",
    "max_preload_fraction",
    "minimum_server_budget",
]


def critical_wcet_scale(
    pi: int,
    theta: int,
    tasks: TaskSet,
    *,
    precision: float = 0.01,
    upper: float = 8.0,
) -> float:
    """Largest factor ``s`` with ``tasks.scaled_wcet(s)`` schedulable.

    Schedulability is monotone non-increasing in the scale (WCETs only
    grow), so bisection applies.  Returns 0.0 when even the unscaled set
    fails; ``upper`` caps the search for sets with enormous headroom.
    """
    if precision <= 0:
        raise ValueError(f"precision must be positive, got {precision}")
    if not lsched_schedulable(pi, theta, tasks).schedulable:
        return 0.0
    low, high = 1.0, upper
    if lsched_schedulable(pi, theta, tasks.scaled_wcet(high)).schedulable:
        return high
    while high - low > precision:
        mid = (low + high) / 2
        if lsched_schedulable(pi, theta, tasks.scaled_wcet(mid)).schedulable:
            low = mid
        else:
            high = mid
    return low


def max_preload_fraction(
    taskset: TaskSet,
    *,
    step: float = 0.05,
    policy: str = "min_deadline",
) -> Optional[float]:
    """Largest preload fraction keeping the whole system schedulable.

    Walks the fraction grid downward from 1.0; the P-channel table
    either packs or it does not, and the R-channel load shrinks with
    the fraction, but the free-slot *pattern* changes non-monotonically,
    so an explicit scan (not bisection) is used.  Returns None when no
    fraction on the grid is feasible.
    """
    if not 0 < step <= 1:
        raise ValueError(f"step must lie in (0, 1], got {step}")
    fraction = 1.0
    best: Optional[float] = None
    while fraction >= -1e-9:
        split = taskset.split_predefined(max(0.0, fraction))
        if analyze_system(split, policy=policy).schedulable:
            best = round(max(0.0, fraction), 10)
            break
        fraction -= step
    return best
