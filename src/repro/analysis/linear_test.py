"""Linear-supply sufficient test: the cheap cousin of Theorem 4.

The Theorem-4 proof (Eq. 12) lower-bounds the periodic-resource supply
by the line ``t * Theta/Pi - (2*Pi - Theta - 1)``.  Using that line
*directly* as the supply yields a sufficient schedulability test that
needs no sbf evaluation -- strictly more pessimistic than Theorem 4, but
O(step points) with trivial constants.  Useful for fast admission
pre-filtering and as a precision baseline in the acceptance-ratio
experiment.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.demand import (
    dbf_signature_demand,
    dbf_step_points,
    demand_signature,
)
from repro.analysis.lsched_test import LSchedResult, theorem4_bound
from repro.analysis.supply import linear_supply_lower_bound
from repro.tasks.taskset import TaskSet


def lsched_schedulable_linear(
    pi: int,
    theta: int,
    tasks: TaskSet,
) -> LSchedResult:
    """Sufficient test: demand against the linear supply lower bound.

    Accepting here implies Theorem 4 accepts (the line never exceeds the
    true sbf); rejection says nothing.  The same Theorem-4 horizon
    applies because the proof's inequality chain is built on this very
    line.
    """
    if pi < 1 or not 0 < theta <= pi:
        raise ValueError(
            f"invalid server (pi={pi}, theta={theta})"
        )
    names = [task.name for task in tasks]
    slack = Fraction(theta, pi) - sum(
        (Fraction(task.wcet, task.period) for task in tasks), Fraction(0)
    )
    if len(tasks) == 0:
        return LSchedResult(
            schedulable=True, horizon=0, slack=float(slack),
            method="linear", server=(pi, theta),
        )
    if slack <= 0:
        return LSchedResult(
            schedulable=False, horizon=0, slack=float(slack),
            failing_t=0, method="linear", server=(pi, theta),
            task_names=names,
        )
    horizon = theorem4_bound(pi, theta, tasks)
    signature = demand_signature(tasks)
    for t in dbf_step_points(tasks, horizon):
        demand = dbf_signature_demand(signature, t)
        supply = linear_supply_lower_bound(pi, theta, t)
        if demand > supply:
            return LSchedResult(
                schedulable=False,
                horizon=horizon,
                slack=float(slack),
                failing_t=t,
                failing_demand=demand,
                failing_supply=int(max(0.0, supply)),
                method="linear",
                server=(pi, theta),
                task_names=names,
            )
    return LSchedResult(
        schedulable=True,
        horizon=horizon,
        slack=float(slack),
        method="linear",
        server=(pi, theta),
        task_names=names,
    )
