"""Linear-supply sufficient test: the cheap cousin of Theorem 4.

The Theorem-4 proof (Eq. 12) lower-bounds the periodic-resource supply
by the line ``t * Theta/Pi - (2*Pi - Theta - 1)``.  Using that line
*directly* as the supply yields a sufficient schedulability test that
needs no sbf evaluation -- strictly more pessimistic than Theorem 4, but
O(step points) with trivial constants.  Useful for fast admission
pre-filtering and as a precision baseline in the acceptance-ratio
experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.demand import (
    dbf_signature_demand,
    dbf_step_points,
    demand_signature,
)
from repro.analysis.engine import VECTORIZE_MIN_POINTS, resolve_engine
from repro.analysis.lsched_test import (
    LSchedResult,
    _exact_slack,
    _step_point_estimate,
    _theorem4_bound_from_slack,
    theorem4_bound,
)
from repro.analysis.supply import linear_supply_lower_bound
from repro.tasks.taskset import TaskSet

__all__ = ["lsched_schedulable_linear", "theorem4_bound"]


def lsched_schedulable_linear(
    pi: int,
    theta: int,
    tasks: TaskSet,
    engine: Optional[str] = None,
) -> LSchedResult:
    """Sufficient test: demand against the linear supply lower bound.

    Accepting here implies Theorem 4 accepts (the line never exceeds the
    true sbf); rejection says nothing.  The same Theorem-4 horizon
    applies because the proof's inequality chain is built on this very
    line.
    """
    if pi < 1 or not 0 < theta <= pi:
        raise ValueError(
            f"invalid server (pi={pi}, theta={theta})"
        )
    names = [task.name for task in tasks]
    slack = _exact_slack(pi, theta, tasks)
    if len(tasks) == 0:
        return LSchedResult(
            schedulable=True, horizon=0, slack=float(slack),
            method="linear", server=(pi, theta),
        )
    if slack <= 0:
        return LSchedResult(
            schedulable=False, horizon=0, slack=float(slack),
            failing_t=0, method="linear", server=(pi, theta),
            task_names=names,
        )
    horizon = _theorem4_bound_from_slack(pi, theta, tasks, slack)
    if (
        resolve_engine(engine) != "scalar"
        and _step_point_estimate(tasks, horizon) >= VECTORIZE_MIN_POINTS
    ):
        return _linear_window_vectorized(pi, theta, tasks, horizon, float(slack))
    signature = demand_signature(tasks)
    for t in dbf_step_points(tasks, horizon):
        demand = dbf_signature_demand(signature, t)
        supply = linear_supply_lower_bound(pi, theta, t)
        if demand > supply:
            return LSchedResult(
                schedulable=False,
                horizon=horizon,
                slack=float(slack),
                failing_t=t,
                failing_demand=demand,
                failing_supply=int(max(0.0, supply)),
                method="linear",
                server=(pi, theta),
                task_names=names,
            )
    return LSchedResult(
        schedulable=True,
        horizon=horizon,
        slack=float(slack),
        method="linear",
        server=(pi, theta),
        task_names=names,
    )


def _linear_inverse(pi: int, theta: int, demand: int) -> int:
    """Smallest ``t`` with ``linear_supply_lower_bound(pi, theta, t) >= demand``.

    Computed in exact rational arithmetic, then bumped forward while the
    *float* evaluation (the comparison the scalar loop actually performs)
    still falls short -- the bump keeps the QPA skip range sound under
    IEEE rounding, so both engines agree bit-for-bit.
    """
    if demand <= 0:
        return 0
    blackout = 2 * pi - theta - 1
    t = -(-(demand + blackout) * pi // theta)
    while linear_supply_lower_bound(pi, theta, t) < demand:
        t += 1
    return t


def _linear_window_vectorized(
    pi: int,
    theta: int,
    tasks: TaskSet,
    horizon: int,
    slack: float,
) -> LSchedResult:
    """QPA descent + numpy scan against the linear supply lower bound."""
    from repro.analysis import vectorized as vec

    names = [task.name for task in tasks]
    signature = demand_signature(tasks)
    failure = vec.taskset_failure(
        signature,
        horizon,
        supply_of=lambda t: linear_supply_lower_bound(pi, theta, t),
        inverse_of=lambda d: _linear_inverse(pi, theta, d),
        supply_at=lambda ts: vec.linear_supply_at(pi, theta, ts),
    )
    if failure is None:
        return LSchedResult(
            schedulable=True,
            horizon=horizon,
            slack=slack,
            method="linear",
            server=(pi, theta),
            task_names=names,
        )
    t, demand, supply = failure
    return LSchedResult(
        schedulable=False,
        horizon=horizon,
        slack=slack,
        failing_t=t,
        failing_demand=demand,
        failing_supply=int(max(0.0, supply)),
        method="linear",
        server=(pi, theta),
        task_names=names,
    )
