"""Brute-force EDF execution over explicit supply patterns.

The theorem tests reason through sbf/dbf abstractions; this module
*executes* preemptive EDF slot by slot over a concrete supply pattern,
providing an independent oracle the property tests compare against:

* a system the Theorems admit must survive EDF execution over the
  adversarial (worst-case) supply pattern with synchronous releases;
* the worst-case supply pattern of a periodic server (early-then-late
  delivery) realises exactly the closed-form ``sbf(Gamma, t)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Callable, List, Optional, Sequence

from repro.tasks.taskset import TaskSet

#: A supply pattern answers "does slot t deliver service?".
SupplyPattern = Callable[[int], bool]


def server_worst_pattern(pi: int, theta: int) -> SupplyPattern:
    """The periodic resource model's adversarial delivery.

    Budget arrives at the *start* of period 0 and at the *end* of every
    later period, creating the maximal ``2*(pi - theta)`` blackout right
    after the initial burst -- the pattern behind Eq. (8).
    """
    if pi < 1 or not 0 < theta <= pi:
        raise ValueError(f"invalid server (pi={pi}, theta={theta})")

    def pattern(slot: int) -> bool:
        if slot < 0:
            return False
        if slot < pi:
            return slot < theta  # early burst
        return slot % pi >= pi - theta  # late ever after

    return pattern


@dataclass
class EdfOutcome:
    """Result of one brute-force EDF execution."""

    missed: List[str]
    completed: int
    horizon: int

    @property
    def all_met(self) -> bool:
        return not self.missed


def simulate_edf(
    tasks: TaskSet,
    supply: SupplyPattern,
    horizon: Optional[int] = None,
    offsets: Optional[Sequence[int]] = None,
) -> EdfOutcome:
    """Slot-stepped preemptive EDF of ``tasks`` over ``supply``.

    Releases are synchronous at the given offsets (default all zero --
    the critical instant) and strictly periodic.  Returns which jobs
    missed.  The default horizon covers one task hyper-period plus the
    largest deadline, which decides feasibility for periodic synchronous
    sets over periodic supply.
    """
    task_list = list(tasks)
    if offsets is None:
        offsets = [0] * len(task_list)
    if len(offsets) != len(task_list):
        raise ValueError(
            f"{len(offsets)} offsets for {len(task_list)} tasks"
        )
    if horizon is None:
        hyper = reduce(math.lcm, (task.period for task in task_list), 1)
        horizon = hyper + max((task.deadline for task in task_list), default=0)
    # (release, deadline, remaining, name) active jobs.
    pending: List[List] = []
    missed: List[str] = []
    completed = 0
    for slot in range(horizon):
        for offset, task in zip(offsets, task_list):
            if slot >= offset and (slot - offset) % task.period == 0:
                index = (slot - offset) // task.period
                pending.append(
                    [slot + task.deadline, task.wcet, f"{task.name}#{index}"]
                )
        # Deadline checks happen at slot boundaries *before* service:
        # a job due at t must have finished by the end of slot t-1.
        still = []
        for job in pending:
            if job[0] <= slot and job[1] > 0:
                missed.append(job[2])
            else:
                still.append(job)
        pending = still
        if supply(slot) and pending:
            pending.sort(key=lambda job: job[0])
            pending[0][1] -= 1
            if pending[0][1] == 0:
                completed += 1
                pending.pop(0)
    for job in pending:
        if job[0] <= horizon and job[1] > 0:
            missed.append(job[2])
    return EdfOutcome(missed=missed, completed=completed, horizon=horizon)


def simulate_edf_under_server(
    pi: int,
    theta: int,
    tasks: TaskSet,
    horizon: Optional[int] = None,
) -> EdfOutcome:
    """EDF over the server's adversarial supply, synchronous releases.

    The critical-instant configuration: all tasks release together
    exactly when the double blackout begins (right after the early
    burst), which the analysis's ``sbf``/``dbf`` pairing covers.
    """
    pattern = server_worst_pattern(pi, theta)
    # Shift releases to the start of the blackout (slot theta).
    shifted: SupplyPattern = lambda slot: pattern(slot + theta)
    if horizon is None:
        hyper = reduce(math.lcm, [pi] + [task.period for task in tasks], 1)
        horizon = hyper + max((task.deadline for task in tasks), default=0) + pi
    return simulate_edf(tasks, shifted, horizon=horizon)
