"""The common shape of every schedulability verdict.

Four result classes answer "is this schedulable?" at different layers:
:class:`~repro.analysis.gsched_test.GSchedResult` (global, Theorems
1-2), :class:`~repro.analysis.lsched_test.LSchedResult` (local,
Theorems 3-4), :class:`~repro.core.admission.AdmissionDecision` (online
admission) and
:class:`~repro.analysis.schedulability.SystemSchedulabilityResult`
(whole-system).  They all satisfy the :class:`SchedulabilityResult`
protocol below, so callers can branch on the verdict, render it, and
locate the witness without caring which layer produced it::

    result = analyze(system)          # or gsched/lsched/admit(...)
    if not result:                    # __bool__ is the verdict
        print(result.summary())       # one-line / dict rendering
        print(result.failing_t)       # the witness t, when one exists
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable


@runtime_checkable
class SchedulabilityResult(Protocol):
    """Structural protocol shared by every schedulability verdict.

    ``schedulable``
        The boolean verdict; ``__bool__`` mirrors it so results can be
        used directly in conditions.
    ``failing_t``
        The first instant at which demand exceeds supply (the witness of
        unschedulability), or ``None`` when schedulable or when the
        failure is structural (e.g. an unknown VM).
    ``summary()``
        A compact rendering for logs and reports.  Most results return a
        one-line string; the whole-system report returns a dict (its
        pre-existing contract).
    """

    schedulable: bool

    @property
    def failing_t(self) -> Optional[int]: ...  # noqa: E704 - protocol stub

    def __bool__(self) -> bool: ...  # noqa: E704 - protocol stub

    def summary(self) -> object: ...  # noqa: E704 - protocol stub


class ReportBase:
    """Shared verdict plumbing for the api-level report classes.

    ``AnalysisReport``, ``ChainAnalysisReport`` and ``SynthesisReport``
    all expose the :class:`SchedulabilityResult` protocol over nested
    per-layer results; this mixin centralizes the ``__bool__`` and
    ``failing_t`` plumbing they used to duplicate.  Deliberately *not* a
    dataclass and field-free, so mixing it into the existing dataclasses
    changes neither their generated ``__init__``/``__repr__``/``__eq__``
    nor their field order -- reprs stay byte-identical.

    Subclasses provide ``schedulable`` (field or property) and override
    :meth:`_witness_results` to yield their nested results in witness
    precedence order; ``failing_t`` returns the first non-``None``
    witness among them.  ``summary()`` stays subclass-specific (each
    report renders differently); the base raises ``NotImplementedError``
    to keep the protocol honest.
    """

    def __bool__(self) -> bool:
        return self.schedulable  # type: ignore[attr-defined, no-any-return]

    @property
    def failing_t(self) -> Optional[int]:
        """First failing witness across the nested per-layer results."""
        for result in self._witness_results():
            if result is None:
                continue
            witness = result.failing_t
            if witness is not None:
                return witness
        return None

    def _witness_results(self) -> Iterable[Optional["SchedulabilityResult"]]:
        return ()

    def summary(self) -> object:
        raise NotImplementedError(
            f"{type(self).__name__} must implement summary()"
        )


def witness_text(
    failing_t: Optional[int],
    failing_demand: Optional[int],
    failing_supply: Optional[int],
) -> str:
    """Uniform ``demand > supply`` witness rendering for summaries."""
    if failing_t is None:
        return ""
    detail = f" at t={failing_t}"
    if failing_demand is not None and failing_supply is not None:
        detail += f" (demand {failing_demand} > supply {failing_supply})"
    return detail
