"""The common shape of every schedulability verdict.

Four result classes answer "is this schedulable?" at different layers:
:class:`~repro.analysis.gsched_test.GSchedResult` (global, Theorems
1-2), :class:`~repro.analysis.lsched_test.LSchedResult` (local,
Theorems 3-4), :class:`~repro.core.admission.AdmissionDecision` (online
admission) and
:class:`~repro.analysis.schedulability.SystemSchedulabilityResult`
(whole-system).  They all satisfy the :class:`SchedulabilityResult`
protocol below, so callers can branch on the verdict, render it, and
locate the witness without caring which layer produced it::

    result = analyze(system)          # or gsched/lsched/admit(...)
    if not result:                    # __bool__ is the verdict
        print(result.summary())       # one-line / dict rendering
        print(result.failing_t)       # the witness t, when one exists
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable


@runtime_checkable
class SchedulabilityResult(Protocol):
    """Structural protocol shared by every schedulability verdict.

    ``schedulable``
        The boolean verdict; ``__bool__`` mirrors it so results can be
        used directly in conditions.
    ``failing_t``
        The first instant at which demand exceeds supply (the witness of
        unschedulability), or ``None`` when schedulable or when the
        failure is structural (e.g. an unknown VM).
    ``summary()``
        A compact rendering for logs and reports.  Most results return a
        one-line string; the whole-system report returns a dict (its
        pre-existing contract).
    """

    schedulable: bool

    @property
    def failing_t(self) -> Optional[int]: ...  # noqa: E704 - protocol stub

    def __bool__(self) -> bool: ...  # noqa: E704 - protocol stub

    def summary(self) -> object: ...  # noqa: E704 - protocol stub


def witness_text(
    failing_t: Optional[int],
    failing_demand: Optional[int],
    failing_supply: Optional[int],
) -> str:
    """Uniform ``demand > supply`` witness rendering for summaries."""
    if failing_t is None:
        return ""
    detail = f" at t={failing_t}"
    if failing_demand is not None and failing_supply is not None:
        detail += f" (demand {failing_demand} > supply {failing_supply})"
    return detail
