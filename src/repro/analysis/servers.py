"""Server dimensioning: choosing ``Gamma_i = (Pi_i, Theta_i)`` per VM.

The paper assumes the servers are given; a usable system needs a way to
pick them.  This module implements the standard periodic-resource-model
recipe: choose each ``Pi_i`` from the VM's timing granularity, then find
the minimum ``Theta_i`` passing the L-Sched test (Theorem 4), and finally
validate the chosen server set globally with Theorem 2.  Three period
policies are provided for the ablation study called out in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.gsched_test import GSchedResult, gsched_schedulable
from repro.analysis.lsched_test import lsched_schedulable
from repro.core.timeslot import TimeSlotTable
from repro.tasks.taskset import TaskSet

#: Supported period policies for :func:`design_servers`.
PERIOD_POLICIES = ("min_deadline", "harmonic", "uniform")


@dataclass
class ServerDesign:
    """Result of dimensioning servers for a set of VMs."""

    #: vm_id -> (pi, theta)
    servers: Dict[int, Tuple[int, int]]
    #: Whether every per-VM (Theorem 4) test passed.
    local_ok: bool
    #: The global (Theorem 2) validation result.
    global_result: Optional[GSchedResult]
    #: vm_id -> reason string, for VMs whose dimensioning failed.
    failures: Dict[int, str]

    @property
    def feasible(self) -> bool:
        return (
            self.local_ok
            and self.global_result is not None
            and self.global_result.schedulable
        )

    def as_pairs(self) -> List[Tuple[int, int]]:
        return [self.servers[vm] for vm in sorted(self.servers)]


def minimum_budget(
    pi: int,
    tasks: TaskSet,
    *,
    theta_cap: Optional[int] = None,
) -> Optional[int]:
    """Smallest ``theta`` such that (pi, theta) passes Theorem 4.

    Binary-searches theta in ``[ceil(U * pi), cap]`` -- schedulability is
    monotone in theta because sbf(Gamma, t) is non-decreasing in theta
    for fixed pi.  Returns None when even ``theta = cap`` fails.
    """
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    cap = theta_cap if theta_cap is not None else pi
    cap = min(cap, pi)
    if len(tasks) == 0:
        return 1
    low = max(1, int(math.ceil(tasks.utilization * pi)))
    if low > cap:
        return None
    if not lsched_schedulable(pi, cap, tasks).schedulable:
        return None
    high = cap
    while low < high:
        mid = (low + high) // 2
        if lsched_schedulable(pi, mid, tasks).schedulable:
            high = mid
        else:
            low = mid + 1
    return low


@dataclass
class BudgetSearchStats:
    """Accounting for one batched minimum-budget search.

    ``oracle_calls`` counts Theorem-4 lanes submitted to the batch
    oracle (the quantity the ``synth-bench`` gate bounds), ``pruned``
    the candidate lanes eliminated by the utilization lower bound
    before any oracle call, and ``rounds`` the lock-step binary-search
    iterations (each round is one :func:`lsched_schedulable_batch`
    numpy pass over every still-undecided lane).
    """

    oracle_calls: int = 0
    pruned: int = 0
    rounds: int = 0

    def merge(self, other: "BudgetSearchStats") -> None:
        self.oracle_calls += other.oracle_calls
        self.pruned += other.pruned
        self.rounds += other.rounds


def utilization_budget_floor(pi: int, tasks: TaskSet) -> int:
    """The utilization lower bound on ``theta`` for period ``pi``.

    No budget below ``ceil(U * pi)`` can pass Theorem 4 (the server
    would deliver less bandwidth than the tasks demand), so this is a
    sound per-node bound for pruning candidate periods: if even the
    floor's bandwidth ``floor/pi`` is no better than an incumbent
    design, the period cannot improve on it.  Matches the search floor
    of :func:`minimum_budget` exactly (same float-ceiling evaluation).
    """
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    if len(tasks) == 0:
        return 1
    return max(1, int(math.ceil(tasks.utilization * pi)))


def minimum_budgets_batched(
    candidates: Sequence[Tuple[int, TaskSet]],
    *,
    theta_cap: Optional[int] = None,
    theta_caps: Optional[Sequence[Optional[int]]] = None,
    cap_feasible: Optional[Sequence[bool]] = None,
    bandwidth_bounds: Optional[Sequence[Optional[float]]] = None,
    engine: Optional[str] = None,
    stats: Optional[BudgetSearchStats] = None,
) -> List[Optional[int]]:
    """:func:`minimum_budget` over many ``(pi, tasks)`` lanes at once.

    Runs the per-lane binary searches in *lock step*: every round packs
    the still-undecided lanes' probes into one
    :func:`~repro.analysis.batched.lsched_schedulable_batch` call, so a
    whole candidate frontier costs ``O(log max_pi)`` numpy passes
    instead of one engine dispatch per probe.  Lane ``i`` returns
    exactly ``minimum_budget(*candidates[i], theta_cap=theta_cap)``
    (``None`` when infeasible) -- the probes, floors and caps are
    identical, only their submission is batched.

    ``bandwidth_bounds`` enables the synthesis search's incumbent-bound
    early exit: a lane whose utilization floor
    (:func:`utilization_budget_floor`) already implies bandwidth
    ``>= bandwidth_bounds[i]`` can never improve on the incumbent and is
    pruned to ``None`` without touching the oracle.  Pass ``None`` (or
    per-lane ``None``) to disable pruning; pruned lanes are the only
    permitted divergence from the per-lane reference.

    ``theta_caps`` overrides ``theta_cap`` per lane (still clamped to
    ``pi``), and ``cap_feasible[i] = True`` asserts that lane ``i``'s
    cap is already known to pass Theorem 4, skipping its round-0 cap
    probe -- the synthesis fast path uses both to hand over a window
    whose upper end it has proved sufficient in closed form.  Soundness
    note: asserting feasibility of an infeasible cap would return the
    cap itself instead of ``None``; only pass caps verified against the
    same oracle.
    """
    from repro.analysis.batched import lsched_schedulable_batch

    count = len(candidates)
    results: List[Optional[int]] = [None] * count
    # Per-lane closed interval [low, high] still to be searched; None
    # marks a decided lane.
    windows: List[Optional[Tuple[int, int]]] = [None] * count
    seed_probes: List[Tuple[int, int, TaskSet]] = []
    seed_lanes: List[int] = []
    for index, (pi, tasks) in enumerate(candidates):
        if pi < 1:
            raise ValueError(f"server period must be >= 1, got {pi}")
        cap: Optional[int] = theta_cap
        if theta_caps is not None and theta_caps[index] is not None:
            cap = theta_caps[index]
        cap = min(cap if cap is not None else pi, pi)
        if len(tasks) == 0:
            results[index] = 1
            continue
        low = utilization_budget_floor(pi, tasks)
        if low > cap:
            continue
        bound = bandwidth_bounds[index] if bandwidth_bounds is not None else None
        if bound is not None and low / pi >= bound:
            if stats is not None:
                stats.pruned += 1
            continue
        windows[index] = (low, cap)
        if cap_feasible is not None and cap_feasible[index]:
            continue
        seed_probes.append((pi, cap, tasks))
        seed_lanes.append(index)
    # Round 0: the cap-feasibility probe every per-lane search starts
    # with; lanes failing at the cap are infeasible for this period.
    if seed_probes:
        if stats is not None:
            stats.oracle_calls += len(seed_probes)
            stats.rounds += 1
        for lane, verdict in zip(
            seed_lanes, lsched_schedulable_batch(seed_probes, engine=engine)
        ):
            if not verdict.schedulable:
                windows[lane] = None
    # Lock-step binary search over every still-open window.
    while True:
        probes: List[Tuple[int, int, TaskSet]] = []
        lanes: List[int] = []
        for index, window in enumerate(windows):
            if window is None:
                continue
            low, high = window
            if low >= high:
                results[index] = low
                windows[index] = None
                continue
            mid = (low + high) // 2
            probes.append((candidates[index][0], mid, candidates[index][1]))
            lanes.append(index)
        if not probes:
            break
        if stats is not None:
            stats.oracle_calls += len(probes)
            stats.rounds += 1
        for lane, probe, verdict in zip(
            lanes, probes, lsched_schedulable_batch(probes, engine=engine)
        ):
            low, high = windows[lane]  # type: ignore[misc]
            mid = probe[1]
            windows[lane] = (low, mid) if verdict.schedulable else (mid + 1, high)
    return results


def choose_period(
    vm_tasks: TaskSet,
    policy: str,
    *,
    uniform_period: int = 50,
    divisor: int = 2,
) -> int:
    """Pick a server period for one VM under the given policy.

    * ``min_deadline`` -- ``max(1, min_k D_k // divisor)``: the classic
      rule keeping server latency below the tightest deadline.
    * ``harmonic`` -- largest power of two not exceeding the
      min-deadline choice (keeps hyper-periods small).
    * ``uniform`` -- a fixed period for every VM.
    """
    if policy not in PERIOD_POLICIES:
        raise ValueError(
            f"unknown period policy {policy!r}; expected one of {PERIOD_POLICIES}"
        )
    if policy == "uniform" or len(vm_tasks) == 0:
        return max(1, uniform_period)
    tightest = min(task.deadline for task in vm_tasks)
    base = max(1, tightest // divisor)
    if policy == "min_deadline":
        return base
    # harmonic
    return 1 << max(0, base.bit_length() - 1)


def design_servers(
    table: TimeSlotTable,
    vm_tasksets: Dict[int, TaskSet],
    *,
    policy: str = "min_deadline",
    uniform_period: int = 50,
    global_validation: bool = True,
) -> ServerDesign:
    """Dimension one server per VM and validate the set globally.

    For each VM the period comes from :func:`choose_period` and the
    budget from :func:`minimum_budget`.  VMs whose budget search fails
    are recorded in ``failures`` with a human-readable reason; the global
    Theorem-2 validation then runs over the successfully dimensioned
    servers (an infeasible VM already makes the design infeasible).
    """
    servers: Dict[int, Tuple[int, int]] = {}
    failures: Dict[int, str] = {}
    for vm_id in sorted(vm_tasksets):
        tasks = vm_tasksets[vm_id]
        pi = choose_period(tasks, policy, uniform_period=uniform_period)
        theta = minimum_budget(pi, tasks)
        if theta is None:
            failures[vm_id] = (
                f"no budget theta <= pi={pi} satisfies Theorem 4 for "
                f"VM {vm_id} (utilization {tasks.utilization:.3f})"
            )
            continue
        servers[vm_id] = (pi, theta)
    local_ok = not failures
    global_result: Optional[GSchedResult] = None
    if global_validation and servers:
        pairs = [servers[vm] for vm in sorted(servers)]
        try:
            global_result = gsched_schedulable(table, pairs)
        except ValueError as error:
            failures[-1] = f"global validation rejected the design: {error}"
            local_ok = False
    return ServerDesign(
        servers=servers,
        local_ok=local_ok,
        global_result=global_result,
        failures=failures,
    )


def bandwidth_of(servers: Sequence[Tuple[int, int]]) -> float:
    """``sum Theta/Pi`` of a server collection."""
    return sum(theta / pi for pi, theta in servers)
