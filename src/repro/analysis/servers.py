"""Server dimensioning: choosing ``Gamma_i = (Pi_i, Theta_i)`` per VM.

The paper assumes the servers are given; a usable system needs a way to
pick them.  This module implements the standard periodic-resource-model
recipe: choose each ``Pi_i`` from the VM's timing granularity, then find
the minimum ``Theta_i`` passing the L-Sched test (Theorem 4), and finally
validate the chosen server set globally with Theorem 2.  Three period
policies are provided for the ablation study called out in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.gsched_test import GSchedResult, gsched_schedulable
from repro.analysis.lsched_test import lsched_schedulable
from repro.core.timeslot import TimeSlotTable
from repro.tasks.taskset import TaskSet

#: Supported period policies for :func:`design_servers`.
PERIOD_POLICIES = ("min_deadline", "harmonic", "uniform")


@dataclass
class ServerDesign:
    """Result of dimensioning servers for a set of VMs."""

    #: vm_id -> (pi, theta)
    servers: Dict[int, Tuple[int, int]]
    #: Whether every per-VM (Theorem 4) test passed.
    local_ok: bool
    #: The global (Theorem 2) validation result.
    global_result: Optional[GSchedResult]
    #: vm_id -> reason string, for VMs whose dimensioning failed.
    failures: Dict[int, str]

    @property
    def feasible(self) -> bool:
        return (
            self.local_ok
            and self.global_result is not None
            and self.global_result.schedulable
        )

    def as_pairs(self) -> List[Tuple[int, int]]:
        return [self.servers[vm] for vm in sorted(self.servers)]


def minimum_budget(
    pi: int,
    tasks: TaskSet,
    *,
    theta_cap: Optional[int] = None,
) -> Optional[int]:
    """Smallest ``theta`` such that (pi, theta) passes Theorem 4.

    Binary-searches theta in ``[ceil(U * pi), cap]`` -- schedulability is
    monotone in theta because sbf(Gamma, t) is non-decreasing in theta
    for fixed pi.  Returns None when even ``theta = cap`` fails.
    """
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    cap = theta_cap if theta_cap is not None else pi
    cap = min(cap, pi)
    if len(tasks) == 0:
        return 1
    low = max(1, int(math.ceil(tasks.utilization * pi)))
    if low > cap:
        return None
    if not lsched_schedulable(pi, cap, tasks).schedulable:
        return None
    high = cap
    while low < high:
        mid = (low + high) // 2
        if lsched_schedulable(pi, mid, tasks).schedulable:
            high = mid
        else:
            low = mid + 1
    return low


def choose_period(
    vm_tasks: TaskSet,
    policy: str,
    *,
    uniform_period: int = 50,
    divisor: int = 2,
) -> int:
    """Pick a server period for one VM under the given policy.

    * ``min_deadline`` -- ``max(1, min_k D_k // divisor)``: the classic
      rule keeping server latency below the tightest deadline.
    * ``harmonic`` -- largest power of two not exceeding the
      min-deadline choice (keeps hyper-periods small).
    * ``uniform`` -- a fixed period for every VM.
    """
    if policy not in PERIOD_POLICIES:
        raise ValueError(
            f"unknown period policy {policy!r}; expected one of {PERIOD_POLICIES}"
        )
    if policy == "uniform" or len(vm_tasks) == 0:
        return max(1, uniform_period)
    tightest = min(task.deadline for task in vm_tasks)
    base = max(1, tightest // divisor)
    if policy == "min_deadline":
        return base
    # harmonic
    return 1 << max(0, base.bit_length() - 1)


def design_servers(
    table: TimeSlotTable,
    vm_tasksets: Dict[int, TaskSet],
    *,
    policy: str = "min_deadline",
    uniform_period: int = 50,
    global_validation: bool = True,
) -> ServerDesign:
    """Dimension one server per VM and validate the set globally.

    For each VM the period comes from :func:`choose_period` and the
    budget from :func:`minimum_budget`.  VMs whose budget search fails
    are recorded in ``failures`` with a human-readable reason; the global
    Theorem-2 validation then runs over the successfully dimensioned
    servers (an infeasible VM already makes the design infeasible).
    """
    servers: Dict[int, Tuple[int, int]] = {}
    failures: Dict[int, str] = {}
    for vm_id in sorted(vm_tasksets):
        tasks = vm_tasksets[vm_id]
        pi = choose_period(tasks, policy, uniform_period=uniform_period)
        theta = minimum_budget(pi, tasks)
        if theta is None:
            failures[vm_id] = (
                f"no budget theta <= pi={pi} satisfies Theorem 4 for "
                f"VM {vm_id} (utilization {tasks.utilization:.3f})"
            )
            continue
        servers[vm_id] = (pi, theta)
    local_ok = not failures
    global_result: Optional[GSchedResult] = None
    if global_validation and servers:
        pairs = [servers[vm] for vm in sorted(servers)]
        try:
            global_result = gsched_schedulable(table, pairs)
        except ValueError as error:
            failures[-1] = f"global validation rejected the design: {error}"
            local_ok = False
    return ServerDesign(
        servers=servers,
        local_ok=local_ok,
        global_result=global_result,
        failures=failures,
    )


def bandwidth_of(servers: Sequence[Tuple[int, int]]) -> float:
    """``sum Theta/Pi`` of a server collection."""
    return sum(theta / pi for pi, theta in servers)
