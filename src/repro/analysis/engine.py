"""Analysis engine selection: scalar reference vs vectorized kernels.

The schedulability tests ship three decision engines:

* ``"scalar"`` -- the original per-``t`` Python loops over the memoized
  kernels.  This is the ground-truth reference implementation.
* ``"vectorized"`` -- :mod:`repro.analysis.vectorized`: numpy evaluation
  of the dbf/sbf curves over *all* step points at once, fronted by a
  QPA-style descent that usually decides schedulability after a handful
  of probes instead of enumerating the full Theorem-2/4 horizon.
* ``"batched"`` -- :mod:`repro.analysis.batched`: many (taskset, server)
  pairs packed into padded 2-D int64 arrays and decided per numpy pass.
  On a *single* pair the batched engine is the vectorized engine (a
  batch of one); the throughput win comes from the batch entry points
  (``lsched_schedulable_batch``/``gsched_schedulable_batch`` and
  ``repro.api.analyze_many``), which sweep columns of systems at once.

All engines are decision-bit-identical by construction (they share the
same preambles, horizons and step-point grids, and the property suite
cross-checks every result field), so the choice only affects wall-clock
time.  The default resolves with the precedence *explicit argument* >
:func:`set_default_engine` > ``REPRO_ANALYSIS_ENGINE`` environment
variable > ``"vectorized"``.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from contextlib import contextmanager

#: Supported engines, in reference-first order.
ENGINES = ("scalar", "vectorized", "batched")

#: Windows with fewer step points than this run the plain Python loop
#: even under the vectorized/batched engines: numpy's per-call overhead
#: only amortizes on larger grids, and all paths are bit-identical
#: anyway.  Single source of truth -- the theorem-test modules re-export
#: it, so the cutoff cannot drift between G-Sched and L-Sched.
VECTORIZE_MIN_POINTS = 96

#: Largest horizon/step-point magnitude the numpy int64 kernels accept.
#: Theorem-4 horizons are exact integers and can be astronomically large
#: when the slack is a hair above zero; int64 arithmetic on such values
#: wraps silently (a negative demand reads as schedulable) or crashes
#: with an opaque conversion error at array-fill time.  The kernels in
#: :mod:`repro.analysis.vectorized` / :mod:`repro.analysis.batched`
#: check their bounds against this cap and raise ``OverflowError``
#: instead.  ``2**60`` leaves 8x headroom below ``2**63`` for the
#: ``start + k*period`` / tiled-shift products the kernels form.
#: Single source of truth, like :data:`VECTORIZE_MIN_POINTS`.
INT64_SAFE_HORIZON = 1 << 60

#: Environment knob consulted when no explicit engine is given,
#: mirroring ``REPRO_JOBS`` / ``REPRO_SCALE``.
ENGINE_ENV_VAR = "REPRO_ANALYSIS_ENGINE"

_default_override: Optional[str] = None


def _validate(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown analysis engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine name: argument > override > env var > vectorized."""
    if engine is not None:
        return _validate(engine)
    if _default_override is not None:
        return _default_override
    raw = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    if raw:
        return _validate(raw)
    return "vectorized"


def default_engine() -> str:
    """The engine used when callers pass ``engine=None``."""
    return resolve_engine(None)


def set_default_engine(engine: Optional[str]) -> Optional[str]:
    """Set (or clear, with ``None``) the process-wide engine override.

    Returns the previous override so callers can restore it; prefer the
    :func:`use_engine` context manager for scoped switches.
    """
    global _default_override
    if engine is not None:
        _validate(engine)
    previous = _default_override
    _default_override = engine
    return previous


@contextmanager
def use_engine(engine: str) -> Iterator[str]:
    """Scoped engine override (benchmarks and differential tests)."""
    previous = set_default_engine(engine)
    try:
        yield _validate(engine)
    finally:
        set_default_engine(previous)
