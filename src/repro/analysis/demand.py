"""Demand bound functions (Sec. IV, Eqs. 3 and 9)."""

from __future__ import annotations

from typing import Iterable

from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet


def dbf_server(pi: int, theta: int, t: int) -> int:
    """Eq. (3): demand of the periodic implicit-deadline server Gamma.

    ``dbf(Gamma, t) = floor(t / pi) * theta``.
    """
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    if not 0 < theta <= pi:
        raise ValueError(
            f"server budget must satisfy 0 < theta <= pi, got "
            f"theta={theta}, pi={pi}"
        )
    if t < 0:
        raise ValueError(f"dbf requires t >= 0, got {t}")
    return (t // pi) * theta


def dbf_sporadic(task: IOTask, t: int) -> int:
    """Eq. (9): demand of sporadic task tau = (T, C, D) in a window of t.

    ``dbf(tau, t) = (floor((t - D) / T) + 1) * C`` for ``t >= D`` and 0
    otherwise (the paper's formula yields non-positive factors for
    ``t < D``; demand cannot be negative).
    """
    if t < 0:
        raise ValueError(f"dbf requires t >= 0, got {t}")
    if t < task.deadline:
        return 0
    return ((t - task.deadline) // task.period + 1) * task.wcet


def dbf_taskset(tasks: Iterable[IOTask], t: int) -> int:
    """Aggregate Eq. (9) demand over a task collection."""
    return sum(dbf_sporadic(task, t) for task in tasks)


def dbf_step_points(tasks: TaskSet, horizon: int) -> list:
    """All t in [0, horizon] where the aggregate dbf increases.

    The dbf staircase of ``tau`` jumps exactly at ``D + m*T``; checking a
    dbf-vs-sbf inequality only at these points is sufficient because dbf
    is constant between jumps while sbf is non-decreasing.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    points = set()
    for task in tasks:
        t = task.deadline
        while t <= horizon:
            points.add(t)
            t += task.period
    return sorted(points)


def server_step_points(servers: Iterable[tuple], horizon: int) -> list:
    """All t in [0, horizon] where aggregate server dbf (Eq. 3) jumps.

    ``servers`` is an iterable of ``(pi, theta)`` pairs; jumps occur at
    multiples of each ``pi``.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    points = set()
    for pi, _theta in servers:
        t = pi
        while t <= horizon:
            points.add(t)
            t += pi
    return sorted(points)
