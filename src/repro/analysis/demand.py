"""Demand bound functions (Sec. IV, Eqs. 3 and 9)."""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Tuple

from repro.analysis.cache import register_cache
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

#: Hashable demand signature: one ``(deadline, period, wcet)`` triple per
#: task.  Two task sets with equal signatures have identical dbf curves,
#: so the memoized kernels key on it instead of the (mutable, unhashable)
#: task objects.
DemandSignature = Tuple[Tuple[int, int, int], ...]


def demand_signature(tasks: Iterable[IOTask]) -> DemandSignature:
    """The hashable dbf key of a task collection."""
    return tuple((task.deadline, task.period, task.wcet) for task in tasks)


def dbf_server(pi: int, theta: int, t: int) -> int:
    """Eq. (3): demand of the periodic implicit-deadline server Gamma.

    ``dbf(Gamma, t) = floor(t / pi) * theta``.
    """
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    if not 0 < theta <= pi:
        raise ValueError(
            f"server budget must satisfy 0 < theta <= pi, got "
            f"theta={theta}, pi={pi}"
        )
    if t < 0:
        raise ValueError(f"dbf requires t >= 0, got {t}")
    return (t // pi) * theta


def dbf_sporadic(task: IOTask, t: int) -> int:
    """Eq. (9): demand of sporadic task tau = (T, C, D) in a window of t.

    ``dbf(tau, t) = (floor((t - D) / T) + 1) * C`` for ``t >= D`` and 0
    otherwise (the paper's formula yields non-positive factors for
    ``t < D``; demand cannot be negative).
    """
    if t < 0:
        raise ValueError(f"dbf requires t >= 0, got {t}")
    if t < task.deadline:
        return 0
    return ((t - task.deadline) // task.period + 1) * task.wcet


def dbf_taskset_uncached(tasks: Iterable[IOTask], t: int) -> int:
    """Aggregate Eq. (9) demand, summed directly (reference path)."""
    return sum(dbf_sporadic(task, t) for task in tasks)


@lru_cache(maxsize=1 << 16)
def dbf_signature_demand(signature: DemandSignature, t: int) -> int:
    """Aggregate Eq. (9) over a demand signature (memoized).

    The step-point scans of Theorems 3/4 and the linear test evaluate
    the *same* task set at overlapping ``t`` grids; keying on the
    signature shares those evaluations across tests and sweep samples.
    """
    if t < 0:
        raise ValueError(f"dbf requires t >= 0, got {t}")
    total = 0
    for deadline, period, wcet in signature:
        if t >= deadline:
            total += ((t - deadline) // period + 1) * wcet
    return total


register_cache("demand.dbf_signature_demand", dbf_signature_demand)


def dbf_taskset(tasks: Iterable[IOTask], t: int) -> int:
    """Aggregate Eq. (9) demand over a task collection."""
    return dbf_signature_demand(demand_signature(tasks), t)


@lru_cache(maxsize=1 << 12)
def _step_points_cached(
    signature: Tuple[Tuple[int, int], ...], horizon: int
) -> Tuple[int, ...]:
    points = set()
    for deadline, period in signature:
        t = deadline
        while t <= horizon:
            points.add(t)
            t += period
    return tuple(sorted(points))


register_cache("demand.dbf_step_points", _step_points_cached)


def dbf_step_points(tasks: TaskSet, horizon: int) -> list:
    """All t in [0, horizon] where the aggregate dbf increases.

    The dbf staircase of ``tau`` jumps exactly at ``D + m*T``; checking a
    dbf-vs-sbf inequality only at these points is sufficient because dbf
    is constant between jumps while sbf is non-decreasing.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    signature = tuple((task.deadline, task.period) for task in tasks)
    return list(_step_points_cached(signature, horizon))


@lru_cache(maxsize=1 << 12)
def _server_step_points_cached(
    periods: Tuple[int, ...], horizon: int
) -> Tuple[int, ...]:
    points = set()
    for pi in periods:
        t = pi
        while t <= horizon:
            points.add(t)
            t += pi
    return tuple(sorted(points))


register_cache("demand.server_step_points", _server_step_points_cached)


def server_step_points(servers: Iterable[tuple], horizon: int) -> list:
    """All t in [0, horizon] where aggregate server dbf (Eq. 3) jumps.

    ``servers`` is an iterable of ``(pi, theta)`` pairs; jumps occur at
    multiples of each ``pi``.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    periods = tuple(pi for pi, _theta in servers)
    return list(_server_step_points_cached(periods, horizon))
