"""Response-time bounds under the two-layer scheduler.

The schedulability tests of Sec. IV answer yes/no; a system integrator
also needs *how late* an I/O can be.  For EDF over a supply bound
function the classic bound (Spuri-style, adapted to the periodic
resource model) is:

    R_k = max over busy-window lengths t of  (completion(t) - release(t))

computed here via the standard fixed-point formulation: job J of task
``tau_k`` released at the critical instant completes no later than the
smallest ``f`` with

    sbf(Gamma, f) >= C_k + sum_{j != k} dbf*(tau_j, window)

A simpler, sound (if pessimistic) bound suffices for the library's
purposes: all higher-or-equal-priority demand in the scheduling window
is EDF demand with deadlines at or before ``tau_k``'s, i.e. the
aggregate dbf evaluated at the job's absolute deadline.  The bound is
*exact enough* to be monotone and sound, and the tests validate
soundness against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.demand import dbf_sporadic
from repro.analysis.engine import resolve_engine
from repro.analysis.supply import sbf_server, sbf_server_inverse
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

#: Fixed-point iteration guard.
MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class ResponseTimeBound:
    """WCRT verdict for one task."""

    task_name: str
    #: Sound upper bound on the response time, in slots; None when the
    #: bound diverged past the deadline (task unschedulable).
    wcrt: Optional[int]
    deadline: int

    @property
    def meets_deadline(self) -> bool:
        return self.wcrt is not None and self.wcrt <= self.deadline

    @property
    def margin(self) -> Optional[int]:
        """Slack between the bound and the deadline."""
        if self.wcrt is None:
            return None
        return self.deadline - self.wcrt


def edf_demand_before(tasks: TaskSet, task: IOTask, window: int) -> int:
    """EDF-relevant demand of the *other* tasks within ``window``.

    Under EDF only jobs with absolute deadlines at or before the
    analysed job's deadline can delay it; for a window equal to that
    deadline, their worst-case demand is exactly their dbf over it.
    """
    total = 0
    for other in tasks:
        if other.name == task.name:
            continue
        total += dbf_sporadic(other, window)
    return total


def response_time_bound(
    pi: int,
    theta: int,
    tasks: TaskSet,
    task_name: str,
    *,
    engine: Optional[str] = None,
) -> ResponseTimeBound:
    """Sound WCRT bound for one task under EDF on server (pi, theta).

    Finds the smallest ``f`` such that the server's guaranteed supply in
    ``f`` covers the task's own WCET plus all competing EDF demand in
    its deadline window.  Diverging past the deadline yields ``None``
    (consistent with a failed Theorem-3 test at that point).

    ``engine`` selects between the scalar reference loop and the
    closed-form supply inverse (Eq. 8's inverse, the ``"vectorized"``
    path); both return the identical bound -- the chain property suite
    cross-checks them on every hop.
    """
    task = tasks[task_name]
    demand = task.wcet + edf_demand_before(tasks, task, task.deadline)
    if resolve_engine(engine) == "vectorized":
        # The scalar loop scans f = 0, 1, ... and gives up at the first
        # unsatisfied f past the deadline, so the smallest satisfying
        # window is reported iff it is <= deadline + 1.
        f = sbf_server_inverse(pi, theta, demand)
        wcrt: Optional[int] = f if f <= task.deadline + 1 else None
        return ResponseTimeBound(
            task_name=task_name, wcrt=wcrt, deadline=task.deadline
        )
    f = 0
    for _ in range(MAX_ITERATIONS):
        if sbf_server(pi, theta, f) >= demand:
            return ResponseTimeBound(
                task_name=task_name, wcrt=f, deadline=task.deadline
            )
        if f > task.deadline:
            return ResponseTimeBound(
                task_name=task_name, wcrt=None, deadline=task.deadline
            )
        f += 1
    raise AssertionError(
        f"response-time iteration for {task_name!r} did not converge"
    )


def response_time_bounds(
    pi: int,
    theta: int,
    tasks: TaskSet,
    *,
    engine: Optional[str] = None,
) -> Dict[str, ResponseTimeBound]:
    """WCRT bounds for every task in the VM."""
    return {
        task.name: response_time_bound(
            pi, theta, tasks, task.name, engine=engine
        )
        for task in tasks
    }


def pchannel_response_bound(task: IOTask) -> ResponseTimeBound:
    """WCRT of a pre-defined task: its table slots all land inside the
    deadline window by construction, so the deadline itself bounds the
    response."""
    return ResponseTimeBound(
        task_name=task.name, wcrt=task.deadline, deadline=task.deadline
    )
