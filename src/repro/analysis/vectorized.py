"""Vectorized schedulability kernels with QPA-style early termination.

The scalar tests of :mod:`repro.analysis.lsched_test` /
:mod:`repro.analysis.gsched_test` walk every dbf step point up to the
Theorem-2/4 horizon in a Python loop.  This module provides the
high-throughput engine behind ``engine="vectorized"``:

* **numpy kernels** evaluating the Eq. (3)/(9) demand curves and the
  Eq. (1)/(2)/(8) supply curves over *arrays* of step points at once
  (:func:`dbf_taskset_at`, :func:`dbf_servers_at`, :func:`sbf_server_at`,
  :func:`sbf_sigma_at`, :func:`linear_supply_at`);
* a **QPA-style descent** (after Zhang & Burns' Quick Processor-demand
  Analysis, generalized from ``sbf(t) = t`` to arbitrary monotone supply
  functions with an exact inverse): starting from the largest step point
  below the horizon, each probe at ``t`` with demand ``d <= sbf(t)``
  proves every step point in ``[isbf(d), t]`` schedulable at once --
  ``dbf`` is non-decreasing, so any ``t'`` in that range has
  ``dbf(t') <= d <= sbf(isbf(d)) <= sbf(t')``.  Schedulable systems are
  decided after a handful of probes instead of a full horizon sweep.
* a **vectorized witness scan** for unschedulable systems: once the
  descent finds *a* failing point, the first failing point (the witness
  the scalar engine reports) is located by evaluating demand and supply
  over chunks of the step-point grid below it.

Every function here is decision-bit-identical to its scalar counterpart:
identical step-point grids, identical integer/float arithmetic, identical
first-failing witnesses.  The property suite
(``tests/properties/test_vectorized_engine.py``) enforces this.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.cache import register_cache
from repro.analysis.demand import DemandSignature, dbf_signature_demand
from repro.analysis.engine import INT64_SAFE_HORIZON
from repro.analysis.supply import supply_at_least
from repro.core.timeslot import TimeSlotTable

#: Step points evaluated per numpy chunk in the witness scans.  Bounds
#: peak memory at roughly ``chunk * task_count`` int64 cells.
VECTOR_CHUNK = 1 << 14

#: QPA descent probes before falling back to a full vectorized sweep.
#: Near the schedulability boundary the inverse-supply jumps shrink to a
#: single step point and the descent devolves into the scalar loop; a
#: bulk numpy scan of the remaining range is then much cheaper than
#: per-``t`` Python probes.
QPA_PROBE_LIMIT = 64

#: Grids smaller than this skip the QPA descent entirely: a single bulk
#: numpy sweep costs less than even a handful of Python-level probes.
QPA_MIN_GRID = 512

#: (deadline, period) pairs -- the part of a demand signature that
#: determines the step-point grid.
StepPairs = Tuple[Tuple[int, int], ...]


def step_pairs(signature: DemandSignature) -> StepPairs:
    """The (deadline, period) grid pairs of a demand signature."""
    return tuple((deadline, period) for deadline, period, _wcet in signature)


# -- vectorized kernels ------------------------------------------------------


def _signature_arrays_uncached(
    signature: DemandSignature,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(deadlines, periods, wcets)`` column vectors for broadcasting."""
    deadlines = np.array([row[0] for row in signature], dtype=np.int64)
    periods = np.array([row[1] for row in signature], dtype=np.int64)
    wcets = np.array([row[2] for row in signature], dtype=np.int64)
    for array in (deadlines, periods, wcets):
        array.shape = (len(signature), 1)
        array.flags.writeable = False
    return deadlines, periods, wcets


#: Memoized signature -> numpy columns.  Sweeps and admission replay the
#: same signatures across many windows; entries are three tiny arrays.
signature_arrays = register_cache(
    "vectorized.signature_arrays",
    lru_cache(maxsize=1 << 12)(_signature_arrays_uncached),
)


def dbf_taskset_at(signature: DemandSignature, ts: np.ndarray) -> np.ndarray:
    """Aggregate Eq. (9) demand at every ``t`` in ``ts`` (int64 array)."""
    ts = np.asarray(ts, dtype=np.int64)
    if not len(signature) or not ts.size:
        return np.zeros(ts.shape, dtype=np.int64)
    deadlines, periods, wcets = signature_arrays(signature)
    if len(signature) * ts.size <= VECTOR_CHUNK * 8:
        window = ts[None, :]
        jobs = (window - deadlines) // periods + 1
        contrib = np.where(window >= deadlines, jobs * wcets, 0)
        return contrib.sum(axis=0)
    # Chunk over the time axis so tasks x points stays bounded.
    total = np.zeros(ts.shape, dtype=np.int64)
    span = max(1, VECTOR_CHUNK // len(signature))
    for start in range(0, ts.size, span):
        window = ts[start : start + span][None, :]
        jobs = (window - deadlines) // periods + 1
        contrib = np.where(window >= deadlines, jobs * wcets, 0)
        total[start : start + span] = contrib.sum(axis=0)
    return total


def dbf_servers_at(
    servers: Sequence[Tuple[int, int]], ts: np.ndarray
) -> np.ndarray:
    """Aggregate Eq. (3) server demand at every ``t`` in ``ts``."""
    ts = np.asarray(ts, dtype=np.int64)
    total = np.zeros(ts.shape, dtype=np.int64)
    for pi, theta in servers:
        total += (ts // pi) * theta
    return total


def sbf_server_at(pi: int, theta: int, ts: np.ndarray) -> np.ndarray:
    """Eq. (8) periodic-resource supply at every ``t`` in ``ts``."""
    ts = np.asarray(ts, dtype=np.int64)
    t_shift = ts - (pi - theta)
    whole = t_shift // pi
    tail = np.maximum(t_shift - pi * whole - (pi - theta), 0)
    return np.where(t_shift < 0, 0, whole * theta + tail)


def sbf_sigma_at(table: TimeSlotTable, ts: np.ndarray) -> np.ndarray:
    """Eqs. (1)/(2) table supply at every ``t`` in ``ts``.

    The Eq. (1) enumeration is shared with the scalar path through the
    table's :class:`~repro.core.timeslot.SbfCache`; only the distinct
    residues ``t mod H`` are enumerated.
    """
    ts = np.asarray(ts, dtype=np.int64)
    if not ts.size:
        return np.zeros(0, dtype=np.int64)
    whole, rest = np.divmod(ts, table.total_slots)
    residues = _dedup_sorted(np.sort(rest))
    enums = np.array(
        [table.sbf_cache.enum(int(residue)) for residue in residues],
        dtype=np.int64,
    )
    return whole * table.free_slots + enums[np.searchsorted(residues, rest)]


def linear_supply_at(pi: int, theta: int, ts: np.ndarray) -> np.ndarray:
    """Eq. (12) linear supply lower bound at every ``t`` (float64).

    Bit-compatible with the scalar
    :func:`repro.analysis.supply.linear_supply_lower_bound`: the int64
    product ``t * theta`` is exact, and IEEE division by ``pi`` rounds
    identically in numpy and pure Python.
    """
    ts = np.asarray(ts, dtype=np.int64)
    return ts * theta / pi - (2 * pi - theta - 1)


# -- step-point grids --------------------------------------------------------


def _dedup_sorted(points: np.ndarray) -> np.ndarray:
    """Drop repeats from a sorted array (``np.unique`` without its
    hash-table detour, which costs ~10x more than the sort itself)."""
    if points.size < 2:
        return points
    keep = np.empty(points.shape, dtype=bool)
    keep[0] = True
    np.not_equal(points[1:], points[:-1], out=keep[1:])
    return points[keep]


def step_points_in_range(pairs: StepPairs, lo: int, hi: int) -> np.ndarray:
    """Sorted dbf step points ``t`` with ``lo <= t <= hi`` (repeats kept).

    The staircase of task ``(D, T)`` jumps exactly at ``D + m*T``;
    matches the scalar :func:`repro.analysis.demand.dbf_step_points`
    grid restricted to the range, except that a point shared by several
    tasks appears once per task -- harmless for scanning, and skipping
    the dedup keeps the per-chunk cost at one sort.
    """
    if hi > INT64_SAFE_HORIZON:
        raise OverflowError(
            f"step-point range top {hi} exceeds the int64-safe cap "
            f"{INT64_SAFE_HORIZON}; the start + k*period grid points "
            f"would wrap in int64 -- use the exact (hyper-period) test"
        )
    arrays: List[np.ndarray] = []
    for deadline, period in pairs:
        if hi < deadline:
            continue
        if lo <= deadline:
            start = deadline
        else:
            start = deadline + -((deadline - lo) // period) * period
        arrays.append(np.arange(start, hi + 1, period, dtype=np.int64))
    if not arrays:
        return np.zeros(0, dtype=np.int64)
    if len(arrays) == 1:
        return arrays[0]
    return np.sort(np.concatenate(arrays))


def taskset_step_points(pairs: StepPairs, horizon: int) -> np.ndarray:
    """All distinct dbf step points in ``[0, horizon]``, sorted.

    Element-for-element identical to the scalar
    :func:`repro.analysis.demand.dbf_step_points`.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    return _dedup_sorted(step_points_in_range(pairs, 0, horizon))


def server_points_in_range(
    periods: Sequence[int], lo: int, hi: int
) -> np.ndarray:
    """Sorted Eq. (3) jump points (period multiples) in [lo, hi]."""
    if hi > INT64_SAFE_HORIZON:
        raise OverflowError(
            f"server step-point range top {hi} exceeds the int64-safe "
            f"cap {INT64_SAFE_HORIZON}; period-multiple grid points "
            f"would wrap in int64 -- use the exact (hyper-period) test"
        )
    arrays: List[np.ndarray] = []
    for pi in periods:
        if hi < pi:
            continue
        start = max(pi, ((lo + pi - 1) // pi) * pi)
        arrays.append(np.arange(start, hi + 1, pi, dtype=np.int64))
    if not arrays:
        return np.zeros(0, dtype=np.int64)
    if len(arrays) == 1:
        return arrays[0]
    return np.sort(np.concatenate(arrays))


def _largest_step_le(pairs: StepPairs, limit: int) -> Optional[int]:
    """Largest dbf step point ``<= limit`` (None when there is none)."""
    best: Optional[int] = None
    for deadline, period in pairs:
        if limit >= deadline:
            # iolint: disable=IOL008 -- pure-Python int arithmetic
            # (arbitrary precision, cannot wrap); results stay Python
            # ints until the scan ranges, which are capped at
            # INT64_SAFE_HORIZON by step_points_in_range
            point = deadline + ((limit - deadline) // period) * period
            if best is None or point > best:
                best = point
    return best


def _largest_server_step_le(
    periods: Sequence[int], limit: int
) -> Optional[int]:
    """Largest server step point (period multiple) ``<= limit``."""
    best: Optional[int] = None
    for pi in periods:
        if limit >= pi:
            # iolint: disable=IOL008 -- pure-Python int arithmetic
            # (arbitrary precision, cannot wrap); scan ranges built from
            # the result are capped by server_points_in_range
            point = (limit // pi) * pi
            if best is None or point > best:
                best = point
    return best


# -- QPA-style descent -------------------------------------------------------


def _grid_estimate(pairs: StepPairs, horizon: int) -> int:
    """Number of (non-deduplicated) step points up to ``horizon``."""
    total = 0
    for deadline, period in pairs:
        if horizon >= deadline:
            total += (horizon - deadline) // period + 1
    return total


def taskset_failure(
    signature: DemandSignature,
    horizon: int,
    supply_of: Callable[[int], float],
    inverse_of: Callable[[int], int],
    supply_at: Callable[[np.ndarray], np.ndarray],
) -> Optional[Tuple[int, int, float]]:
    """First step point ``t <= horizon`` with ``dbf(t) > supply(t)``.

    Returns ``(t, demand, supply)`` with native Python scalars, or
    ``None`` when the window is schedulable.  ``supply_of`` must be
    monotone non-decreasing and ``inverse_of(d)`` must return the
    smallest ``t`` with ``supply_of(t) >= d`` (rounding *up* keeps the
    descent sound); ``supply_at`` is its vectorized twin.

    Strategy: grids below :data:`QPA_MIN_GRID` points are swept in one
    bulk numpy pass.  Larger grids run the QPA descent from the horizon
    down -- each passing probe at ``t`` with demand ``d`` proves every
    step point in ``[inverse_of(d), t]`` schedulable, so well-slacked
    systems finish in a handful of probes.  If the descent finds a
    failing probe, the *first* failure lies at or below it and a bulk
    scan of that prefix locates it; if the descent stalls (boundary
    systems degenerate to single-step jumps), the remaining prefix is
    swept in bulk after :data:`QPA_PROBE_LIMIT` probes.
    """
    pairs = step_pairs(signature)
    top = _largest_step_le(pairs, horizon)
    if top is None:
        return None
    if _grid_estimate(pairs, top) > QPA_MIN_GRID:
        t: Optional[int] = top
        probes = 0
        while t is not None and probes < QPA_PROBE_LIMIT:
            probes += 1
            demand = dbf_signature_demand(signature, t)
            if demand > supply_of(t):
                return _first_taskset_failure(signature, t, supply_at)
            t = _largest_step_le(pairs, min(inverse_of(demand), t) - 1)
        if t is None:
            return None
        top = t  # descent stalled; everything above `t` is proven safe
    first = _scan_taskset_range(signature, 0, top, supply_at)
    if first is None:
        return None
    return _taskset_point_detail(signature, first, supply_at)


def server_failure(
    table: TimeSlotTable,
    servers: Sequence[Tuple[int, int]],
    horizon: int,
) -> Optional[Tuple[int, int, int]]:
    """First Theorem-1 step point ``t <= horizon`` with ``dbf > sbf``.

    Returns ``(t, demand, supply)`` or ``None`` when schedulable; same
    QPA-descent/bulk-scan strategy as :func:`taskset_failure`, with
    :func:`repro.analysis.supply.supply_at_least` as the supply inverse.
    """
    periods = [pi for pi, _theta in servers]
    top = _largest_server_step_le(periods, horizon)
    if top is None:
        return None
    if sum(top // pi for pi in periods) > QPA_MIN_GRID:
        t: Optional[int] = top
        probes = 0
        while t is not None and probes < QPA_PROBE_LIMIT:
            probes += 1
            demand = sum((t // pi) * theta for pi, theta in servers)
            if demand > table.sbf(t):
                return _first_server_failure(table, servers, t)
            safe_from = supply_at_least(table, demand)
            t = _largest_server_step_le(periods, min(safe_from, t) - 1)
        if t is None:
            return None
        top = t
    first = _scan_server_range(table, servers, 0, top)
    if first is None:
        return None
    demand = sum((first // pi) * theta for pi, theta in servers)
    return first, demand, table.sbf(first)


# -- vectorized witness location ---------------------------------------------


def _scan_taskset_range(
    signature: DemandSignature,
    lo: int,
    hi: int,
    supply_at: Callable[[np.ndarray], np.ndarray],
) -> Optional[int]:
    """First step point in ``[lo, hi]`` with ``dbf > supply``, or None.

    Chunks grow geometrically from ``max_period`` slots: early failures
    (the common unschedulable shape -- a deadline inside the supply
    blackout) exit after one small chunk, while full sweeps of
    schedulable grids amortize to a handful of large numpy passes.
    """
    pairs = step_pairs(signature)
    span = 2 * max(period for _d, period in pairs)
    chunk_lo = lo
    while chunk_lo <= hi:
        chunk_hi = min(hi, chunk_lo + span - 1)
        points = step_points_in_range(pairs, chunk_lo, chunk_hi)
        if points.size:
            demand = dbf_taskset_at(signature, points)
            failing = np.nonzero(demand > supply_at(points))[0]
            if failing.size:
                return int(points[int(failing[0])])
        chunk_lo = chunk_hi + 1
        span = min(span * 4, VECTOR_CHUNK * 8)
    return None


def _scan_server_range(
    table: TimeSlotTable,
    servers: Sequence[Tuple[int, int]],
    lo: int,
    hi: int,
) -> Optional[int]:
    """First server step point in ``[lo, hi]`` with ``dbf > sbf``, or None."""
    periods = [pi for pi, _theta in servers]
    span = 2 * max(periods)
    chunk_lo = lo
    while chunk_lo <= hi:
        chunk_hi = min(hi, chunk_lo + span - 1)
        points = server_points_in_range(periods, chunk_lo, chunk_hi)
        if points.size:
            demand = dbf_servers_at(servers, points)
            failing = np.nonzero(demand > sbf_sigma_at(table, points))[0]
            if failing.size:
                return int(points[int(failing[0])])
        chunk_lo = chunk_hi + 1
        span = min(span * 4, VECTOR_CHUNK * 8)
    return None


def _taskset_point_detail(
    signature: DemandSignature,
    t: int,
    supply_at: Callable[[np.ndarray], np.ndarray],
) -> Tuple[int, int, float]:
    """``(t, demand, supply)`` at one point, as native Python scalars."""
    point = np.array([t], dtype=np.int64)
    demand = dbf_taskset_at(signature, point)
    supply = supply_at(point)
    return t, int(demand[0]), supply[0].item()


def _first_taskset_failure(
    signature: DemandSignature,
    upto: int,
    supply_at: Callable[[np.ndarray], np.ndarray],
) -> Tuple[int, int, float]:
    """First step point ``t <= upto`` with ``dbf(t) > supply(t)``.

    The caller guarantees a failure exists at or below ``upto`` (the QPA
    witness); returns ``(t, demand, supply)`` with native Python types.
    """
    t = _scan_taskset_range(signature, 0, upto, supply_at)
    if t is None:
        raise AssertionError(
            "QPA reported a failing point but the vectorized scan found "
            "none; the engines disagree"
        )
    return _taskset_point_detail(signature, t, supply_at)


def _first_server_failure(
    table: TimeSlotTable,
    servers: Sequence[Tuple[int, int]],
    upto: int,
) -> Tuple[int, int, int]:
    """First Theorem-1 step point ``t <= upto`` failing demand <= supply."""
    t = _scan_server_range(table, servers, 0, upto)
    if t is None:
        raise AssertionError(
            "QPA reported a failing point but the vectorized scan found "
            "none; the engines disagree"
        )
    demand = sum((t // pi) * theta for pi, theta in servers)
    return t, demand, table.sbf(t)
