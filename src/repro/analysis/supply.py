"""Supply bound functions (Sec. IV, Eqs. 1, 2 and 8)."""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.cache import register_cache
from repro.core.timeslot import TimeSlotTable


def sbf_sigma(table: TimeSlotTable, t: int) -> int:
    """``sbf(sigma, t)``: minimum free slots in any window of length t.

    Computed from the time slot table via the enumeration look-up of
    Eq. (1) for ``t < H`` and the periodic extension of Eq. (2) for
    ``t >= H``.  Delegates to :meth:`TimeSlotTable.sbf`, which memoizes
    the enumeration in the table's :class:`~repro.core.timeslot.SbfCache`.
    """
    return table.sbf(t)


def sbf_server_uncached(pi: int, theta: int, t: int) -> int:
    """``sbf(Gamma_i, t)`` of the periodic resource model, Eq. (8).

    ``Gamma = (pi, theta)`` guarantees ``theta`` slots in every ``pi``;
    the worst-case phasing delays supply by up to ``2*(pi - theta)``
    slots, which Eq. (8) captures with the shifted time
    ``t' = t - (pi - theta)``.

    Reference implementation; :func:`sbf_server` adds memoization.
    """
    _validate_server(pi, theta)
    if t < 0:
        raise ValueError(f"sbf requires t >= 0, got {t}")
    t_shift = t - (pi - theta)
    if t_shift < 0:
        return 0
    whole = t_shift // pi
    theta_tail = max(t_shift - pi * whole - (pi - theta), 0)
    return whole * theta + theta_tail


#: Memoized Eq. (8).  Step-point scans re-evaluate the same (pi, theta, t)
#: triples across sweep cells (every acceptance sample shares the server,
#: every server search probes neighbouring budgets), so a process-wide
#: LRU pays for itself quickly; entries are three ints -> int.
sbf_server = register_cache(
    "supply.sbf_server", lru_cache(maxsize=1 << 18)(sbf_server_uncached)
)


def sbf_server_exact_blackout(pi: int, theta: int, t: int) -> int:
    """Reference implementation of Eq. (8) by explicit window sliding.

    The periodic resource model's worst case delivers the budget at the
    *start* of one period and at the *end* of every later period,
    creating the famous ``2*(pi - theta)`` blackout.  This builds that
    adversarial pattern explicitly and slides a window of length ``t``
    over every start position in the first two periods to find the
    minimum supply.  Much slower than :func:`sbf_server`; used by the
    tests to validate the closed form.
    """
    _validate_server(pi, theta)
    if t < 0:
        raise ValueError(f"sbf requires t >= 0, got {t}")
    if t == 0:
        return 0
    periods = (t // pi) + 4
    pattern = [1] * theta + [0] * (pi - theta)  # early delivery
    for _ in range(periods):
        pattern.extend([0] * (pi - theta))
        pattern.extend([1] * theta)  # late delivery ever after
    best = None
    for start in range(2 * pi):
        supplied = sum(pattern[start : start + t])
        if best is None or supplied < best:
            best = supplied
    return int(best or 0)


def sbf_server_inverse(pi: int, theta: int, demand: int) -> int:
    """Smallest window ``t`` with ``sbf_server(pi, theta, t) >= demand``.

    The closed-form inverse of Eq. (8): write ``demand = q*theta + r``
    with ``1 <= r <= theta``; the supply reaches it once ``q`` whole
    periods plus ``r`` tail slots have been delivered after the
    ``2*(pi - theta)`` blackout.  The QPA-style descent of
    :mod:`repro.analysis.vectorized` uses this to skip every step point
    whose supply provably covers the current demand.
    """
    _validate_server(pi, theta)
    if demand <= 0:
        return 0
    whole, tail = divmod(demand - 1, theta)
    tail += 1
    return whole * pi + 2 * (pi - theta) + tail


def linear_supply_lower_bound(pi: int, theta: int, t: int) -> float:
    """The linear lower bound on Eq. (8) used in the Theorem-4 proof.

    ``sbf(Gamma, t) >= t * theta/pi - (2*pi - theta - 1)`` (Eq. 12).
    Returned as a float; it may be negative for small ``t``.
    """
    _validate_server(pi, theta)
    return t * theta / pi - (2 * pi - theta - 1)


def linear_sigma_lower_bound(table: TimeSlotTable, t: int) -> float:
    """The linear lower bound on sbf(sigma, t) from the Theorem-2 proof.

    ``sbf(sigma, t) >= (t - (H - 1)) / H * F`` (Eq. 6).
    """
    h = table.total_slots
    f = table.free_slots
    return (t - (h - 1)) / h * f


def _validate_server(pi: int, theta: int) -> None:
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    if not 0 < theta <= pi:
        raise ValueError(
            f"server budget must satisfy 0 < theta <= pi, got "
            f"theta={theta}, pi={pi}"
        )


def supply_at_least(table: TimeSlotTable, demand: int) -> int:
    """Smallest window length t with ``sbf(sigma, t) >= demand``.

    Used by server dimensioning to translate a slot requirement into a
    latency bound.  ``demand`` of zero returns 0.
    """
    if demand < 0:
        raise ValueError(f"demand must be >= 0, got {demand}")
    if demand == 0:
        return 0
    if table.free_slots == 0:
        raise ValueError("table supplies no free slots; demand unreachable")
    h = table.total_slots
    f = table.free_slots
    # Jump whole hyper-periods first, then scan the remainder.
    whole = max(0, (demand - f) + f - 1) // f if demand > f else 0
    t = whole * h
    while table.sbf(t) < demand:
        t += 1
    return t
