"""L-Sched schedulability: Theorems 3 and 4 (Sec. IV-B).

Within VM i, the sporadic I/O tasks are scheduled by EDF over the slots
delivered by the server ``Gamma_i = (Pi_i, Theta_i)`` under the periodic
resource model.  Theorem 3 is the exact condition
``forall t: sum_k dbf(tau_k, t) <= sbf(Gamma_i, t)``; Theorem 4 caps the
examined ``t`` at ``(max_k(T_k - D_k) + 2*Pi_i - Theta_i - 1) / c'``
whenever the slack ``c' = Theta_i/Pi_i - sum_k C_k/T_k`` is positive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.analysis.demand import (
    dbf_signature_demand,
    dbf_step_points,
    dbf_taskset,
    demand_signature,
)
from repro.analysis.engine import VECTORIZE_MIN_POINTS, resolve_engine
from repro.analysis.hyperperiod import lcm_capped
from repro.analysis.supply import sbf_server, sbf_server_inverse
from repro.tasks.taskset import TaskSet

#: Exact-test guard (see gsched_test.EXACT_TEST_CAP).
EXACT_TEST_CAP = 5_000_000

# VECTORIZE_MIN_POINTS is re-exported (and monkeypatchable) here, but
# defined once in repro.analysis.engine -- see the note there.


@dataclass
class LSchedResult:
    """Outcome of an L-Sched schedulability test for one VM."""

    schedulable: bool
    horizon: int
    #: Slack ``c' = Theta/Pi - sum C/T`` (negative means over-utilized).
    slack: float
    failing_t: Optional[int] = None
    failing_demand: Optional[int] = None
    failing_supply: Optional[int] = None
    method: str = "theorem4"
    server: Tuple[int, int] = (1, 1)
    task_names: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.schedulable

    def summary(self) -> str:
        from repro.analysis.result import witness_text

        verdict = "schedulable" if self.schedulable else "unschedulable"
        return (
            f"L-Sched ({self.method}): {verdict}"
            f"{witness_text(self.failing_t, self.failing_demand, self.failing_supply)}"
            f" [server {self.server}, {len(self.task_names)} tasks, "
            f"horizon {self.horizon}]"
        )


def theorem4_bound(pi: int, theta: int, tasks: TaskSet) -> int:
    """The Theorem-4 horizon (exclusive, ceiled).

    ``t < (max(T_k - D_k) + 2*Pi - Theta - 1) / c'``.  Computed in exact
    rational arithmetic (float division would occasionally push the
    ceiling one step too far).  Raises ``ValueError`` for non-positive
    slack, mirroring the theorem's precondition.
    """
    _validate_server(pi, theta)
    return _theorem4_bound_from_slack(pi, theta, tasks, _exact_slack(pi, theta, tasks))


def _theorem4_bound_from_slack(
    pi: int, theta: int, tasks: TaskSet, slack: Fraction
) -> int:
    if slack <= 0:
        raise ValueError(
            f"Theorem 4 requires positive slack; got c'={float(slack):.6f} "
            f"(theta/pi={theta}/{pi}, utilization={tasks.utilization:.6f})"
        )
    numerator = tasks.max_laxity_gap + 2 * pi - theta - 1
    if numerator <= 0:
        # Degenerate single-slot server with implicit deadlines: the
        # utilization condition alone decides, but keep one step point.
        return 1
    return int(math.ceil(Fraction(numerator) / slack))


def _exact_slack(pi: int, theta: int, tasks: TaskSet) -> Fraction:
    """``theta/pi - sum C/T`` in exact arithmetic.

    Classifying the slack sign with floats occasionally disagrees with
    the exact value near zero, which would route borderline systems to
    the wrong test.  Accumulated as a raw numerator/denominator pair --
    one normalization at the end instead of a gcd per Fraction add.
    """
    num, den = theta, pi
    for task in tasks:
        num = num * task.period - task.wcet * den
        den *= task.period
    return Fraction(num, den)


def lsched_schedulable(
    pi: int,
    theta: int,
    tasks: TaskSet,
    engine: Optional[str] = None,
) -> LSchedResult:
    """Theorem 4: pseudo-polynomial L-Sched test for one VM.

    ``engine`` selects the step-point sweep implementation (``"scalar"``
    or ``"vectorized"``; see :mod:`repro.analysis.engine`).  Both return
    bit-identical results.
    """
    _validate_server(pi, theta)
    slack = _exact_slack(pi, theta, tasks)
    names = [task.name for task in tasks]
    if len(tasks) == 0:
        return LSchedResult(
            schedulable=True,
            horizon=0,
            slack=float(slack),
            method="theorem4",
            server=(pi, theta),
        )
    if slack < 0:
        witness = _overload_witness(pi, theta, tasks)
        return LSchedResult(
            schedulable=False,
            horizon=witness[0],
            slack=float(slack),
            failing_t=witness[0],
            failing_demand=witness[1],
            failing_supply=witness[2],
            method="utilization",
            server=(pi, theta),
            task_names=names,
        )
    if slack == 0:
        return lsched_schedulable_exact(pi, theta, tasks, engine=engine)
    horizon = _theorem4_bound_from_slack(pi, theta, tasks, slack)
    return _check_window(
        pi, theta, tasks, horizon, float(slack), "theorem4", engine=engine
    )


def lsched_schedulable_exact(
    pi: int,
    theta: int,
    tasks: TaskSet,
    cap: int = EXACT_TEST_CAP,
    engine: Optional[str] = None,
) -> LSchedResult:
    """Theorem 3: exact test up to lcm({Pi} u {T_k}) + max(D_k).

    Over one LCM repetition demand grows by ``lcm * sum C/T`` and supply
    by at least ``lcm * Theta/Pi``; with non-positive over-utilization
    checking the first repetition (shifted by the largest deadline to
    cover all staircase offsets) decides the infinite condition.
    """
    _validate_server(pi, theta)
    slack = _exact_slack(pi, theta, tasks)
    names = [task.name for task in tasks]
    if len(tasks) == 0:
        return LSchedResult(
            schedulable=True,
            horizon=0,
            slack=float(slack),
            method="theorem3",
            server=(pi, theta),
        )
    if slack < 0:
        witness = _overload_witness(pi, theta, tasks)
        return LSchedResult(
            schedulable=False,
            horizon=witness[0],
            slack=float(slack),
            failing_t=witness[0],
            failing_demand=witness[1],
            failing_supply=witness[2],
            method="utilization",
            server=(pi, theta),
            task_names=names,
        )
    lcm = lcm_capped([pi] + [task.period for task in tasks], cap)
    horizon = lcm + max(task.deadline for task in tasks)
    return _check_window(
        pi, theta, tasks, horizon, float(slack), "theorem3", engine=engine
    )


def _check_window(
    pi: int,
    theta: int,
    tasks: TaskSet,
    horizon: int,
    slack: float,
    method: str,
    engine: Optional[str] = None,
) -> LSchedResult:
    if (
        resolve_engine(engine) != "scalar"
        and _step_point_estimate(tasks, horizon) >= VECTORIZE_MIN_POINTS
    ):
        return _check_window_vectorized(pi, theta, tasks, horizon, slack, method)
    names = [task.name for task in tasks]
    signature = demand_signature(tasks)
    for t in dbf_step_points(tasks, horizon):
        demand = dbf_signature_demand(signature, t)
        supply = sbf_server(pi, theta, t)
        if demand > supply:
            return LSchedResult(
                schedulable=False,
                horizon=horizon,
                slack=slack,
                failing_t=t,
                failing_demand=demand,
                failing_supply=supply,
                method=method,
                server=(pi, theta),
                task_names=names,
            )
    return LSchedResult(
        schedulable=True,
        horizon=horizon,
        slack=slack,
        method=method,
        server=(pi, theta),
        task_names=names,
    )


def _step_point_estimate(tasks: TaskSet, horizon: int) -> int:
    """Upper bound on the number of dbf step points up to ``horizon``."""
    total = 0
    for task in tasks:
        if horizon >= task.deadline:
            total += (horizon - task.deadline) // task.period + 1
    return total


def _check_window_vectorized(
    pi: int,
    theta: int,
    tasks: TaskSet,
    horizon: int,
    slack: float,
    method: str,
) -> LSchedResult:
    """QPA descent + numpy witness scan; bit-identical to _check_window."""
    from repro.analysis import vectorized as vec

    names = [task.name for task in tasks]
    signature = demand_signature(tasks)
    failure = vec.taskset_failure(
        signature,
        horizon,
        supply_of=lambda t: sbf_server(pi, theta, t),
        inverse_of=lambda d: sbf_server_inverse(pi, theta, d),
        supply_at=lambda ts: vec.sbf_server_at(pi, theta, ts),
    )
    if failure is None:
        return LSchedResult(
            schedulable=True,
            horizon=horizon,
            slack=slack,
            method=method,
            server=(pi, theta),
            task_names=names,
        )
    t, demand, supply = failure
    return LSchedResult(
        schedulable=False,
        horizon=horizon,
        slack=slack,
        failing_t=t,
        failing_demand=demand,
        failing_supply=int(supply),
        method=method,
        server=(pi, theta),
        task_names=names,
    )


def _overload_witness(pi: int, theta: int, tasks: TaskSet) -> Tuple[int, int, int]:
    base = pi
    for task in tasks:
        base = math.lcm(base, task.period)
        if base > EXACT_TEST_CAP:
            break
    t = base
    for _ in range(10_000):
        demand = dbf_taskset(tasks, t)
        supply = sbf_server(pi, theta, t)
        if demand > supply:
            return t, demand, supply
        t += base
    raise AssertionError(
        "over-utilized VM produced no finite witness; "
        "slack computation is inconsistent"
    )


def _validate_server(pi: int, theta: int) -> None:
    if pi < 1:
        raise ValueError(f"server period must be >= 1, got {pi}")
    if not 0 < theta <= pi:
        raise ValueError(
            f"server budget must satisfy 0 < theta <= pi, got "
            f"theta={theta}, pi={pi}"
        )
