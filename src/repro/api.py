"""Single entry point for building, analyzing and running I/O-GUARD
systems.

The library's power users import from six submodules (``repro.tasks``,
``repro.core``, ``repro.analysis``, ``repro.hw``, ...).  This facade
packages the common workflow behind four verbs and two typed configs::

    from repro.api import SystemConfig, build_system, analyze, admit, simulate

    system = build_system(SystemConfig(tasks=[...]))
    report = analyze(system)          # Theorems 2 + 4, auto-designed servers
    decision = admit(system, task)    # online Theorem-4 admission
    run = simulate(system, horizon=2_000)

Every verdict (``analyze``'s :class:`AnalysisReport`, ``admit``'s
:class:`~repro.core.admission.AdmissionDecision`, the per-layer
G-Sched/L-Sched results reachable from them) satisfies the
:class:`~repro.analysis.result.SchedulabilityResult` protocol:
``schedulable``/``__bool__`` for the verdict, ``failing_t`` for the
witness, ``summary()`` for a rendering.

The commonly needed building blocks (:class:`~repro.tasks.task.IOTask`,
:class:`~repro.tasks.taskset.TaskSet`,
:class:`~repro.core.timeslot.TimeSlotTable`, the dbf/sbf kernels, the
engine selectors) are re-exported here so example code and downstream
scripts need exactly one import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.batched import (
    gsched_schedulable_batch,
    lsched_schedulable_batch,
)
from repro.analysis.demand import dbf_server, dbf_sporadic, dbf_taskset
from repro.analysis.engine import (
    default_engine,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.analysis.gsched_test import (
    GSchedResult,
    gsched_schedulable,
    gsched_schedulable_exact,
    theorem2_bound,
)
from repro.analysis.lsched_test import (
    LSchedResult,
    lsched_schedulable,
    lsched_schedulable_exact,
    theorem4_bound,
)
from repro.analysis.result import ReportBase, SchedulabilityResult
from repro.analysis.servers import (
    ServerDesign,
    bandwidth_of,
    design_servers,
    minimum_budget,
)
from repro.analysis.supply import sbf_server, sbf_sigma
from repro.chains.analysis import ChainBound, HopBound, analyze_chain_set
from repro.chains.generators import (
    ChainWorkload,
    ChainWorkloadConfig,
    generate_chain_workload,
)
from repro.chains.model import CauseEffectChain, validate_chains
from repro.chains.simulate import ChainSimulationReport, simulate_chains
from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    ConfigurationError,
    ControllerSnapshot,
    _warn_deprecated_once,
)
from repro.core.gsched import ServerSpec
from repro.core.hypervisor import HypervisorConfig, IOGuardHypervisor
from repro.core.timeslot import (
    TableOverflowError,
    TimeSlotTable,
    build_pchannel_table,
    stagger_offsets,
)
from repro.core.driver import VirtualizationDriver
from repro.hw import (
    CANController,
    EchoDevice,
    EthernetController,
    FlexRayController,
    GPIOController,
    I2CController,
    IOController,
    SPIController,
    UARTController,
)
from repro.sim.trace import TraceRecorder
from repro.synth.report import SynthesisReport
from repro.synth.servers import ServerSearchOutcome, synthesize_servers
from repro.synth.solvers import (
    SolverUnavailableError,
    default_solver,
    resolve_solver,
    set_default_solver,
    use_solver,
)
from repro.synth.table import TableConstraint, synthesize_table
from repro.tasks.generators import generate_random_taskset
from repro.tasks.task import Criticality, IOTask, Job, TaskKind
from repro.tasks.taskset import TaskSet

__all__ = [
    # facade verbs + configs
    "SystemConfig",
    "ServerConfig",
    "System",
    "build_system",
    "analyze",
    "analyze_many",
    "admit",
    "withdraw",
    "simulate",
    "AnalysisReport",
    "SimulationReport",
    # synthesis
    "synthesize",
    "SynthesisReport",
    "ServerSearchOutcome",
    "synthesize_servers",
    "synthesize_table",
    "TableConstraint",
    "SolverUnavailableError",
    # cause-effect chains
    "ChainConfig",
    "ChainWorkload",
    "ChainWorkloadConfig",
    "CauseEffectChain",
    "ChainBound",
    "HopBound",
    "ChainAnalysisReport",
    "ChainSimulationReport",
    "build_chain_system",
    "generate_chain_workload",
    "validate_chains",
    "analyze_chains",
    "simulate_chains",
    # verdict protocol + concrete results
    "SchedulabilityResult",
    "ReportBase",
    "AdmissionDecision",
    "ConfigurationError",
    "ControllerSnapshot",
    "GSchedResult",
    "LSchedResult",
    # building blocks
    "IOTask",
    "Job",
    "TaskKind",
    "Criticality",
    "TaskSet",
    "TimeSlotTable",
    "TableOverflowError",
    "ServerSpec",
    "AdmissionController",
    "generate_random_taskset",
    # analysis kernels and tests
    "dbf_sporadic",
    "dbf_taskset",
    "dbf_server",
    "sbf_sigma",
    "sbf_server",
    "gsched_schedulable",
    "gsched_schedulable_exact",
    "lsched_schedulable",
    "lsched_schedulable_exact",
    "theorem2_bound",
    "theorem4_bound",
    "minimum_budget",
    "design_servers",
    "ServerDesign",
    # engine selection
    "default_engine",
    "resolve_engine",
    "set_default_engine",
    "use_engine",
    # solver selection (synthesis backends)
    "default_solver",
    "resolve_solver",
    "set_default_solver",
    "use_solver",
]


@dataclass(init=False)
class ServerConfig:
    """One VM's periodic server ``Gamma = (Pi, Theta)``.

    ``theta=None`` pins the period but leaves the budget to the
    synthesis layer: :func:`build_system` computes the minimum
    Theorem-4 budget for the pinned ``pi``.  Omitting the whole
    ``servers`` block synthesizes both parameters (see
    :func:`synthesize`).

    Passing ``pi``/``theta`` positionally -- ``ServerConfig(0, 20, 8)``
    -- is deprecated (one-shot ``DeprecationWarning``): now that
    ``theta`` is optional the positional field order invites silently
    swapped arguments; spell ``ServerConfig(0, pi=20, theta=8)``.
    """

    vm_id: int
    pi: int
    theta: Optional[int]

    def __init__(
        self,
        vm_id: int,
        *args: int,
        pi: Optional[int] = None,
        theta: Optional[int] = None,
    ) -> None:
        if args:
            _warn_deprecated_once(
                "server-config-positional",
                "positional ServerConfig(vm_id, pi, theta) field order is "
                "deprecated; pass the server parameters by keyword: "
                "ServerConfig(vm_id, pi=..., theta=...)",
            )
            if len(args) > 2:
                raise TypeError(
                    "ServerConfig takes at most 3 positional arguments "
                    f"(vm_id, pi, theta), got {1 + len(args)}"
                )
            if pi is not None or (theta is not None and len(args) == 2):
                raise TypeError(
                    "ServerConfig got both positional and keyword values "
                    "for pi/theta"
                )
            pi = args[0]
            if len(args) == 2:
                theta = args[1]
        if pi is None:
            raise TypeError("ServerConfig requires pi (the server period)")
        self.vm_id = vm_id
        self.pi = pi
        self.theta = theta


@dataclass
class SystemConfig:
    """Everything needed to instantiate an I/O-GUARD system.

    Only ``tasks`` is required.  Servers are dimensioned automatically
    (minimum-budget design embedding the Theorem-2 global test) unless
    ``servers`` pins them; the time slot table is packed from the
    pre-defined tasks unless ``table_pattern`` pins it.
    """

    tasks: Sequence[IOTask] = ()
    name: str = "system"
    #: Explicit per-VM servers; ``None`` synthesizes a
    #: bandwidth-minimal design (:mod:`repro.synth`), recorded on
    #: ``System.synthesis``.  Entries with ``theta=None`` pin the
    #: period and synthesize the budget.
    servers: Optional[Sequence[ServerConfig]] = None
    #: Explicit P-channel slot pattern (1 = busy); ``None`` packs the
    #: pre-defined tasks into a table.  Pinned patterns are validated
    #: against the pre-defined jobs (:class:`ConfigurationError` names
    #: the conflicting device/slot pair when hosting is impossible).
    table_pattern: Optional[Sequence[int]] = None
    #: Precedence/time-lag constraints between pre-defined tasks; when
    #: set (and no pattern is pinned) the table comes from
    #: :func:`repro.synth.table.synthesize_table` instead of the greedy
    #: packer.
    table_constraints: Sequence[TableConstraint] = ()
    #: Server-period policy for auto-design (see ``design_servers``).
    policy: str = "min_deadline"
    uniform_period: int = 50
    #: Stagger pre-defined start times before packing the table.
    #: Ignored when ``table_constraints`` are given -- the constraint
    #: model treats the configured release offsets as semantic.
    stagger: bool = True
    #: Slot length for simulation (cycles).
    cycles_per_slot: int = 2_000
    #: Analysis engine ("scalar"/"vectorized"); ``None`` uses the
    #: session default (see :mod:`repro.analysis.engine`).
    engine: Optional[str] = None
    #: Synthesis solver backend ("python"/"ortools"); ``None`` uses the
    #: session default (see :mod:`repro.synth.solvers`).
    solver: Optional[str] = None


class System:
    """A built system: task set, time slot table and servers.

    Create via :func:`build_system`; query and run via
    :func:`analyze`, :func:`admit`, :func:`withdraw` and
    :func:`simulate`.
    """

    def __init__(
        self,
        config: SystemConfig,
        tasks: TaskSet,
        predefined: TaskSet,
        table: TimeSlotTable,
        servers: List[ServerSpec],
        design: Optional[ServerDesign] = None,
        synthesis: Optional[SynthesisReport] = None,
    ) -> None:
        self.config = config
        self.tasks = tasks
        #: Pre-defined tasks with their (possibly staggered) offsets, as
        #: packed into the table.
        self.predefined = predefined
        self.table = table
        self.servers = servers
        #: The auto-design record, when servers were not pinned.
        self.design = design
        #: The full synthesis report (witness + provenance), when the
        #: servers went through :mod:`repro.synth`.
        self.synthesis = synthesis
        self._controller: Optional[AdmissionController] = None

    @property
    def vm_ids(self) -> List[int]:
        return [spec.vm_id for spec in self.servers]

    def server_for(self, vm_id: int) -> ServerSpec:
        for spec in self.servers:
            if spec.vm_id == vm_id:
                return spec
        raise KeyError(f"no server for VM {vm_id}; have {self.vm_ids}")

    @property
    def controller(self) -> AdmissionController:
        """The lazily created admission controller, seeded with the
        system's own run-time tasks.

        Raises :class:`ConfigurationError` (a ``ValueError`` subclass
        carrying ``failing_t`` and the ``(vm_id, pi, theta)`` triples)
        when the configured servers fail the global Theorem-2 test --
        services turn this into a structured rejection, not a 500.
        """
        if self._controller is None:
            controller = AdmissionController(self.table, self.servers)
            for task in self.tasks.runtime():
                decision = controller.try_admit(task)
                if not decision.schedulable:
                    raise ValueError(
                        f"configured task {task.name!r} is not admissible "
                        f"under its own server: {decision.reason}"
                    )
            self._controller = controller
        return self._controller

    def runtime_population(self) -> Dict[int, TaskSet]:
        """Current run-time tasks per VM (admissions included)."""
        if self._controller is not None:
            return {
                vm_id: self._controller.admitted_tasks(vm_id)
                for vm_id in sorted(self.vm_ids)
            }
        return self.tasks.runtime().by_vm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"System({self.config.name!r}, {len(self.tasks)} tasks, "
            f"H={self.table.total_slots}, {len(self.servers)} servers)"
        )


@dataclass
class AnalysisReport(ReportBase):
    """Whole-system verdict from :func:`analyze`.

    Satisfies the :class:`SchedulabilityResult` protocol via the shared
    :class:`ReportBase` plumbing (``__bool__`` mirrors ``schedulable``;
    ``failing_t`` scans the global then the per-VM results); the
    per-layer results are attached for drill-down.
    """

    schedulable: bool
    table: TimeSlotTable
    servers: List[ServerSpec]
    global_result: Optional[GSchedResult] = None
    local_results: Dict[int, LSchedResult] = field(default_factory=dict)
    reason: str = ""

    def _witness_results(self):
        yield self.global_result
        for vm_id in sorted(self.local_results):
            yield self.local_results[vm_id]

    def summary(self) -> str:
        verdict = "schedulable" if self.schedulable else "unschedulable"
        text = (
            f"system: {verdict} "
            f"[H={self.table.total_slots}, F={self.table.free_slots}, "
            f"{len(self.servers)} servers, {len(self.local_results)} VMs]"
        )
        if self.reason:
            text += f" - {self.reason}"
        return text


@dataclass
class SimulationReport:
    """Outcome of one :func:`simulate` run."""

    horizon: int
    completed: int
    deadline_misses: int
    missed_jobs: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.deadline_misses == 0

    def summary(self) -> str:
        return (
            f"simulated {self.horizon} slots: {self.completed} jobs "
            f"completed, {self.deadline_misses} deadline misses"
        )


def _validate_pinned_table(table: TimeSlotTable, predefined: TaskSet) -> None:
    """Check a hand-written pattern can host every pre-defined job.

    Every job of every pre-defined task needs ``C`` *occupied* slots
    inside its release window; jobs are matched to slots EDF-greedily
    (earliest absolute deadline takes the earliest slots), which is
    exact for unit-slot interval scheduling.  Failures raise
    :class:`ConfigurationError` naming the conflicting device/slot pair
    -- not just a witness instant -- so the integrator knows *which*
    table row to fix.
    """
    if len(predefined) == 0:
        return
    h = table.total_slots
    for task in sorted(predefined, key=lambda task: task.name):
        if h % task.period != 0:
            raise ConfigurationError(
                f"pinned table of {h} slots does not tile pre-defined task "
                f"{task.name!r} (device {task.device!r}, period "
                f"{task.period}): H must be a multiple of every pre-defined "
                "period",
                device=task.device,
                slot=task.offset % h,
            )
    jobs = []
    for task in predefined:
        for index in range(h // task.period):
            release = task.offset + index * task.period
            jobs.append((release + task.deadline, release, task, index))
    jobs.sort(key=lambda entry: (entry[0], entry[1], entry[2].name, entry[3]))
    available = set(table.occupied_indices())
    for absolute_deadline, release, task, index in jobs:
        window = [
            slot
            for slot in range(release, absolute_deadline)
            if slot % h in available
        ]
        if len(window) < task.wcet:
            raise ConfigurationError(
                f"pinned table cannot host pre-defined task {task.name!r} "
                f"(device {task.device!r}): job {index} releasing at slot "
                f"{release % h} needs {task.wcet} occupied slots in its "
                f"{task.deadline}-slot window but only {len(window)} are "
                "unclaimed",
                device=task.device,
                slot=release % h,
            )
        for slot in window[: task.wcet]:
            available.discard(slot % h)


def _build_table(
    config: SystemConfig,
    predefined: TaskSet,
    *,
    solver: Optional[str] = None,
) -> TimeSlotTable:
    """The sigma* for a config: pinned, synthesized, or greedily packed."""
    if config.table_pattern is not None:
        table = TimeSlotTable.from_pattern(list(config.table_pattern))
        _validate_pinned_table(table, predefined)
        return table
    if config.table_constraints:
        synthesis = synthesize_table(
            predefined,
            constraints=config.table_constraints,
            solver=solver if solver is not None else config.solver,
        )
        if not synthesis.feasible or synthesis.table is None:
            raise ConfigurationError(
                f"table synthesis failed: {synthesis.reason}",
                device=synthesis.failed_device,
                slot=synthesis.failed_slot,
            )
        return synthesis.table
    return build_pchannel_table(predefined)


def _synthesize_servers_for(
    config: SystemConfig,
    table: TimeSlotTable,
    taskset: TaskSet,
    *,
    engine: Optional[str] = None,
    solver: Optional[str] = None,
) -> Tuple[Optional[SynthesisReport], Optional[ServerSearchOutcome]]:
    """Run server synthesis for every VM the config leaves open.

    Fully specified ``ServerConfig`` entries become fixed pins, entries
    with ``theta=None`` pin the period only, and with no ``servers``
    block at all every VM with run-time tasks is synthesized from
    scratch.  Returns ``(None, None)`` when there is nothing to design
    (no run-time VMs and no pinned servers).
    """
    vm_tasksets = taskset.runtime().by_vm()
    fixed: Dict[int, Tuple[int, int]] = {}
    pinned_periods: Dict[int, int] = {}
    if config.servers is not None:
        for entry in config.servers:
            if entry.theta is not None:
                fixed[entry.vm_id] = (entry.pi, entry.theta)
            else:
                pinned_periods[entry.vm_id] = entry.pi
        for vm_id in sorted(set(fixed) | set(pinned_periods)):
            vm_tasksets.setdefault(vm_id, TaskSet(name=f"vm{vm_id}"))
    if not vm_tasksets:
        return None, None
    engine = engine if engine is not None else config.engine
    outcome = synthesize_servers(
        table,
        vm_tasksets,
        policy=config.policy,
        uniform_period=config.uniform_period,
        fixed=fixed,
        pinned_periods=pinned_periods,
        engine=engine,
    )
    seed_bandwidth: Optional[float] = None
    if outcome.seed is not None and outcome.seed.servers:
        seed_bandwidth = bandwidth_of(
            sorted(outcome.seed.servers.values()) + sorted(fixed.values())
        )
    reason = "; ".join(
        outcome.failures[key] for key in sorted(outcome.failures)
    )
    report = SynthesisReport(
        schedulable=outcome.feasible,
        table=table,
        servers=[
            ServerSpec(vm_id, pi, theta)
            for vm_id, (pi, theta) in sorted(outcome.servers.items())
        ],
        engine=resolve_engine(engine) if engine is not None else "batched",
        solver=resolve_solver(solver if solver is not None else config.solver),
        global_result=outcome.global_result,
        local_results=dict(outcome.local_results),
        reason=reason,
        stats=outcome.stats,
        seed_bandwidth=seed_bandwidth,
        improved=outcome.improved,
        fast_path_vms=outcome.fast_path_vms,
    )
    return report, outcome


def build_system(config: SystemConfig) -> System:
    """Instantiate a system from its configuration.

    Builds the time slot table (packing the pre-defined tasks unless a
    pattern is pinned or constraints request synthesis) and the per-VM
    servers.  Servers the config leaves open -- no ``servers`` block,
    or entries with ``theta=None`` -- are synthesized bandwidth-
    minimally (:mod:`repro.synth`); the full :class:`SynthesisReport`
    lands on ``System.synthesis`` and its design summary on
    ``System.design``.  Raises
    :class:`~repro.core.timeslot.TableOverflowError` when the
    pre-defined tasks cannot be packed and :class:`ConfigurationError`
    (naming the conflicting device/slot pair) when a pinned pattern
    cannot host them.
    """
    taskset = TaskSet(list(config.tasks), name=config.name)
    predefined = taskset.predefined()
    if config.stagger and not config.table_constraints:
        predefined = stagger_offsets(predefined)
    table = _build_table(config, predefined)
    design: Optional[ServerDesign] = None
    synthesis: Optional[SynthesisReport] = None
    if config.servers is not None and all(
        entry.theta is not None for entry in config.servers
    ):
        servers = [
            ServerSpec(entry.vm_id, entry.pi, entry.theta)
            for entry in config.servers
        ]
    else:
        synthesis, outcome = _synthesize_servers_for(config, table, taskset)
        servers = []
        if synthesis is not None and outcome is not None:
            design = outcome.as_design()
            servers = list(synthesis.servers)
    return System(config, taskset, predefined, table, servers, design, synthesis)


def synthesize(
    config: SystemConfig,
    *,
    engine: Optional[str] = None,
    solver: Optional[str] = None,
) -> SynthesisReport:
    """Compute a verified design for the config's open parameters.

    The design-time counterpart of :func:`analyze`: builds sigma*
    (honoring ``table_pattern``/``table_constraints``), searches
    bandwidth-minimal servers for every VM the config leaves open, and
    returns the :class:`SynthesisReport` -- verdict, witness design and
    search provenance.  ``build_system`` on the same config round-trips
    through exactly this path, so the report's servers are the ones a
    built system would run.
    """
    taskset = TaskSet(list(config.tasks), name=config.name)
    predefined = taskset.predefined()
    if config.stagger and not config.table_constraints:
        predefined = stagger_offsets(predefined)
    table = _build_table(config, predefined, solver=solver)
    report, _outcome = _synthesize_servers_for(
        config, table, taskset, engine=engine, solver=solver
    )
    if report is None:
        return SynthesisReport(
            schedulable=True,
            table=table,
            servers=[],
            engine=resolve_engine(engine if engine is not None else config.engine)
            if (engine is not None or config.engine is not None)
            else "batched",
            solver=resolve_solver(solver if solver is not None else config.solver),
            reason="nothing to synthesize: no run-time VMs",
        )
    return report


def analyze(system: System, *, engine: Optional[str] = None) -> AnalysisReport:
    """Run the full Sec. IV analysis on the system's current population.

    Theorem 2 over the servers against the table, then Theorem 4 per VM
    over its run-time tasks (tasks admitted via :func:`admit` count).
    ``engine`` overrides the config's analysis engine for this call.
    """
    engine = engine if engine is not None else system.config.engine
    population = system.runtime_population()
    pairs = [(spec.pi, spec.theta) for spec in system.servers]
    global_result = (
        gsched_schedulable(system.table, pairs, engine=engine) if pairs else None
    )
    local_results: Dict[int, LSchedResult] = {}
    for spec in system.servers:
        tasks = population.get(spec.vm_id, TaskSet(name=f"vm{spec.vm_id}"))
        local_results[spec.vm_id] = lsched_schedulable(
            spec.pi, spec.theta, tasks, engine=engine
        )
    return _assemble_report(system, global_result, local_results)


def _assemble_report(
    system: System,
    global_result: Optional[GSchedResult],
    local_results: Dict[int, LSchedResult],
) -> AnalysisReport:
    """Fold per-layer results into the system verdict and reason."""
    design_failures = dict(system.design.failures) if system.design else {}
    global_ok = global_result is None or global_result.schedulable
    all_local = all(result.schedulable for result in local_results.values())
    schedulable = global_ok and all_local and not design_failures
    reason = ""
    if design_failures:
        reason = "; ".join(
            design_failures[vm_id] for vm_id in sorted(design_failures)
        )
    elif not global_ok:
        reason = "global Theorem-2 test failed"
    elif not all_local:
        failing = sorted(
            vm_id
            for vm_id, result in local_results.items()
            if not result.schedulable
        )
        reason = f"local Theorem-4 test failed for VMs {failing}"
    return AnalysisReport(
        schedulable=schedulable,
        table=system.table,
        servers=system.servers,
        global_result=global_result,
        local_results=local_results,
        reason=reason,
    )


def analyze_many(
    systems: Sequence[System], *, engine: Optional[str] = None
) -> List[AnalysisReport]:
    """:func:`analyze` over many systems, batching the analysis kernels.

    With the ``"batched"`` engine (explicitly, or via the session
    default) every system's Theorem-2 request and every VM's Theorem-4
    lane across *all* systems are packed into two batch calls
    (:mod:`repro.analysis.batched`) instead of one engine dispatch per
    pair; report ``i`` is bit-identical to ``analyze(systems[i])``.  Any
    other engine degrades to the per-system loop.
    """
    systems = list(systems)
    if resolve_engine(engine) != "batched":
        return [analyze(system, engine=engine) for system in systems]
    gsched_requests = []
    gsched_owners: List[int] = []
    lsched_requests = []
    lsched_owners: List[Tuple[int, int]] = []
    for index, system in enumerate(systems):
        population = system.runtime_population()
        pairs = [(spec.pi, spec.theta) for spec in system.servers]
        if pairs:
            gsched_requests.append((system.table, pairs))
            gsched_owners.append(index)
        for spec in system.servers:
            tasks = population.get(spec.vm_id, TaskSet(name=f"vm{spec.vm_id}"))
            lsched_requests.append((spec.pi, spec.theta, tasks))
            lsched_owners.append((index, spec.vm_id))
    global_results: List[Optional[GSchedResult]] = [None] * len(systems)
    for owner, result in zip(
        gsched_owners, gsched_schedulable_batch(gsched_requests)
    ):
        global_results[owner] = result
    local_results: List[Dict[int, LSchedResult]] = [{} for _ in systems]
    for (owner, vm_id), result in zip(
        lsched_owners, lsched_schedulable_batch(lsched_requests)
    ):
        local_results[owner][vm_id] = result
    return [
        _assemble_report(system, global_results[index], local_results[index])
        for index, system in enumerate(systems)
    ]


def admit(system: System, task: IOTask) -> AdmissionDecision:
    """Online Theorem-4 admission of one run-time task.

    Delegates to the system's :class:`AdmissionController` (created on
    first use, seeded with the configured run-time tasks); admitted
    tasks join the population seen by :func:`analyze` and
    :func:`simulate`.
    """
    return system.controller.try_admit(task)


def withdraw(system: System, vm_id: int, task_name: str) -> IOTask:
    """Remove a previously admitted run-time task, freeing its demand."""
    return system.controller.withdraw(vm_id, task_name)


@dataclass
class ChainConfig:
    """Everything needed to build and analyze a chain system.

    Bundles a :class:`ChainWorkloadConfig` (what the chains look like)
    with the build knobs of :class:`SystemConfig`; one ``seed`` pins
    the whole draw, so a config replays bit-identically.
    """

    seed: int = 2021
    workload: ChainWorkloadConfig = field(default_factory=ChainWorkloadConfig)
    name: str = "chains"
    #: Server-period policy for auto-design (see ``design_servers``).
    policy: str = "min_deadline"
    uniform_period: int = 50
    cycles_per_slot: int = 2_000
    engine: Optional[str] = None


@dataclass
class ChainAnalysisReport(ReportBase):
    """Whole-system chain verdict from :func:`analyze_chains`.

    ``base`` carries the Theorem 2 + 4 schedulability verdict; the
    end-to-end bounds are only meaningful when it holds *and* every
    hop's response-time iteration converged (:attr:`bounded`).
    ``__bool__``/``failing_t`` come from :class:`ReportBase`: the
    verdict mirrors :attr:`schedulable`, the witness delegates to the
    base report (chain bounds carry no witness instant).
    """

    base: AnalysisReport
    chains: Dict[str, ChainBound]
    engine: str

    @property
    def bounded(self) -> bool:
        return all(bound.bounded for bound in self.chains.values())

    @property
    def schedulable(self) -> bool:
        return self.base.schedulable and self.bounded

    def _witness_results(self):
        return self.base._witness_results()

    def data_age_bound(self, chain_name: str) -> Optional[int]:
        return self.chains[chain_name].data_age_bound

    def reaction_time_bound(self, chain_name: str) -> Optional[int]:
        return self.chains[chain_name].reaction_time_bound

    def summary(self) -> str:
        lines = [self.base.summary()]
        for chain_name in sorted(self.chains):
            lines.append(self.chains[chain_name].summary())
        return "\n".join(lines)


def build_chain_system(
    config: ChainConfig,
) -> Tuple[System, Tuple[CauseEffectChain, ...]]:
    """Generate a chain workload and build the system hosting it."""
    workload = generate_chain_workload(
        config.seed, config.workload, name=config.name
    )
    system = build_system(
        SystemConfig(
            tasks=workload.taskset.tasks,
            name=config.name,
            policy=config.policy,
            uniform_period=config.uniform_period,
            cycles_per_slot=config.cycles_per_slot,
            engine=config.engine,
        )
    )
    return system, workload.chains


def analyze_chains(
    system: System,
    chains: Sequence[CauseEffectChain],
    *,
    engine: Optional[str] = None,
) -> ChainAnalysisReport:
    """Bound every chain's end-to-end latency over the system's schedule.

    Runs the full :func:`analyze` verdict, then composes per-hop
    response-time bounds (R-channel hops against their VM's server and
    *entire* current run-time population, P-channel hops against their
    table placement) into max-data-age and max-reaction-time bounds;
    see :mod:`repro.chains.analysis` for the semantics.  Tasks admitted
    via :func:`admit` count toward the interfering demand.
    """
    engine = engine if engine is not None else system.config.engine
    base = analyze(system, engine=engine)
    population = system.runtime_population()
    tasks = TaskSet(name=f"{system.config.name}.population")
    for task in system.predefined:
        tasks.add(task)
    for vm_id in sorted(population):
        for task in population[vm_id]:
            tasks.add(task)
    servers = {spec.vm_id: spec for spec in system.servers}
    bounds = analyze_chain_set(
        tuple(chains), tasks, servers, engine=engine
    )
    return ChainAnalysisReport(
        base=base, chains=bounds, engine=resolve_engine(engine)
    )


#: Device-name prefixes mapped to their protocol controller; anything
#: else gets the generic timing model.
_CONTROLLER_PREFIXES: Tuple[Tuple[str, type], ...] = (
    ("spi", SPIController),
    ("i2c", I2CController),
    ("uart", UARTController),
    ("eth", EthernetController),
    ("flexray", FlexRayController),
    ("can", CANController),
    ("gpio", GPIOController),
)


def _controller_for(device: str) -> IOController:
    """Instantiate a controller matching the device's naming convention."""
    lowered = device.lower()
    for prefix, controller_cls in _CONTROLLER_PREFIXES:
        if lowered.startswith(prefix):
            return controller_cls(name=device)
    return IOController(name=device)


def simulate(
    system: System, horizon: int, *, trace: Optional[TraceRecorder] = None
) -> SimulationReport:
    """Execute the system for ``horizon`` slots on the hypervisor model.

    Attaches one generic driver/device pair per distinct ``device`` name
    in the task set, loads the pre-defined tasks into the P-channel and
    releases every run-time job periodically.  Returns completion and
    deadline-miss counts; with a ``schedulable`` analysis verdict the
    miss count must be zero.

    ``trace`` attaches a recorder to the hypervisor and every device
    manager; :mod:`repro.obs` derives job and chain spans from the
    recorded events.  Tracing is observation only -- attaching it
    cannot change the run's outcome.
    """
    if horizon < 0:
        raise ValueError(f"cannot simulate a negative horizon: {horizon}")
    hypervisor = IOGuardHypervisor(
        HypervisorConfig(
            cycles_per_slot=system.config.cycles_per_slot, trace=trace
        )
    )
    population = system.runtime_population()
    runtime_tasks = [
        task for vm_id in sorted(population) for task in population[vm_id]
    ]
    devices = sorted(
        {task.device for task in system.predefined}
        | {task.device for task in runtime_tasks}
    )
    for device in devices:
        driver = VirtualizationDriver(
            _controller_for(device), EchoDevice(f"{device}.dev")
        )
        on_device = TaskSet(
            [task for task in system.predefined if task.device == device],
            name=f"{device}.predefined",
        )
        hypervisor.attach_device(device, driver, on_device, system.servers)
    releases: List[Tuple[int, IOTask, int]] = []
    for task in runtime_tasks:
        release, index = 0, 0
        while release < horizon:
            releases.append((release, task, index))
            release += task.period
            index += 1
    releases.sort(key=lambda entry: entry[0])
    cursor = 0
    for slot in range(horizon):
        while cursor < len(releases) and releases[cursor][0] == slot:
            _slot, task, index = releases[cursor]
            hypervisor.submit(task.job(release=slot, index=index))
            cursor += 1
        hypervisor.step(slot)
    completed = hypervisor.completed_jobs
    missed = [job for job in completed if job.met_deadline() is False]
    return SimulationReport(
        horizon=horizon,
        completed=len(completed),
        deadline_misses=len(missed),
        missed_jobs=[job.name for job in missed],
    )
