"""Chain-latency experiment: analysis bounds vs simulated latencies.

Sweeps chain length x target utilization; every cell generates a few
random chain workloads (WATERS-style periods, UUniFast utilizations),
bounds every chain's max data age / max reaction time analytically, and
simulates the same system to measure both.  The rendered output pairs
the curves; the cell-level ``violations`` column is the differential
contract in experiment form -- a non-zero count means a simulated
instance beat its bound, and the CLI exits non-zero.

Cells are mapped through the :class:`~repro.exp.runner.ExperimentRunner`
and draw all randomness from per-cell derived seeds, so results are
bit-identical for every ``--jobs`` setting and across reruns (the
export artifacts are compared byte-for-byte in CI).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.api import (
    ChainConfig,
    ChainWorkloadConfig,
    analyze_chains,
    build_chain_system,
    simulate_chains,
)
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.sim.rng import derive_seed

PathLike = Union[str, Path]

#: Small-period WATERS subset (slots): keeps cell hyperperiods tiny so
#: a few thousand simulated slots observe many chain instances.
SWEEP_PERIODS: Tuple[int, ...] = (10, 20, 50, 100)
SWEEP_PERIOD_WEIGHTS: Tuple[float, ...] = (25, 25, 3, 20)


@dataclass(frozen=True)
class ChainsSweepConfig:
    """The sweep grid and per-cell workload shape."""

    seed: int = 2021
    chain_lengths: Tuple[int, ...] = (2, 3, 4)
    utilizations: Tuple[float, ...] = (0.3, 0.5, 0.7)
    trials: int = 2
    chain_count: int = 3
    vm_count: int = 2
    horizon_slots: int = 2_000
    periods: Tuple[int, ...] = SWEEP_PERIODS
    period_weights: Tuple[float, ...] = SWEEP_PERIOD_WEIGHTS


@dataclass(frozen=True)
class _ChainCell:
    """One picklable sweep cell (length x utilization)."""

    length: int
    utilization: float
    config: ChainsSweepConfig


@dataclass(frozen=True)
class ChainCellResult:
    """Aggregates over one cell's trials."""

    length: int
    utilization: float
    systems: int
    schedulable_systems: int
    chain_instances: int
    reaction_samples: int
    #: Largest analytical bound / observed value across the cell's
    #: schedulable systems (None when none were schedulable).
    max_age_bound: Optional[int]
    max_age_observed: Optional[int]
    max_reaction_bound: Optional[int]
    max_reaction_observed: Optional[int]
    #: Simulated instances exceeding their analytical bound -- the
    #: differential contract says this must be zero.
    violations: int


@dataclass
class ChainsSweepResult:
    config: ChainsSweepConfig
    cells: List[ChainCellResult]

    @property
    def total_violations(self) -> int:
        return sum(cell.violations for cell in self.cells)

    @property
    def total_instances(self) -> int:
        return sum(cell.chain_instances for cell in self.cells)


def _run_chain_cell(cell: _ChainCell) -> ChainCellResult:
    """Generate, analyze and simulate every trial of one cell."""
    config = cell.config
    systems = 0
    schedulable = 0
    instances = 0
    reactions = 0
    violations = 0
    max_age_bound: Optional[int] = None
    max_age_observed: Optional[int] = None
    max_reaction_bound: Optional[int] = None
    max_reaction_observed: Optional[int] = None
    for trial in range(config.trials):
        seed = derive_seed(
            config.seed,
            f"chains.L{cell.length}.u{cell.utilization:.3f}.t{trial}",
        )
        chain_config = ChainConfig(
            seed=seed,
            workload=ChainWorkloadConfig(
                chain_count=config.chain_count,
                hops_min=cell.length,
                hops_max=cell.length,
                total_utilization=cell.utilization,
                vm_count=config.vm_count,
                periods=config.periods,
                period_weights=config.period_weights,
            ),
        )
        systems += 1
        system, chains = build_chain_system(chain_config)
        report = analyze_chains(system, chains)
        if not report.schedulable:
            continue
        schedulable += 1
        sim = simulate_chains(system, chains, horizon=config.horizon_slots)
        for chain in chains:
            age_bound = report.data_age_bound(chain.name)
            reaction_bound = report.reaction_time_bound(chain.name)
            assert age_bound is not None and reaction_bound is not None
            if max_age_bound is None or age_bound > max_age_bound:
                max_age_bound = age_bound
            if (
                max_reaction_bound is None
                or reaction_bound > max_reaction_bound
            ):
                max_reaction_bound = reaction_bound
            for instance in sim.instances[chain.name]:
                instances += 1
                if instance.data_age > age_bound:
                    violations += 1
                if (
                    max_age_observed is None
                    or instance.data_age > max_age_observed
                ):
                    max_age_observed = instance.data_age
            for sample in sim.reactions[chain.name]:
                reactions += 1
                if sample.reaction > reaction_bound:
                    violations += 1
                if (
                    max_reaction_observed is None
                    or sample.reaction > max_reaction_observed
                ):
                    max_reaction_observed = sample.reaction
    return ChainCellResult(
        length=cell.length,
        utilization=cell.utilization,
        systems=systems,
        schedulable_systems=schedulable,
        chain_instances=instances,
        reaction_samples=reactions,
        max_age_bound=max_age_bound,
        max_age_observed=max_age_observed,
        max_reaction_bound=max_reaction_bound,
        max_reaction_observed=max_reaction_observed,
        violations=violations,
    )


def run_chains_sweep(
    config: ChainsSweepConfig = ChainsSweepConfig(),
    runner: Optional[ExperimentRunner] = None,
) -> ChainsSweepResult:
    """Run the sweep; bit-identical for every worker count."""
    runner = runner or ExperimentRunner(1)
    cells = [
        _ChainCell(length=length, utilization=utilization, config=config)
        for length in config.chain_lengths
        for utilization in config.utilizations
    ]
    results = runner.map(_run_chain_cell, cells, label="chains")
    return ChainsSweepResult(config=config, cells=list(results))


def _bar(value: Optional[int], scale: int, width: int = 32) -> str:
    if value is None:
        return "(no schedulable system)"
    filled = 0 if scale <= 0 else round(width * value / scale)
    return "#" * filled + "." * (width - filled) + f" {value}"


def render_chains_sweep(result: ChainsSweepResult) -> str:
    """ASCII table plus analysis-vs-simulation latency bars."""
    rows = []
    for cell in result.cells:
        rows.append(
            [
                cell.length,
                f"{cell.utilization:.2f}",
                cell.systems,
                cell.schedulable_systems,
                cell.chain_instances,
                cell.max_age_bound if cell.max_age_bound is not None else "-",
                cell.max_age_observed
                if cell.max_age_observed is not None
                else "-",
                cell.max_reaction_bound
                if cell.max_reaction_bound is not None
                else "-",
                cell.max_reaction_observed
                if cell.max_reaction_observed is not None
                else "-",
                cell.violations,
            ]
        )
    table = render_table(
        [
            "hops",
            "util",
            "systems",
            "sched",
            "instances",
            "age bound",
            "age obs",
            "react bound",
            "react obs",
            "violations",
        ],
        rows,
        title="Cause-effect chains: analysis bounds vs simulated latencies",
    )
    scale = max(
        (cell.max_reaction_bound or 0 for cell in result.cells), default=0
    )
    lines = [table, "", "max data age, analysis (=) vs simulation (#):"]
    for cell in result.cells:
        label = f"L{cell.length} u{cell.utilization:.2f}"
        bound_bar = _bar(cell.max_age_bound, scale).replace("#", "=")
        lines.append(f"  {label} bound {bound_bar}")
        lines.append(f"  {label} sim   {_bar(cell.max_age_observed, scale)}")
    lines.append(
        f"differential: {result.total_instances} instances, "
        f"{result.total_violations} bound violations"
    )
    return "\n".join(lines)


def export_chains_json(result: ChainsSweepResult, path: PathLike) -> Path:
    """Nested JSON artifact; byte-identical across reruns and --jobs."""
    path = Path(path)
    payload = {
        "config": {
            "seed": result.config.seed,
            "chain_lengths": list(result.config.chain_lengths),
            "utilizations": list(result.config.utilizations),
            "trials": result.config.trials,
            "chain_count": result.config.chain_count,
            "vm_count": result.config.vm_count,
            "horizon_slots": result.config.horizon_slots,
            "periods": list(result.config.periods),
        },
        "cells": [
            {
                "length": cell.length,
                "utilization": cell.utilization,
                "systems": cell.systems,
                "schedulable_systems": cell.schedulable_systems,
                "chain_instances": cell.chain_instances,
                "reaction_samples": cell.reaction_samples,
                "max_age_bound": cell.max_age_bound,
                "max_age_observed": cell.max_age_observed,
                "max_reaction_bound": cell.max_reaction_bound,
                "max_reaction_observed": cell.max_reaction_observed,
                "violations": cell.violations,
            }
            for cell in result.cells
        ],
        "total_instances": result.total_instances,
        "total_violations": result.total_violations,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def export_chains_csv(result: ChainsSweepResult, path: PathLike) -> Path:
    """One row per sweep cell."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "length",
                "utilization",
                "systems",
                "schedulable_systems",
                "chain_instances",
                "reaction_samples",
                "max_age_bound",
                "max_age_observed",
                "max_reaction_bound",
                "max_reaction_observed",
                "violations",
            ]
        )
        for cell in result.cells:
            writer.writerow(
                [
                    cell.length,
                    cell.utilization,
                    cell.systems,
                    cell.schedulable_systems,
                    cell.chain_instances,
                    cell.reaction_samples,
                    cell.max_age_bound,
                    cell.max_age_observed,
                    cell.max_reaction_bound,
                    cell.max_reaction_observed,
                    cell.violations,
                ]
            )
    return path
