"""Analysis-engine benchmark: the same pinned sweep on every engine.

Runs a fig7-style acceptance sweep once per engine -- the scalar
reference, the vectorized QPA engine, and the batched engine (which
submits each utilization level's whole column of task sets as one
:func:`~repro.analysis.batched.lsched_schedulable_batch` call) -- and
reports per-engine wall time plus a byte-comparison of the rendered
acceptance output.  The sweep is pinned (fixed seed, fixed workload
recipe) so CI can assert three invariants:

* **identical output**: all engines must render byte-identical
  acceptance tables (bit-identical verdicts);
* **speedup**: the vectorized engine must beat the scalar engine by the
  requested factor on this workload;
* **batched speedup**: the batched engine must beat the per-pair
  vectorized engine by the requested factor.

:func:`write_bench_history` records the run as ``BENCH_analysis.json``
-- a schema-stable snapshot committed at the repo root so CI can compare
a fresh run against the recorded baseline
(:func:`validate_bench_schema` checks both sides).

The workload targets the regime the vectorized engine is built for:
near-boundary utilization under a (Pi=20, Theta=14) server with
slightly-constrained deadlines ``D = max(C, T - T/8..T/4)``.  Such
systems are mostly schedulable, so the Theorem-4 window must be swept
(nearly) to its horizon -- exactly where per-``t`` Python loops drown
and the numpy step-point sweep pays off.  Low-utilization or
failure-dominated draws would measure nothing: their windows end after
a handful of points either way.  Periods come from the pinned
prime-factorization basis :data:`BENCH_BASIS`
(:class:`~repro.tasks.generators.HyperperiodBasis`), the workload
recipe the batched engine is co-designed with: every period divides the
3600-slot basis hyper-period, so the batched engine builds each lane's
step grid and demand curve from one hyper-period and *tiles* it across
the Theorem-4 horizon, while the per-pair engines enumerate the full
window.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.batched import lsched_schedulable_batch
from repro.analysis.cache import clear_caches
from repro.analysis.engine import ENGINES
from repro.analysis.lsched_test import lsched_schedulable
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.sim.rng import RandomSource
from repro.tasks.generators import HyperperiodBasis
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

#: Pinned sweep: utilization levels and samples per level.
BENCH_UTILIZATIONS: Tuple[float, ...] = (0.60, 0.62, 0.64)
BENCH_SAMPLES = 60
BENCH_SERVER: Tuple[int, int] = (20, 14)
BENCH_PERIODS: Tuple[int, int] = (40, 600)
BENCH_TASK_COUNTS: Tuple[int, ...] = (10, 12, 14)
#: Timed passes per engine; the minimum is reported.  One pass is a few
#: tens of milliseconds, so a scheduler hiccup lands squarely in the
#: measured window -- the min over a handful of passes is the standard
#: noise-robust statistic and keeps the CI speedup gate from flaking.
BENCH_REPETITIONS = 3
#: Prime-factorization period basis (hyper-period 2^4 * 3^2 * 5^2 =
#: 3600): the workload recipe the batched engine's tiled grids target.
BENCH_BASIS = HyperperiodBasis(
    factors=(2, 2, 2, 2, 3, 3, 5, 5),
    period_min=BENCH_PERIODS[0],
    period_max=BENCH_PERIODS[1],
)

#: Version of the committed ``BENCH_analysis.json`` record; bump when
#: its structure changes, and keep :func:`validate_bench_schema` in step.
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCell:
    """One utilization level of the benchmark sweep, for one engine."""

    engine: str
    pi: int
    theta: int
    utilization: float
    samples: int
    seed: int


@dataclass
class EngineRun:
    """One engine's pass over the pinned sweep."""

    engine: str
    output: str
    elapsed_seconds: float


@dataclass
class AnalysisBenchResult:
    """Every engine's pass plus the comparisons CI asserts on."""

    runs: List[EngineRun]
    seed: int = 2021
    samples: int = BENCH_SAMPLES

    def run_for(self, engine: str) -> EngineRun:
        for run in self.runs:
            if run.engine == engine:
                return run
        raise KeyError(f"no run for engine {engine!r}")

    def has_engine(self, engine: str) -> bool:
        return any(run.engine == engine for run in self.runs)

    @property
    def outputs_identical(self) -> bool:
        outputs = {run.output for run in self.runs}
        return len(outputs) == 1

    def speedup_over(self, baseline: str, engine: str) -> float:
        """Baseline wall time over ``engine`` wall time."""
        base = self.run_for(baseline).elapsed_seconds
        fast = self.run_for(engine).elapsed_seconds
        if fast <= 0:
            return float("inf")
        return base / fast

    @property
    def speedup(self) -> float:
        """Scalar wall time over vectorized wall time."""
        return self.speedup_over("scalar", "vectorized")

    @property
    def batched_speedup(self) -> float:
        """Vectorized wall time over batched wall time."""
        return self.speedup_over("vectorized", "batched")

    def as_dict(self) -> Dict[str, object]:
        return {
            "engines": {
                run.engine: {"elapsed_seconds": run.elapsed_seconds}
                for run in self.runs
            },
            "outputs_identical": self.outputs_identical,
            "speedup": self.speedup,
            "speedups": _speedups_dict(self),
            "server": list(BENCH_SERVER),
            "samples_per_level": self.samples,
            "utilizations": list(BENCH_UTILIZATIONS),
        }


def bench_taskset(
    seed: int,
    task_count: int,
    utilization: float,
    basis: HyperperiodBasis = BENCH_BASIS,
) -> TaskSet:
    """One pinned near-boundary task set.

    Periods from the :data:`BENCH_BASIS` prime-factorization sampler
    (every period divides the 3600-slot basis hyper-period, the regime
    the batched engine's tiled grids exploit); utilization shares via a
    normalized draw; deadlines slightly constrained below the period
    (``D = max(C, T - T/8..T/4)``), which pushes step points off the
    period grid and grows the Theorem-4 horizon without tipping the set
    into trivial unschedulability.
    """
    rng = RandomSource(seed, "analysis-bench")
    shares = [rng.random() for _ in range(task_count)]
    scale = utilization / sum(shares)
    tasks = []
    for index, share in enumerate(shares):
        period = basis.sample_period(rng)
        wcet = max(1, round(share * scale * period))
        deadline = max(wcet, period - rng.randint(period // 8, period // 4))
        tasks.append(
            IOTask(
                name=f"bench.{seed}.{index}",
                period=period,
                wcet=wcet,
                deadline=deadline,
            )
        )
    return TaskSet(tasks, name=f"bench.{seed}")


def run_bench_cell(cell: BenchCell) -> Tuple[float, int, float]:
    """Acceptance count and engine seconds for one utilization level.

    The per-pair engines dispatch one :func:`lsched_schedulable` call
    per sample; the batched engine submits the level's whole column of
    task sets as a single
    :func:`~repro.analysis.batched.lsched_schedulable_batch` call --
    the usage pattern the batched engine exists for.  Task-set
    generation is identical either way (same seeds, same draws), so the
    verdict columns must match byte for byte.  Only the engine calls
    are timed: generation time is engine-independent and would dilute
    the speedup this benchmark exists to gate.
    """
    tasksets = [
        bench_taskset(
            cell.seed + index * 7919,
            BENCH_TASK_COUNTS[index % len(BENCH_TASK_COUNTS)],
            cell.utilization,
        )
        for index in range(cell.samples)
    ]
    started = time.perf_counter()  # iolint: disable=IOL003 -- host-side benchmark timing
    if cell.engine == "batched":
        results = lsched_schedulable_batch(
            [(cell.pi, cell.theta, tasks) for tasks in tasksets]
        )
    else:
        results = [
            lsched_schedulable(cell.pi, cell.theta, tasks, engine=cell.engine)
            for tasks in tasksets
        ]
    elapsed = time.perf_counter() - started  # iolint: disable=IOL003 -- host-side benchmark timing
    accepted = sum(1 for result in results if result.schedulable)
    return cell.utilization, accepted, elapsed


def _render(rows: Sequence[Tuple[float, int]], samples: int) -> str:
    pi, theta = BENCH_SERVER
    # The engine name stays OUT of the rendered table: the whole point
    # is that both engines must render these exact bytes.
    return render_table(
        ["utilization", "accepted", "ratio"],
        [(u, accepted, accepted / samples) for u, accepted in rows],
        title=(
            f"Theorem-4 acceptance under (Pi={pi}, Theta={theta}), "
            f"{samples} near-boundary sets/point"
        ),
    )


def run_analysis_bench(
    *,
    seed: int = 2021,
    samples: int = BENCH_SAMPLES,
    engines: Sequence[str] = ENGINES,
    repetitions: int = BENCH_REPETITIONS,
    runner: Optional[ExperimentRunner] = None,
) -> AnalysisBenchResult:
    """Run the pinned sweep per engine; best of ``repetitions`` passes.

    ``elapsed_seconds`` per engine is the *minimum* over ``repetitions``
    cold-cache passes of the summed engine time reported by the cells
    (analysis calls only -- task-set generation is identical across
    engines and excluded; the minimum discards scheduler hiccups, which
    only ever inflate a pass).  Wall-clock phases still land in the
    runner's :class:`TimingSummary` (labels ``analysis-bench[<engine>]``)
    so ``timing.json`` carries them too.  The sweep always runs serially
    within one engine: parallel workers would overlap the measurements.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    runner = runner if runner is not None else ExperimentRunner(1)
    pi, theta = BENCH_SERVER
    runs: List[EngineRun] = []
    for engine in engines:
        cells = [
            BenchCell(
                engine=engine,
                pi=pi,
                theta=theta,
                utilization=utilization,
                samples=samples,
                seed=seed,
            )
            for utilization in BENCH_UTILIZATIONS
        ]
        output = ""
        best_elapsed = float("inf")
        for _repetition in range(repetitions):
            # Cold caches per pass: the memoized kernels are shared, and
            # a warm second pass would not measure the engine at all.
            clear_caches()
            rows = runner.map(
                run_bench_cell, cells, label=f"analysis-bench[{engine}]"
            )
            # The verdict columns are pinned, so every pass renders the
            # same bytes; only the timing varies.
            output = _render(
                [(u, accepted) for u, accepted, _seconds in rows], samples
            )
            best_elapsed = min(
                best_elapsed, sum(seconds for _u, _a, seconds in rows)
            )
        runs.append(
            EngineRun(
                engine=engine, output=output, elapsed_seconds=best_elapsed
            )
        )
    return AnalysisBenchResult(runs=runs, seed=seed, samples=samples)


def render_analysis_bench(result: AnalysisBenchResult) -> str:
    lines = [result.runs[0].output if result.runs else "", ""]
    for run in result.runs:
        lines.append(
            f"engine={run.engine}: {run.elapsed_seconds:.3f} s"
        )
    lines.append(
        "outputs identical: "
        + ("yes" if result.outputs_identical else "NO - ENGINES DISAGREE")
    )
    lines.append(f"vectorized speedup: {result.speedup:.2f}x")
    if result.has_engine("batched"):
        lines.append(
            f"batched speedup over vectorized: {result.batched_speedup:.2f}x"
        )
    return "\n".join(lines)


def export_analysis_bench_json(
    result: AnalysisBenchResult, path: Path
) -> Path:
    """Machine-readable benchmark record (merged into ``timing.json``)."""
    path = Path(path)
    path.write_text(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    return path


# -- BENCH_analysis.json history record --------------------------------------


def _speedups_dict(result: AnalysisBenchResult) -> Dict[str, Optional[float]]:
    both = result.has_engine("scalar") and result.has_engine("vectorized")
    batched = result.has_engine("vectorized") and result.has_engine("batched")
    return {
        "vectorized_over_scalar": result.speedup if both else None,
        "batched_over_vectorized": result.batched_speedup if batched else None,
    }


def bench_history_record(result: AnalysisBenchResult) -> Dict[str, object]:
    """The schema-stable record committed as ``BENCH_analysis.json``.

    Structural contract enforced by :func:`validate_bench_schema`;
    absolute times vary by host, so CI compares *structure* (and the
    recorded speedups' presence), never wall-clock values.
    """
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "sweep": {
            "seed": result.seed,
            "samples_per_level": result.samples,
            "server": list(BENCH_SERVER),
            "task_counts": list(BENCH_TASK_COUNTS),
            "periods": list(BENCH_PERIODS),
            "utilizations": list(BENCH_UTILIZATIONS),
        },
        "engines": {
            run.engine: {"elapsed_seconds": run.elapsed_seconds}
            for run in result.runs
        },
        "speedups": _speedups_dict(result),
        "outputs_identical": result.outputs_identical,
    }


def write_bench_history(result: AnalysisBenchResult, path: Path) -> Path:
    record = bench_history_record(result)
    problems = validate_bench_schema(record)
    if problems:
        raise ValueError(
            "refusing to write an invalid bench record: " + "; ".join(problems)
        )
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


_SWEEP_KEYS = (
    "seed",
    "samples_per_level",
    "server",
    "task_counts",
    "periods",
    "utilizations",
)


def validate_bench_schema(doc: object) -> List[str]:
    """Structural check of a ``BENCH_analysis.json`` document.

    Returns a list of human-readable problems; empty means valid.  Used
    by CI against both the committed baseline and a fresh run.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    sweep = doc.get("sweep")
    if not isinstance(sweep, dict):
        problems.append("missing 'sweep' object")
    else:
        for key in _SWEEP_KEYS:
            if key not in sweep:
                problems.append(f"sweep lacks {key!r}")
    engines = doc.get("engines")
    if not isinstance(engines, dict) or not engines:
        problems.append("missing non-empty 'engines' object")
    else:
        for name, entry in engines.items():
            elapsed = entry.get("elapsed_seconds") if isinstance(entry, dict) else None
            if not isinstance(elapsed, (int, float)) or elapsed <= 0:
                problems.append(
                    f"engine {name!r} lacks a positive elapsed_seconds"
                )
    speedups = doc.get("speedups")
    if not isinstance(speedups, dict):
        problems.append("missing 'speedups' object")
    else:
        for key in ("vectorized_over_scalar", "batched_over_vectorized"):
            if key not in speedups:
                problems.append(f"speedups lacks {key!r}")
            elif speedups[key] is not None and not isinstance(
                speedups[key], (int, float)
            ):
                problems.append(f"speedups[{key!r}] is not numeric or null")
    if not isinstance(doc.get("outputs_identical"), bool):
        problems.append("missing boolean 'outputs_identical'")
    return problems
