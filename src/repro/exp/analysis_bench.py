"""Analysis-engine benchmark: the same pinned sweep on both engines.

Runs a fig7-style acceptance sweep twice -- once with the scalar
reference engine, once with the vectorized QPA engine -- and reports
per-engine wall time plus a byte-comparison of the rendered acceptance
output.  The sweep is pinned (fixed seed, fixed workload recipe) so CI
can assert two invariants:

* **identical output**: both engines must render byte-identical
  acceptance tables (bit-identical verdicts);
* **speedup**: the vectorized engine must beat the scalar engine by the
  requested factor on this workload.

The workload targets the regime the vectorized engine is built for:
near-boundary utilization under a (Pi=20, Theta=14) server with
slightly-constrained deadlines ``D = max(C, T - T/8..T/4)``.  Such
systems are mostly schedulable, so the Theorem-4 window must be swept
(nearly) to its horizon -- exactly where per-``t`` Python loops drown
and the numpy step-point sweep pays off.  Low-utilization or
failure-dominated draws would measure nothing: their windows end after
a handful of points either way.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import clear_caches
from repro.analysis.engine import ENGINES
from repro.analysis.lsched_test import lsched_schedulable
from repro.exp.reporting import render_table
from repro.exp.runner import ExperimentRunner
from repro.sim.rng import RandomSource
from repro.tasks.task import IOTask
from repro.tasks.taskset import TaskSet

#: Pinned sweep: utilization levels and samples per level.
BENCH_UTILIZATIONS: Tuple[float, ...] = (0.66, 0.67, 0.68)
BENCH_SAMPLES = 30
BENCH_SERVER: Tuple[int, int] = (20, 14)
BENCH_PERIODS: Tuple[int, int] = (40, 600)
BENCH_TASK_COUNTS: Tuple[int, ...] = (12, 14, 16)


@dataclass(frozen=True)
class BenchCell:
    """One utilization level of the benchmark sweep, for one engine."""

    engine: str
    pi: int
    theta: int
    utilization: float
    samples: int
    seed: int


@dataclass
class EngineRun:
    """One engine's pass over the pinned sweep."""

    engine: str
    output: str
    elapsed_seconds: float


@dataclass
class AnalysisBenchResult:
    """Both engines' passes plus the comparison CI asserts on."""

    runs: List[EngineRun]

    def run_for(self, engine: str) -> EngineRun:
        for run in self.runs:
            if run.engine == engine:
                return run
        raise KeyError(f"no run for engine {engine!r}")

    @property
    def outputs_identical(self) -> bool:
        outputs = {run.output for run in self.runs}
        return len(outputs) == 1

    @property
    def speedup(self) -> float:
        """Scalar wall time over vectorized wall time."""
        scalar = self.run_for("scalar").elapsed_seconds
        fast = self.run_for("vectorized").elapsed_seconds
        if fast <= 0:
            return float("inf")
        return scalar / fast

    def as_dict(self) -> Dict[str, object]:
        return {
            "engines": {
                run.engine: {"elapsed_seconds": run.elapsed_seconds}
                for run in self.runs
            },
            "outputs_identical": self.outputs_identical,
            "speedup": self.speedup,
            "server": list(BENCH_SERVER),
            "samples_per_level": BENCH_SAMPLES,
            "utilizations": list(BENCH_UTILIZATIONS),
        }


def bench_taskset(
    seed: int,
    task_count: int,
    utilization: float,
    period_range: Tuple[int, int] = BENCH_PERIODS,
) -> TaskSet:
    """One pinned near-boundary task set.

    Periods uniform in ``period_range``; utilization shares via a
    normalized draw; deadlines slightly constrained below the period
    (``D = max(C, T - T/8..T/4)``), which pushes step points off the
    period grid and grows the Theorem-4 horizon without tipping the set
    into trivial unschedulability.
    """
    rng = RandomSource(seed, "analysis-bench")
    shares = [rng.random() for _ in range(task_count)]
    scale = utilization / sum(shares)
    tasks = []
    for index, share in enumerate(shares):
        period = rng.randint(*period_range)
        wcet = max(1, round(share * scale * period))
        deadline = max(wcet, period - rng.randint(period // 8, period // 4))
        tasks.append(
            IOTask(
                name=f"bench.{seed}.{index}",
                period=period,
                wcet=wcet,
                deadline=deadline,
            )
        )
    return TaskSet(tasks, name=f"bench.{seed}")


def run_bench_cell(cell: BenchCell) -> Tuple[float, int]:
    """Acceptance count for one utilization level under one engine."""
    accepted = 0
    for index in range(cell.samples):
        task_count = BENCH_TASK_COUNTS[index % len(BENCH_TASK_COUNTS)]
        tasks = bench_taskset(
            cell.seed + index * 7919, task_count, cell.utilization
        )
        result = lsched_schedulable(
            cell.pi, cell.theta, tasks, engine=cell.engine
        )
        if result.schedulable:
            accepted += 1
    return cell.utilization, accepted


def _render(rows: Sequence[Tuple[float, int]], samples: int) -> str:
    pi, theta = BENCH_SERVER
    # The engine name stays OUT of the rendered table: the whole point
    # is that both engines must render these exact bytes.
    return render_table(
        ["utilization", "accepted", "ratio"],
        [(u, accepted, accepted / samples) for u, accepted in rows],
        title=(
            f"Theorem-4 acceptance under (Pi={pi}, Theta={theta}), "
            f"{samples} near-boundary sets/point"
        ),
    )


def run_analysis_bench(
    *,
    seed: int = 2021,
    samples: int = BENCH_SAMPLES,
    engines: Sequence[str] = ENGINES,
    runner: Optional[ExperimentRunner] = None,
) -> AnalysisBenchResult:
    """Run the pinned sweep once per engine; cold caches for each.

    Timing phases land in the runner's :class:`TimingSummary` (labels
    ``analysis-bench[<engine>]``) so ``timing.json`` carries the wall
    times CI compares.  The sweep always runs serially within one
    engine: parallel workers would overlap the two measurements.
    """
    runner = runner if runner is not None else ExperimentRunner(1)
    pi, theta = BENCH_SERVER
    runs: List[EngineRun] = []
    for engine in engines:
        cells = [
            BenchCell(
                engine=engine,
                pi=pi,
                theta=theta,
                utilization=utilization,
                samples=samples,
                seed=seed,
            )
            for utilization in BENCH_UTILIZATIONS
        ]
        # Cold caches per engine: the memoized kernels are shared, and a
        # warm second run would not measure the engine at all.
        clear_caches()
        started = time.perf_counter()  # iolint: disable=IOL003 -- host-side benchmark timing
        rows = runner.map(
            run_bench_cell, cells, label=f"analysis-bench[{engine}]"
        )
        elapsed = time.perf_counter() - started  # iolint: disable=IOL003 -- host-side benchmark timing
        runs.append(
            EngineRun(
                engine=engine,
                output=_render(rows, samples),
                elapsed_seconds=elapsed,
            )
        )
    return AnalysisBenchResult(runs=runs)


def render_analysis_bench(result: AnalysisBenchResult) -> str:
    lines = [result.runs[0].output if result.runs else "", ""]
    for run in result.runs:
        lines.append(
            f"engine={run.engine}: {run.elapsed_seconds:.3f} s"
        )
    lines.append(
        "outputs identical: "
        + ("yes" if result.outputs_identical else "NO - ENGINES DISAGREE")
    )
    lines.append(f"vectorized speedup: {result.speedup:.2f}x")
    return "\n".join(lines)


def export_analysis_bench_json(
    result: AnalysisBenchResult, path: Path
) -> Path:
    """Machine-readable benchmark record (merged into ``timing.json``)."""
    path = Path(path)
    path.write_text(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    return path
