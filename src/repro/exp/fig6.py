"""Fig. 6: run-time software overhead (memory footprint, KB)."""

from __future__ import annotations

from typing import Dict, List

from repro.exp.reporting import render_table
from repro.virt.footprint import (
    DRIVER_SET,
    FootprintReport,
    SYSTEMS,
    overhead_vs_legacy,
    system_footprints,
)


def fig6_report() -> Dict[str, FootprintReport]:
    """Footprint reports for all four systems."""
    return {system: system_footprints(system) for system in SYSTEMS}


def fig6_rows() -> List[tuple]:
    """Fig. 6 as rows: (system, component, text, data, bss, total KB)."""
    rows = []
    for system, report in fig6_report().items():
        for component, text, data, bss, total in report.rows():
            rows.append(
                (system, component, text / 1024, data / 1024, bss / 1024, total / 1024)
            )
    return rows


def render_fig6() -> str:
    """Render Fig. 6 plus the paper's headline comparison lines."""
    table = render_table(
        ["system", "component", "text KB", "data KB", "bss KB", "total KB"],
        fig6_rows(),
        title="Fig. 6 -- run-time software overhead (memory footprint)",
    )
    lines = [table, ""]
    legacy_core = system_footprints("legacy").core_total / 1024
    for system in SYSTEMS:
        report = system_footprints(system)
        core = report.core_total / 1024
        delta = overhead_vs_legacy(system) * 100
        drivers = sum(fp.total for fp in report.drivers.values()) / 1024
        lines.append(
            f"{system:8s} core(hyp+kernel)={core:6.1f} KB "
            f"({delta:+6.1f}% vs legacy {legacy_core:.1f} KB), "
            f"drivers({'+'.join(DRIVER_SET)})={drivers:5.1f} KB"
        )
    return "\n".join(lines)
