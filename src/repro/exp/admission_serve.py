"""The ``admission-serve`` experiment: service throughput + determinism.

A thin experiment wrapper over :mod:`repro.serve.bench`: runs the
concurrent admission burst for each shard count (``repeats`` times
each), renders a throughput table, and writes the schema-versioned
``BENCH_admission.json`` record the repo commits at its root.

The gate is determinism, not speed: the run fails (exit 2 from the
CLI) unless every repetition of every shard count produced the same
decision-log digest -- the byte-level witness that sharding the
admission controller does not change any admission outcome.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Sequence

from repro.serve.bench import (
    DEFAULT_NUM_VMS,
    DEFAULT_OPS_PER_VM,
    DEFAULT_SEED,
    run_admission_bench,
    validate_admission_bench_schema,
    write_admission_bench,
)

__all__ = [
    "run_admission_serve",
    "render_admission_serve",
    "write_admission_serve_history",
    "validate_admission_bench_schema",
]


def run_admission_serve(
    shard_counts: Sequence[int] = (1, 2),
    *,
    repeats: int = 2,
    num_vms: int = DEFAULT_NUM_VMS,
    ops_per_vm: int = DEFAULT_OPS_PER_VM,
    seed: int = DEFAULT_SEED,
    backend: str = "process",
) -> Dict[str, Any]:
    """Run the full shard-count x repeats matrix; returns the record."""
    return run_admission_bench(
        shard_counts,
        repeats=repeats,
        num_vms=num_vms,
        ops_per_vm=ops_per_vm,
        seed=seed,
        backend=backend,
    )


def render_admission_serve(record: Dict[str, Any]) -> str:
    """Human-readable table of the bench record."""
    workload = record["workload"]
    lines = [
        "admission-serve: concurrent admission bursts "
        f"({workload['num_vms']} VMs x {workload['ops_per_vm']} ops, "
        f"seed {workload['seed']}, backend "
        f"{record['runs'][0]['backend'] if record['runs'] else '?'})",
        f"{'shards':>7}  {'requests':>9}  {'rate (req/s)':>13}  "
        f"{'log':>5}  digest",
    ]
    for run in record["runs"]:
        lines.append(
            f"{run['shards']:>7}  {run['requests']:>9}  "
            f"{run['requests_per_sec']:>13.0f}  {run['log_entries']:>5}  "
            f"{run['log_digest'][:16]}"
        )
    verdict = "byte-identical" if record["deterministic"] else "DIVERGED"
    lines.append(
        f"decision log across {len(record['runs'])} runs: {verdict}"
    )
    return "\n".join(lines)


def write_admission_serve_history(
    record: Dict[str, Any], path: Path
) -> Path:
    """Write the committed ``BENCH_admission.json`` form of the record."""
    path = Path(path)
    write_admission_bench(record, str(path))
    return path
