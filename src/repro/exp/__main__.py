"""Command-line entry: regenerate the paper's tables and figures.

Usage::

    python -m repro.exp            # everything (fig7 at reduced scale)
    python -m repro.exp fig6
    python -m repro.exp table1
    python -m repro.exp fig7 [--trials N] [--horizon SLOTS] [--jobs N]
    python -m repro.exp fig8
    python -m repro.exp predictability
    python -m repro.exp isolation
    python -m repro.exp faults [--fault-trace PATH]
    python -m repro.exp acceptance
    python -m repro.exp analysis-bench [--batched] [--min-speedup X]
                                       [--bench-history PATH]
    python -m repro.exp admission-serve [--serve-shards 1,2]
                                        [--bench-history PATH]
    python -m repro.exp chains [--trials N] [--horizon SLOTS] [--out DIR]
    python -m repro.exp synth
    python -m repro.exp synth-bench [--max-oracle-calls N]
                                    [--bench-history PATH]
    python -m repro.exp export --out results/   # CSV/JSON artefacts

Set ``REPRO_SCALE`` (e.g. 0.2 for a smoke run, 5 for a long run) to
scale the fig7 trials/horizon without editing flags.  Set ``REPRO_JOBS``
(or pass ``--jobs``; ``0`` = one worker per CPU) to fan trials out over
worker processes -- results are bit-identical for every worker count,
because all randomness is derived per cell from the experiment seed
(see :mod:`repro.exp.runner`).  The ``export`` subcommand additionally
writes ``timing.json``, a machine-readable wall-clock/cache summary of
the run.

``analysis-bench`` and ``chains`` are the subcommands ``all`` does not
include.  ``analysis-bench`` times the scalar vs vectorized analysis
engines on a pinned sweep (plus the batched engine with ``--batched``),
so its output is inherently non-deterministic (wall clock); it exits
non-zero when the engines disagree or a speedup falls below
``--min-speedup`` (vectorized over scalar and, with ``--batched``,
batched over vectorized).  ``--bench-history PATH`` writes the
schema-stable ``BENCH_analysis.json`` record the repo commits at its
root.
``chains`` sweeps chain length x utilization, compares analytical
end-to-end bounds against simulated chain latencies, writes
``chains.json``/``chains.csv`` artifacts to ``--out`` and exits 2 when
any simulated instance violates its bound -- CI runs both as
regression gates.
``synth`` runs the pinned synthesis sweep (every scenario under every
analysis engine and every available solver backend) and exits 2 unless
each design passes scalar re-verification, beats the hand-written
baselines and is byte-identical across backends; ``synth-bench``
additionally pins the search effort (``--max-oracle-calls``, exit 3)
and writes the committed ``BENCH_synth.json`` via ``--bench-history``.
``admission-serve`` benchmarks the admission service (:mod:`repro.serve`):
it fires the same deterministic concurrent burst at servers with each
``--serve-shards`` count (twice each), reports requests/sec, and exits
2 unless every run's decision log is byte-identical -- sharding must
not change any admission outcome.  ``--bench-history PATH`` writes the
schema-stable ``BENCH_admission.json`` record the repo commits at its
root.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exp.acceptance import render_acceptance, run_acceptance
from repro.exp.admission_serve import (
    render_admission_serve,
    run_admission_serve,
    write_admission_serve_history,
)
from repro.exp.analysis_bench import (
    export_analysis_bench_json,
    render_analysis_bench,
    run_analysis_bench,
    write_bench_history,
)
from repro.exp.export import (
    export_fig7_csv,
    export_fig7_json,
    export_fig8_csv,
    export_predictability_csv,
    export_timing_json,
)
from repro.exp.chains import (
    ChainsSweepConfig,
    export_chains_csv,
    export_chains_json,
    render_chains_sweep,
    run_chains_sweep,
)
from repro.exp.fig6 import render_fig6
from repro.exp.fig7 import CaseStudyConfig, render_fig7, run_case_study
from repro.exp.fig8 import render_fig8
from repro.exp.isolation import (
    render_fault_isolation,
    render_isolation,
    run_fault_isolation,
    run_isolation,
)
from repro.exp.predictability import render_predictability, run_predictability
from repro.exp.runner import ExperimentRunner
from repro.exp.synth import (
    SYNTH_BENCH_MAX_ORACLE_CALLS,
    render_synth_sweep,
    run_synth_sweep,
    write_synth_bench_history,
)
from repro.exp.table1 import render_table1

EXPERIMENTS = [
    "all",
    "fig6",
    "table1",
    "fig7",
    "fig8",
    "predictability",
    "isolation",
    "faults",
    "acceptance",
    "analysis-bench",
    "admission-serve",
    "chains",
    "synth",
    "synth-bench",
    "export",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Regenerate the I/O-GUARD paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", nargs="?", default="all", choices=EXPERIMENTS
    )
    parser.add_argument("--trials", type=int, default=10, help="fig7 trials/cell")
    parser.add_argument(
        "--horizon", type=int, default=50_000, help="fig7 slots per trial"
    )
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweeps (default: REPRO_JOBS or 1 "
        "= serial; 0 = one per CPU); any value yields identical results",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="force progress/ETA lines on stderr (default: only on a TTY)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="record per-cell wall time and memoization-kernel hit/miss "
        "deltas into timing.json (cell_seconds / kernel_stats keys)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="output directory for the export/analysis-bench subcommands",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="analysis-bench: fail (exit 3) unless the vectorized engine "
        "beats the scalar engine by this factor on the pinned sweep "
        "(with --batched, also required of batched over vectorized)",
    )
    parser.add_argument(
        "--batched", action="store_true",
        help="analysis-bench: include the batched engine (whole-column "
        "lsched_schedulable_batch submission) in the comparison",
    )
    parser.add_argument(
        "--bench-history", type=Path, default=None,
        help="analysis-bench: write the schema-stable BENCH_analysis.json "
        "record here (the repo commits one at its root)",
    )
    parser.add_argument(
        "--serve-shards", default="1,2",
        help="admission-serve: comma list of shard counts to benchmark "
        "(each run twice; decision logs must be byte-identical)",
    )
    parser.add_argument(
        "--serve-backend", choices=("process", "inline"), default="process",
        help="admission-serve: shard backend (worker processes or inline)",
    )
    parser.add_argument(
        "--serve-ops", type=int, default=25,
        help="admission-serve: scripted operations per VM in the burst",
    )
    parser.add_argument(
        "--max-oracle-calls", type=int, default=SYNTH_BENCH_MAX_ORACLE_CALLS,
        help="synth-bench: fail (exit 3) when the sweep's total oracle "
        "calls exceed this (call counts are deterministic, so this is an "
        "exact search-effort regression pin)",
    )
    parser.add_argument(
        "--fault-trace", type=Path, default=None,
        help="write the faults subcommand's fault trace (JSONL) here; "
        "byte-identical for identical --seed (the determinism contract)",
    )
    args = parser.parse_args(argv)

    runner = ExperimentRunner(
        args.jobs,
        progress=True if args.progress else None,
        profile=args.profile,
    )

    if args.experiment in ("all", "fig6"):
        print(render_fig6())
        print()
    if args.experiment in ("all", "table1"):
        print(render_table1())
        print()
    if args.experiment in ("all", "fig8"):
        print(render_fig8())
        print()
    if args.experiment in ("all", "fig7"):
        config = CaseStudyConfig(
            trials=args.trials, horizon_slots=args.horizon, seed=args.seed
        )
        print(render_fig7(run_case_study(config, runner=runner)))
        print()
    if args.experiment in ("all", "predictability"):
        result = run_predictability(
            trials=max(1, args.trials // 3),
            horizon_slots=args.horizon,
            seed=args.seed,
            runner=runner,
        )
        print(render_predictability(result))
        print()
    if args.experiment in ("all", "isolation"):
        print(render_isolation(run_isolation(horizon_slots=args.horizon // 2)))
        print()
    if args.experiment in ("all", "faults"):
        fault_result = run_fault_isolation(
            seed=args.seed, horizon_slots=args.horizon // 6
        )
        print(render_fault_isolation(fault_result))
        print()
        if args.fault_trace is not None:
            args.fault_trace.parent.mkdir(parents=True, exist_ok=True)
            args.fault_trace.write_text(fault_result.fault_trace_jsonl)
            # stderr keeps stdout byte-comparable across runs with
            # different trace paths (the CI determinism check).
            print(f"wrote {args.fault_trace}", file=sys.stderr)
    if args.experiment in ("all", "acceptance"):
        print(render_acceptance(run_acceptance(seed=args.seed, runner=runner)))
    if args.experiment == "chains":
        # Defaults are sized down from the fig7 flags: the sweep builds
        # and simulates many small systems rather than a few big ones.
        sweep_config = ChainsSweepConfig(
            seed=args.seed,
            trials=max(1, args.trials // 5),
            horizon_slots=max(200, args.horizon // 25),
        )
        sweep = run_chains_sweep(sweep_config, runner=runner)
        print(render_chains_sweep(sweep))
        args.out.mkdir(parents=True, exist_ok=True)
        for path in (
            export_chains_json(sweep, args.out / "chains.json"),
            export_chains_csv(sweep, args.out / "chains.csv"),
        ):
            # stderr keeps stdout byte-comparable across output dirs.
            print(f"wrote {path}", file=sys.stderr)
        if sweep.total_violations:
            print(
                f"FAIL: {sweep.total_violations} simulated chain instances "
                "exceeded their analytical bound",
                file=sys.stderr,
            )
            return 2
    if args.experiment == "analysis-bench":
        # Always serial: parallel workers would overlap the two engine
        # measurements and poison the wall-clock comparison.
        bench_runner = ExperimentRunner(
            1, progress=True if args.progress else None, profile=args.profile
        )
        engines = (
            ("scalar", "vectorized", "batched")
            if args.batched
            else ("scalar", "vectorized")
        )
        bench = run_analysis_bench(
            seed=args.seed, engines=engines, runner=bench_runner
        )
        print(render_analysis_bench(bench))
        args.out.mkdir(parents=True, exist_ok=True)
        written = [
            export_analysis_bench_json(bench, args.out / "analysis_bench.json"),
            export_timing_json(bench_runner.timing, args.out / "timing.json"),
        ]
        if args.bench_history is not None:
            args.bench_history.parent.mkdir(parents=True, exist_ok=True)
            written.append(write_bench_history(bench, args.bench_history))
        for path in written:
            print(f"wrote {path}", file=sys.stderr)
        if not bench.outputs_identical:
            print(
                "FAIL: the analysis engines rendered different "
                "acceptance output",
                file=sys.stderr,
            )
            return 2
        if bench.speedup < args.min_speedup:
            print(
                f"FAIL: vectorized speedup {bench.speedup:.2f}x is below "
                f"the required {args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 3
        if args.batched and bench.batched_speedup < args.min_speedup:
            print(
                f"FAIL: batched speedup {bench.batched_speedup:.2f}x over "
                f"vectorized is below the required {args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 3
    if args.experiment in ("synth", "synth-bench"):
        sweep = run_synth_sweep(runner=runner)
        print(render_synth_sweep(sweep))
        if args.experiment == "synth-bench":
            if args.bench_history is not None:
                args.bench_history.parent.mkdir(parents=True, exist_ok=True)
                path = write_synth_bench_history(sweep, args.bench_history)
                print(f"wrote {path}", file=sys.stderr)
            if sweep.total_oracle_calls > args.max_oracle_calls:
                print(
                    f"FAIL: {sweep.total_oracle_calls} oracle calls exceed "
                    f"the pinned budget of {args.max_oracle_calls}",
                    file=sys.stderr,
                )
                return 3
        if not sweep.ok:
            print(
                "FAIL: synthesis sweep violated its contract "
                "(infeasible design, scalar re-verification failure, "
                "bandwidth regression, or backend disagreement)",
                file=sys.stderr,
            )
            return 2
    if args.experiment == "admission-serve":
        shard_counts = [
            int(part) for part in args.serve_shards.split(",") if part
        ]
        record = run_admission_serve(
            shard_counts,
            ops_per_vm=args.serve_ops,
            seed=args.seed,
            backend=args.serve_backend,
        )
        print(render_admission_serve(record))
        if args.bench_history is not None:
            args.bench_history.parent.mkdir(parents=True, exist_ok=True)
            path = write_admission_serve_history(record, args.bench_history)
            print(f"wrote {path}", file=sys.stderr)
        if not record["deterministic"]:
            print(
                "FAIL: decision-log digests diverged across shard counts "
                "or reruns",
                file=sys.stderr,
            )
            return 2
    if args.experiment == "export":
        args.out.mkdir(parents=True, exist_ok=True)
        config = CaseStudyConfig(
            trials=args.trials, horizon_slots=args.horizon, seed=args.seed
        )
        sweep = run_case_study(config, runner=runner)
        written = [
            export_fig7_csv(sweep, args.out / "fig7.csv"),
            export_fig7_json(sweep, args.out / "fig7.json"),
            export_fig8_csv(args.out / "fig8.csv"),
            export_predictability_csv(
                run_predictability(
                    trials=max(1, args.trials // 3),
                    horizon_slots=args.horizon,
                    seed=args.seed,
                    runner=runner,
                ),
                args.out / "predictability.csv",
            ),
        ]
        # Timing last, so it covers every phase mapped above.
        written.append(
            export_timing_json(runner.timing, args.out / "timing.json")
        )
        for path in written:
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
